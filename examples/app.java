// A small application in the surface language of `repro.lang`, used by the
// README quickstart.  The telemetry feature is guarded by a configuration
// method returning the constant `false`: SkipFlow tracks the constant across
// the call and proves the whole metrics library unreachable, while the
// flow-insensitive baseline must keep it.

class Config {
    boolean isTelemetryEnabled() {
        return false;
    }
}

class TelemetryService {
    void start() {
        MetricsLibrary.initialize();
    }
}

class MetricsLibrary {
    static void initialize() { MetricsLibrary.connect(); }
    static void connect() { MetricsLibrary.handshake(); }
    static void handshake() { }
}

class Application {
    void run(Config config) {
        if (config.isTelemetryEnabled()) {
            TelemetryService telemetry = new TelemetryService();
            telemetry.start();
        }
        this.serveRequests();
    }

    void serveRequests() { }
}

class Main {
    static void main() {
        Application app = new Application();
        app.run(new Config());
    }
}
