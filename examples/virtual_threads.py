"""The JDK virtual-threads motivating example (Figure 2 of the paper).

``SharedThreadContainer.onExit`` removes a thread from the virtual-thread set
only when ``thread.isVirtual()`` holds; ``Thread.isVirtual()`` is an
``instanceof BaseVirtualThread`` check.  Proving the ``remove()`` call dead
requires an *interprocedural* analysis that tracks both the flow of types
(the check always fails) and the flow of primitive values (the ``false``
constant travels back to the caller), plus enough flow-sensitivity to use the
information — which is exactly the combination SkipFlow provides.

Run with::

    python examples/virtual_threads.py
"""

from repro import AnalysisConfig, SkipFlowAnalysis
from repro.lang import compile_source

SOURCE_TEMPLATE = """
class Thread {
    boolean isVirtual() {
        if (this instanceof BaseVirtualThread) { return true; } else { return false; }
    }
}

class BaseVirtualThread extends Thread { }
class VirtualThread extends BaseVirtualThread { }

class ThreadSet {
    void remove(Thread thread) { }
}

class SharedThreadContainer {
    ThreadSet virtualThreads;

    void onExit(Thread thread) {
        if (thread.isVirtual()) {
            this.virtualThreads.remove(thread);
        }
    }
}

class Main {
    static void main() {
        SharedThreadContainer container = new SharedThreadContainer();
        container.virtualThreads = new ThreadSet();
        Thread worker = new %THREAD_CLASS%();
        container.onExit(worker);
    }
}
"""


def analyze(thread_class: str) -> None:
    program = compile_source(SOURCE_TEMPLATE.replace("%THREAD_CLASS%", thread_class))
    baseline = SkipFlowAnalysis(program, AnalysisConfig.baseline_pta()).run()
    skipflow = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
    print(f"Application instantiates: {thread_class}")
    print(f"  Thread.isVirtual() returns (SkipFlow): "
          f"{skipflow.return_state('Thread.isVirtual')!r}")
    print(f"  ThreadSet.remove reachable:  PTA={baseline.is_method_reachable('ThreadSet.remove')}  "
          f"SkipFlow={skipflow.is_method_reachable('ThreadSet.remove')}")
    print(f"  reachable methods:           PTA={baseline.reachable_method_count}  "
          f"SkipFlow={skipflow.reachable_method_count}")
    print()


def main() -> None:
    # Without virtual threads the remove() call is dead code.
    analyze("Thread")
    # As soon as the application creates a virtual thread, SkipFlow keeps the
    # call reachable: the same analysis is sound in both configurations.
    analyze("VirtualThread")


if __name__ == "__main__":
    main()
