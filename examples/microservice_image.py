"""Building a (simulated) native image for a synthetic microservice.

This example exercises the full pipeline the evaluation uses: a generated
benchmark application, the closed-world image builder with a reflection
configuration, both analysis configurations, and the Table-1 style report.

Run with::

    python examples/microservice_image.py
"""

from repro.core.analysis import AnalysisConfig
from repro.image.builder import NativeImageBuilder
from repro.image.reflection import ReflectionConfig
from repro.reporting.records import compare_configurations
from repro.reporting.table import format_table1
from repro.workloads.generator import generate_benchmark, spec_from_reduction


def build_with_reflection() -> None:
    """Build one image with a reflection configuration (as frameworks require)."""
    spec = spec_from_reduction(
        name="petstore-service", suite="Microservices",
        total_methods=250, reduction_percent=8.0,
    )
    program = generate_benchmark(spec)

    # Frameworks invoke request handlers reflectively: register one of the
    # generated core entry points as a reflective root.
    reflection = ReflectionConfig()
    reflection.register_method("Petstore_serviceCore0Entry.enter")

    report = NativeImageBuilder(
        program, AnalysisConfig.skipflow(), reflection=reflection,
        benchmark_name=spec.name,
    ).build()
    print(f"image for {report.benchmark} ({report.configuration}):")
    print(f"  reachable methods: {report.reachable_methods}")
    print(f"  binary size:       {report.binary_size_megabytes:.2f} MB")
    print(f"  analysis time:     {report.analysis_time_seconds * 1000:.1f} ms")
    print(f"  total build time:  {report.total_time_seconds * 1000:.1f} ms")
    print(f"  dead instructions removed: {report.dead_code.dead_instructions}")
    print()


def compare_analyses() -> None:
    """Table-1 style comparison for one microservice benchmark."""
    spec = spec_from_reduction(
        name="order-service", suite="Microservices",
        total_methods=400, reduction_percent=7.3,
    )
    comparison = compare_configurations(spec)
    print(format_table1([comparison], title="Order service: PTA vs SkipFlow"))
    print()
    print(f"reachable-method reduction: "
          f"{comparison.reachable_method_reduction_percent:.1f}% "
          f"(paper reports 7.3% for Micronaut MuShop Order)")


def main() -> None:
    build_with_reflection()
    compare_analyses()


if __name__ == "__main__":
    main()
