"""Ablation: which SkipFlow ingredient buys which part of the precision?

SkipFlow combines two extensions over the baseline points-to analysis:
predicate edges (partial flow-sensitivity) and primitive value tracking.
This example runs the four configurations over a program that needs *both*
ingredients (the virtual-threads pattern) and one that only needs predicates
(the null-default pattern), reproducing the discussion of Section 2.

Run with::

    python examples/analysis_ablation.py
"""

from repro import AnalysisConfig, SkipFlowAnalysis
from repro.lang import compile_source

NEEDS_BOTH = """
class Item {
    boolean isSpecial() {
        if (this instanceof SpecialItem) { return true; } else { return false; }
    }
}
class SpecialItem extends Item { }
class Auditing {
    static void record() { }
}
class Main {
    static void main() {
        Item item = new Item();
        if (item.isSpecial()) {
            Auditing.record();
        }
    }
}
"""

NEEDS_PREDICATES_ONLY = """
class Codec {
    void encode() { }
}
class LegacyCodec extends Codec {
    void encode() { LegacyLibrary.load(); }
}
class LegacyLibrary {
    static void load() { }
}
class Pipeline {
    void process(Codec codec) {
        if (codec == null) {
            codec = new LegacyCodec();
        }
        codec.encode();
    }
}
class Main {
    static void main() {
        Pipeline pipeline = new Pipeline();
        pipeline.process(new Codec());
    }
}
"""

CONFIGS = [
    AnalysisConfig.baseline_pta(),
    AnalysisConfig.primitives_only(),
    AnalysisConfig.predicates_only(),
    AnalysisConfig.skipflow(),
]


def run(title: str, source: str, probe_method: str) -> None:
    program = compile_source(source)
    print(title)
    print(f"{'configuration':<28} {'reachable':>9} {probe_method + ' reachable':>32}")
    for config in CONFIGS:
        result = SkipFlowAnalysis(program, config).run()
        print(f"{config.name:<28} {result.reachable_method_count:>9} "
              f"{str(result.is_method_reachable(probe_method)):>32}")
    print()


def main() -> None:
    run("Pattern that needs predicates AND primitive tracking (Figure 2):",
        NEEDS_BOTH, "Auditing.record")
    run("Pattern that needs predicate edges only (Figure 1):",
        NEEDS_PREDICATES_ONLY, "LegacyLibrary.load")


if __name__ == "__main__":
    main()
