"""Quickstart: compile a small program and compare SkipFlow with the baseline.

Run with::

    python examples/quickstart.py

The program contains a feature that is guarded by a configuration method
returning the constant ``false``.  SkipFlow tracks the constant across the
call and uses the predicate edge of the ``if`` to prove the feature (and the
library it drags in) unreachable; the baseline points-to analysis cannot.
"""

from repro import AnalysisConfig, SkipFlowAnalysis
from repro.lang import compile_source

SOURCE = """
class Config {
    boolean isTelemetryEnabled() {
        return false;
    }
}

class TelemetryService {
    void start() {
        MetricsLibrary.initialize();
    }
}

class MetricsLibrary {
    static void initialize() { MetricsLibrary.connect(); }
    static void connect() { }
}

class Application {
    void run(Config config) {
        if (config.isTelemetryEnabled()) {
            TelemetryService telemetry = new TelemetryService();
            telemetry.start();
        }
        this.serveRequests();
    }

    void serveRequests() { }
}

class Main {
    static void main() {
        Application app = new Application();
        app.run(new Config());
    }
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    print(program.summary())
    print()

    for config in (AnalysisConfig.baseline_pta(), AnalysisConfig.skipflow()):
        result = SkipFlowAnalysis(program, config).run()
        telemetry = result.is_method_reachable("TelemetryService.start")
        metrics = result.is_method_reachable("MetricsLibrary.initialize")
        print(f"{config.name:>8}: {result.reachable_method_count} reachable methods, "
              f"telemetry reachable={telemetry}, metrics library reachable={metrics}, "
              f"analysis time={result.analysis_time_seconds * 1000:.1f} ms")

    skipflow = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
    print()
    print("Call graph computed by SkipFlow:")
    for caller, callee in skipflow.call_edges():
        print(f"  {caller} -> {callee}")
    flag_state = skipflow.return_state("Config.isTelemetryEnabled")
    print()
    print(f"Config.isTelemetryEnabled() return value state: {flag_state!r}")


if __name__ == "__main__":
    main()
