"""The DaCapo Sunflow motivating example (Figure 1 of the paper).

``Scene.render`` receives a ``Display`` parameter and only allocates the
AWT/Swing-backed ``FrameDisplay`` when the parameter is ``null``.  In the
benchmark configuration the parameter is never ``null``, so the whole GUI
stack behind ``FrameDisplay`` is dead — but only an analysis that understands
the branching structure can prove it.

Run with::

    python examples/sunflow_display.py
"""

from repro import AnalysisConfig, SkipFlowAnalysis
from repro.lang import compile_source

SOURCE = """
class Display {
    void imageBegin() { }
}

class FrameDisplay extends Display {
    void imageBegin() {
        AwtToolkit.createWindow();
    }
}

class AwtToolkit {
    static void createWindow() { AwtToolkit.loadNativeLibraries(); SwingRuntime.start(); }
    static void loadNativeLibraries() { }
}

class SwingRuntime {
    static void start() { SwingRuntime.layoutEngine(); }
    static void layoutEngine() { }
}

class Scene {
    void render(Display display) {
        if (display == null) {
            display = new FrameDisplay();
        }
        this.prepare();
        display.imageBegin();
    }

    void prepare() { }
}

class BucketRenderer {
    void render(Display display) {
        display.imageBegin();
    }
}

class Main {
    static void main() {
        Scene scene = new Scene();
        Display display = new Display();
        scene.render(display);
        BucketRenderer renderer = new BucketRenderer();
        renderer.render(display);
    }
}
"""

GUI_METHODS = [
    "FrameDisplay.imageBegin",
    "AwtToolkit.createWindow",
    "AwtToolkit.loadNativeLibraries",
    "SwingRuntime.start",
    "SwingRuntime.layoutEngine",
]


def main() -> None:
    program = compile_source(SOURCE)
    baseline = SkipFlowAnalysis(program, AnalysisConfig.baseline_pta()).run()
    skipflow = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()

    print("Reachability of the GUI stack (AWT/Swing behind FrameDisplay):")
    print(f"{'method':<32} {'PTA':>6} {'SkipFlow':>9}")
    for method in GUI_METHODS:
        print(f"{method:<32} {str(baseline.is_method_reachable(method)):>6} "
              f"{str(skipflow.is_method_reachable(method)):>9}")

    print()
    print(f"PTA reachable methods:      {baseline.reachable_method_count}")
    print(f"SkipFlow reachable methods: {skipflow.reachable_method_count}")
    reduction = 100.0 * (1 - skipflow.reachable_method_count / baseline.reachable_method_count)
    print(f"Reduction:                  {reduction:.1f}% "
          "(the paper reports 52.3% for the full Sunflow benchmark)")

    # The spurious call edge of the flow-insensitive analysis: only the
    # baseline links Scene.render's display.imageBegin() to FrameDisplay.
    print()
    print("Call targets of display.imageBegin() inside Scene.render:")
    print("  PTA:     ", sorted(set().union(*baseline.call_targets("Scene.render").values())))
    print("  SkipFlow:", sorted(set().union(*skipflow.call_targets("Scene.render").values())))


if __name__ == "__main__":
    main()
