"""Lowering of the surface-language AST to the SSA base language.

The lowering performs structured SSA construction: every ``if`` introduces a
merge block with phi instructions for the variables assigned in its branches,
and every ``while`` introduces a loop-header merge with phis for the variables
assigned in its body.  Comparisons used as values (``boolean b = x < y;``)
are materialized through the same mechanism (a small diamond producing 0/1),
and arithmetic lowers to the opaque ``Any`` expression, matching the value
abstraction of the analysis.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Set

from repro.ir.builder import MethodBuilder, ProgramBuilder
from repro.ir.instructions import CompareOp
from repro.ir.program import Program
from repro.ir.values import Value
from repro.lang import ast
from repro.lang.errors import LoweringError

_COMPARE_OPS = {
    "==": CompareOp.EQ,
    "!=": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}

_ARITHMETIC_OPS = ("+", "-", "*", "/")


def _ir_type(name: str) -> str:
    """Map surface type names to base-language type names."""
    if name == "boolean":
        return "int"
    return name


class _MethodLowering:
    """Lowers one method body into a :class:`MethodBuilder`."""

    def __init__(self, unit: ast.CompilationUnit, builder: MethodBuilder,
                 method: ast.MethodDeclNode, class_name: str):
        self.unit = unit
        self.mb = builder
        self.method = method
        self.class_name = class_name
        self.env: Dict[str, Value] = {}
        self._labels = itertools.count()
        for parameter, value in zip(method.parameters, self._parameter_values()):
            self.env[parameter.name] = value

    def _parameter_values(self) -> List[Value]:
        params = self.mb.parameters
        return params if self.method.is_static else params[1:]

    def _fresh_label(self, hint: str) -> str:
        return f"{hint}{next(self._labels)}"

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def lower_body(self) -> None:
        falls_through = self._lower_statements(self.method.body)
        if falls_through:
            if self.method.return_type == "void":
                self.mb.return_void()
            else:
                raise LoweringError(
                    f"method {self.class_name}.{self.method.name} can fall off "
                    "the end without returning a value",
                    self.method.line,
                )

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _lower_statements(self, statements: Sequence[object]) -> bool:
        """Lower a statement list; returns True when control falls through."""
        for statement in statements:
            if not self._lower_statement(statement):
                return False
        return True

    def _lower_statement(self, statement) -> bool:
        if isinstance(statement, ast.LocalDecl):
            self._lower_local_decl(statement)
            return True
        if isinstance(statement, ast.AssignStmt):
            self._lower_assignment(statement)
            return True
        if isinstance(statement, ast.ExprStmt):
            self._lower_expression(statement.expression)
            return True
        if isinstance(statement, ast.ReturnStmt):
            value = None
            if statement.value is not None:
                value = self._lower_expression(statement.value)
            self.mb.return_(value)
            return False
        if isinstance(statement, ast.IfStmt):
            return self._lower_if(statement)
        if isinstance(statement, ast.WhileStmt):
            return self._lower_while(statement)
        raise LoweringError(f"unsupported statement {statement!r}")

    def _lower_local_decl(self, statement: ast.LocalDecl) -> None:
        if statement.initializer is not None:
            value = self._lower_expression(statement.initializer)
        elif statement.declared_type in ("int", "boolean"):
            value = self.mb.assign_int(0)
        else:
            value = self.mb.assign_null()
        self.env[statement.name] = value

    def _lower_assignment(self, statement: ast.AssignStmt) -> None:
        target = statement.target
        if isinstance(target, ast.VarRef):
            if target.name not in self.env:
                raise LoweringError(f"assignment to undeclared variable {target.name!r}",
                                    statement.line)
            self.env[target.name] = self._lower_expression(statement.value)
            return
        if isinstance(target, ast.FieldAccess):
            receiver = self._lower_expression(target.receiver)
            value = self._lower_expression(statement.value)
            self.mb.store_field(receiver, target.field_name, value)
            return
        raise LoweringError("assignment target must be a variable or a field",
                            statement.line)

    # ------------------------------------------------------------------ #
    # Control flow
    # ------------------------------------------------------------------ #
    def _lower_if(self, statement: ast.IfStmt) -> bool:
        then_label = self._fresh_label("then")
        else_label = self._fresh_label("else")
        merge_label = self._fresh_label("merge")
        phi_vars = sorted(
            (self._assigned_variables(statement.then_body)
             | self._assigned_variables(statement.else_body))
            & set(self.env)
        )
        self._emit_condition(statement.condition, then_label, else_label)

        outer_env = dict(self.env)
        jumps = 0

        self.mb.label(then_label)
        self.env = dict(outer_env)
        then_falls = self._lower_statements(statement.then_body)
        if then_falls:
            self.mb.jump(merge_label, [self.env[name] for name in phi_vars])
            jumps += 1

        self.mb.label(else_label)
        self.env = dict(outer_env)
        else_falls = self._lower_statements(statement.else_body)
        if else_falls:
            self.mb.jump(merge_label, [self.env[name] for name in phi_vars])
            jumps += 1

        self.env = dict(outer_env)
        if jumps == 0:
            return False
        phi_values = self.mb.merge(merge_label, [f"{name}_m{merge_label}" for name in phi_vars])
        for name, value in zip(phi_vars, phi_values):
            self.env[name] = value
        return True

    def _lower_while(self, statement: ast.WhileStmt) -> bool:
        header_label = self._fresh_label("loop")
        body_label = self._fresh_label("body")
        exit_label = self._fresh_label("exit")
        phi_vars = sorted(self._assigned_variables(statement.body) & set(self.env))

        self.mb.jump(header_label, [self.env[name] for name in phi_vars])
        phi_values = self.mb.merge(header_label,
                                   [f"{name}_l{header_label}" for name in phi_vars])
        for name, value in zip(phi_vars, phi_values):
            self.env[name] = value
        self._emit_condition(statement.condition, body_label, exit_label)

        header_env = dict(self.env)
        self.mb.label(body_label)
        self.env = dict(header_env)
        body_falls = self._lower_statements(statement.body)
        if body_falls:
            self.mb.jump(header_label, [self.env[name] for name in phi_vars])

        self.mb.label(exit_label)
        self.env = dict(header_env)
        return True

    def _assigned_variables(self, statements: Sequence[object]) -> Set[str]:
        assigned: Set[str] = set()
        for statement in statements:
            if isinstance(statement, ast.AssignStmt) and isinstance(statement.target, ast.VarRef):
                assigned.add(statement.target.name)
            elif isinstance(statement, ast.IfStmt):
                assigned |= self._assigned_variables(statement.then_body)
                assigned |= self._assigned_variables(statement.else_body)
            elif isinstance(statement, ast.WhileStmt):
                assigned |= self._assigned_variables(statement.body)
        return assigned

    # ------------------------------------------------------------------ #
    # Conditions
    # ------------------------------------------------------------------ #
    def _emit_condition(self, condition, then_label: str, else_label: str) -> None:
        if isinstance(condition, ast.NotOp):
            self._emit_condition(condition.operand, else_label, then_label)
            return
        if isinstance(condition, ast.BinaryOp) and condition.op in ("&&", "||"):
            value = self._lower_logical(condition)
            self.mb.if_true(value, then_label, else_label)
            return
        if isinstance(condition, ast.InstanceOf):
            value = self._lower_expression(condition.value)
            self.mb.if_instanceof(value, condition.class_name, then_label, else_label)
            return
        if isinstance(condition, ast.BinaryOp) and condition.is_comparison:
            left = self._lower_expression(condition.left)
            right = self._lower_expression(condition.right)
            self.mb.if_compare(_COMPARE_OPS[condition.op], left, right,
                               then_label, else_label)
            return
        # Any other expression is a boolean-as-int value: compare against 1.
        value = self._lower_expression(condition)
        self.mb.if_true(value, then_label, else_label)

    def _lower_logical(self, condition: ast.BinaryOp) -> Value:
        """Short-circuit ``&&`` / ``||`` materialized as an int value (0 or 1)."""
        continue_label = self._fresh_label("sc_rest")
        short_label = self._fresh_label("sc_short")
        merge_label = self._fresh_label("sc_merge")
        if condition.op == "&&":
            # left && right: evaluate right only when left holds, else 0.
            self._emit_condition(condition.left, continue_label, short_label)
            short_value_constant = 0
        else:
            # left || right: 1 when left holds, otherwise evaluate right.
            self._emit_condition(condition.left, short_label, continue_label)
            short_value_constant = 1
        self.mb.label(continue_label)
        rest_value = self._lower_condition_to_value(condition.right)
        self.mb.jump(merge_label, [rest_value])
        self.mb.label(short_label)
        short_value = self.mb.assign_int(short_value_constant)
        self.mb.jump(merge_label, [short_value])
        return self.mb.merge(merge_label, [f"logic_{merge_label}"])[0]

    def _lower_condition_to_value(self, condition) -> Value:
        """Materialize a boolean expression as an int value (0 or 1)."""
        if isinstance(condition, ast.BinaryOp) and condition.op in ("&&", "||"):
            return self._lower_logical(condition)
        then_label = self._fresh_label("bt")
        else_label = self._fresh_label("bf")
        merge_label = self._fresh_label("bm")
        self._emit_condition(condition, then_label, else_label)
        self.mb.label(then_label)
        one = self.mb.assign_int(1)
        self.mb.jump(merge_label, [one])
        self.mb.label(else_label)
        zero = self.mb.assign_int(0)
        self.mb.jump(merge_label, [zero])
        return self.mb.merge(merge_label, [f"bool_{merge_label}"])[0]

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _lower_expression(self, expression) -> Value:
        if isinstance(expression, ast.IntLiteral):
            return self.mb.assign_int(expression.value)
        if isinstance(expression, ast.BoolLiteral):
            return self.mb.assign_int(1 if expression.value else 0)
        if isinstance(expression, ast.NullLiteral):
            return self.mb.assign_null()
        if isinstance(expression, ast.ThisRef):
            if self.method.is_static:
                raise LoweringError("'this' used in a static method", expression.line)
            return self.mb.receiver
        if isinstance(expression, ast.VarRef):
            if expression.name in self.env:
                return self.env[expression.name]
            raise LoweringError(f"unknown variable {expression.name!r}", expression.line)
        if isinstance(expression, ast.NewObject):
            return self.mb.assign_new(expression.class_name)
        if isinstance(expression, ast.FieldAccess):
            receiver = self._lower_expression(expression.receiver)
            return self.mb.load_field(receiver, expression.field_name)
        if isinstance(expression, ast.MethodCall):
            return self._lower_call(expression)
        if isinstance(expression, ast.BinaryOp):
            if expression.op in ("&&", "||"):
                return self._lower_logical(expression)
            if expression.is_comparison:
                return self._lower_condition_to_value(expression)
            return self._lower_arithmetic(expression)
        if isinstance(expression, ast.InstanceOf):
            return self._lower_condition_to_value(expression)
        if isinstance(expression, ast.NotOp):
            return self._lower_condition_to_value(expression)
        raise LoweringError(f"unsupported expression {expression!r}")

    def _lower_arithmetic(self, expression: ast.BinaryOp) -> Value:
        if expression.op not in _ARITHMETIC_OPS:
            raise LoweringError(f"unsupported operator {expression.op!r}", expression.line)
        # Operands are evaluated for their effects; the result is opaque (Any).
        self._lower_expression(expression.left)
        self._lower_expression(expression.right)
        return self.mb.assign_any()

    def _lower_call(self, call: ast.MethodCall) -> Value:
        arguments = [self._lower_expression(argument) for argument in call.arguments]
        if call.is_static:
            return self.mb.invoke_static(call.static_class, call.method_name, arguments)
        receiver = self._lower_expression(call.receiver)
        return self.mb.invoke_virtual(receiver, call.method_name, arguments)


class Lowering:
    """Lowers a whole compilation unit into a closed-world program."""

    def __init__(self, unit: ast.CompilationUnit):
        self.unit = unit
        self.pb = ProgramBuilder()

    def lower(self) -> Program:
        self._declare_types()
        for cls in self.unit.classes:
            for method in cls.methods:
                self._lower_method(cls, method)
        return self.pb.build()

    # ------------------------------------------------------------------ #
    def _declare_types(self) -> None:
        for cls in self.unit.classes:
            self.pb.declare_class(cls.name, superclass=cls.superclass)
        for cls in self.unit.classes:
            if cls.superclass != "Object" and cls.superclass not in self.pb.hierarchy:
                raise LoweringError(
                    f"class {cls.name} extends unknown class {cls.superclass}", cls.line)
            for field in cls.fields:
                self.pb.declare_field(cls.name, field.name, _ir_type(field.declared_type))

    def _lower_method(self, cls: ast.ClassDeclNode, method: ast.MethodDeclNode) -> None:
        builder = self.pb.method(
            cls.name,
            method.name,
            params=[_ir_type(parameter.declared_type) for parameter in method.parameters],
            return_type=_ir_type(method.return_type),
            is_static=method.is_static,
            param_names=[parameter.name for parameter in method.parameters],
        )
        _MethodLowering(self.unit, builder, method, cls.name).lower_body()
        self.pb.finish_method(builder)


def lower_unit(unit: ast.CompilationUnit) -> Program:
    """Lower a parsed compilation unit to a program."""
    return Lowering(unit).lower()
