"""Recursive-descent parser for the surface language."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, TokenKind, tokenize

#: Type keywords accepted in declarations alongside class names.
_TYPE_KEYWORDS = {"int", "boolean", "void"}


class Parser:
    """Parses one compilation unit (a sequence of class declarations)."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.index = 0

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(f"{message}, found {token}", token.line, token.column)

    def _expect_symbol(self, text: str) -> Token:
        if not self.current.is_symbol(text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        if not self.current.is_keyword(text):
            raise self._error(f"expected keyword {text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise self._error("expected identifier")
        return self._advance()

    def _accept_symbol(self, text: str) -> bool:
        if self.current.is_symbol(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self.current.is_keyword(text):
            self._advance()
            return True
        return False

    def _parse_type_name(self) -> str:
        token = self.current
        if token.kind is TokenKind.IDENT:
            return self._advance().text
        if token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            return self._advance().text
        raise self._error("expected a type name")

    # ------------------------------------------------------------------ #
    # Declarations
    # ------------------------------------------------------------------ #
    def parse_compilation_unit(self) -> ast.CompilationUnit:
        classes: List[ast.ClassDeclNode] = []
        while self.current.kind is not TokenKind.EOF:
            classes.append(self._parse_class())
        return ast.CompilationUnit(tuple(classes))

    def _parse_class(self) -> ast.ClassDeclNode:
        line = self.current.line
        self._expect_keyword("class")
        name = self._expect_ident().text
        superclass = "Object"
        if self._accept_keyword("extends"):
            superclass = self._expect_ident().text
        self._expect_symbol("{")
        fields: List[ast.FieldDeclNode] = []
        methods: List[ast.MethodDeclNode] = []
        while not self.current.is_symbol("}"):
            member = self._parse_member()
            if isinstance(member, ast.FieldDeclNode):
                fields.append(member)
            else:
                methods.append(member)
        self._expect_symbol("}")
        return ast.ClassDeclNode(name, superclass, tuple(fields), tuple(methods), line)

    def _parse_member(self):
        line = self.current.line
        is_static = self._accept_keyword("static")
        declared_type = self._parse_type_name()
        name = self._expect_ident().text
        if self.current.is_symbol(";"):
            if is_static:
                raise self._error("static fields are not supported")
            self._advance()
            return ast.FieldDeclNode(declared_type, name, line)
        if self.current.is_symbol("("):
            parameters = self._parse_parameters()
            body = self._parse_block()
            return ast.MethodDeclNode(name, declared_type, parameters, body, is_static, line)
        raise self._error("expected ';' (field) or '(' (method)")

    def _parse_parameters(self) -> Tuple[ast.ParameterDecl, ...]:
        self._expect_symbol("(")
        parameters: List[ast.ParameterDecl] = []
        while not self.current.is_symbol(")"):
            declared_type = self._parse_type_name()
            name = self._expect_ident().text
            parameters.append(ast.ParameterDecl(declared_type, name))
            if not self.current.is_symbol(")"):
                self._expect_symbol(",")
        self._expect_symbol(")")
        return tuple(parameters)

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _parse_block(self) -> Tuple[object, ...]:
        self._expect_symbol("{")
        statements: List[object] = []
        while not self.current.is_symbol("}"):
            statements.append(self._parse_statement())
        self._expect_symbol("}")
        return tuple(statements)

    def _parse_statement(self):
        token = self.current
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("return"):
            return self._parse_return()
        if self._starts_local_declaration():
            return self._parse_local_declaration()
        return self._parse_assignment_or_expression()

    def _starts_local_declaration(self) -> bool:
        token = self.current
        looks_like_type = (
            token.kind is TokenKind.IDENT
            or (token.kind is TokenKind.KEYWORD and token.text in ("int", "boolean"))
        )
        return looks_like_type and self._peek().kind is TokenKind.IDENT

    def _parse_if(self) -> ast.IfStmt:
        line = self.current.line
        self._expect_keyword("if")
        self._expect_symbol("(")
        condition = self._parse_expression()
        self._expect_symbol(")")
        then_body = self._parse_block()
        else_body: Tuple[object, ...] = ()
        if self._accept_keyword("else"):
            if self.current.is_keyword("if"):
                else_body = (self._parse_if(),)
            else:
                else_body = self._parse_block()
        return ast.IfStmt(condition, then_body, else_body, line)

    def _parse_while(self) -> ast.WhileStmt:
        line = self.current.line
        self._expect_keyword("while")
        self._expect_symbol("(")
        condition = self._parse_expression()
        self._expect_symbol(")")
        body = self._parse_block()
        return ast.WhileStmt(condition, body, line)

    def _parse_return(self) -> ast.ReturnStmt:
        line = self.current.line
        self._expect_keyword("return")
        value: Optional[object] = None
        if not self.current.is_symbol(";"):
            value = self._parse_expression()
        self._expect_symbol(";")
        return ast.ReturnStmt(value, line)

    def _parse_local_declaration(self) -> ast.LocalDecl:
        line = self.current.line
        declared_type = self._parse_type_name()
        name = self._expect_ident().text
        initializer: Optional[object] = None
        if self._accept_symbol("="):
            initializer = self._parse_expression()
        self._expect_symbol(";")
        return ast.LocalDecl(declared_type, name, initializer, line)

    def _parse_assignment_or_expression(self):
        line = self.current.line
        expression = self._parse_expression()
        if self._accept_symbol("="):
            if not isinstance(expression, (ast.VarRef, ast.FieldAccess)):
                raise self._error("assignment target must be a variable or a field")
            value = self._parse_expression()
            self._expect_symbol(";")
            return ast.AssignStmt(expression, value, line)
        self._expect_symbol(";")
        return ast.ExprStmt(expression, line)

    # ------------------------------------------------------------------ #
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------ #
    def _parse_expression(self):
        return self._parse_logical_or()

    def _parse_logical_or(self):
        left = self._parse_logical_and()
        while self.current.is_symbol("||"):
            token = self._advance()
            right = self._parse_logical_and()
            left = ast.BinaryOp("||", left, right, token.line)
        return left

    def _parse_logical_and(self):
        left = self._parse_comparison()
        while self.current.is_symbol("&&"):
            token = self._advance()
            right = self._parse_comparison()
            left = ast.BinaryOp("&&", left, right, token.line)
        return left

    def _parse_comparison(self):
        left = self._parse_additive()
        while True:
            token = self.current
            if token.kind is TokenKind.SYMBOL and token.text in ("==", "!=", "<", "<=", ">", ">="):
                op = self._advance().text
                right = self._parse_additive()
                left = ast.BinaryOp(op, left, right, token.line)
            elif token.is_keyword("instanceof"):
                self._advance()
                class_name = self._expect_ident().text
                left = ast.InstanceOf(left, class_name, token.line)
            else:
                return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self.current.kind is TokenKind.SYMBOL and self.current.text in ("+", "-"):
            token = self._advance()
            right = self._parse_multiplicative()
            left = ast.BinaryOp(token.text, left, right, token.line)
        return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while self.current.kind is TokenKind.SYMBOL and self.current.text in ("*", "/"):
            token = self._advance()
            right = self._parse_unary()
            left = ast.BinaryOp(token.text, left, right, token.line)
        return left

    def _parse_unary(self):
        token = self.current
        if token.is_symbol("!"):
            self._advance()
            return ast.NotOp(self._parse_unary(), token.line)
        if token.is_symbol("-"):
            self._advance()
            operand = self._parse_unary()
            return ast.BinaryOp("-", ast.IntLiteral(0, token.line), operand, token.line)
        return self._parse_postfix()

    def _parse_postfix(self):
        expression = self._parse_primary()
        while self.current.is_symbol("."):
            self._advance()
            member = self._expect_ident().text
            if self.current.is_symbol("("):
                arguments = self._parse_arguments()
                static_class = None
                if isinstance(expression, ast.VarRef) and expression.name[:1].isupper():
                    # ``ClassName.method(...)``: a capitalized bare name is a
                    # static call; locals are required to start lowercase.
                    static_class = expression.name
                expression = ast.MethodCall(
                    expression, member, arguments, static_class, self.current.line)
            else:
                expression = ast.FieldAccess(expression, member, self.current.line)
        return expression

    def _parse_arguments(self) -> Tuple[object, ...]:
        self._expect_symbol("(")
        arguments: List[object] = []
        while not self.current.is_symbol(")"):
            arguments.append(self._parse_expression())
            if not self.current.is_symbol(")"):
                self._expect_symbol(",")
        self._expect_symbol(")")
        return tuple(arguments)

    def _parse_primary(self):
        token = self.current
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLiteral(int(token.text), token.line)
        if token.is_keyword("true"):
            self._advance()
            return ast.BoolLiteral(True, token.line)
        if token.is_keyword("false"):
            self._advance()
            return ast.BoolLiteral(False, token.line)
        if token.is_keyword("null"):
            self._advance()
            return ast.NullLiteral(token.line)
        if token.is_keyword("this"):
            self._advance()
            return ast.ThisRef(token.line)
        if token.is_keyword("new"):
            self._advance()
            class_name = self._expect_ident().text
            self._expect_symbol("(")
            self._expect_symbol(")")
            return ast.NewObject(class_name, token.line)
        if token.is_symbol("("):
            self._advance()
            expression = self._parse_expression()
            self._expect_symbol(")")
            return expression
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.VarRef(token.text, token.line)
        raise self._error("expected an expression")


def parse(source: str) -> ast.CompilationUnit:
    """Parse one compilation unit from source text."""
    return Parser(source).parse_compilation_unit()
