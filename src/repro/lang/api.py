"""Public frontend API: compile surface-language source to an IR program."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.lang.ast import CompilationUnit
from repro.lang.lowering import lower_unit
from repro.lang.parser import parse


def parse_source(source: str) -> CompilationUnit:
    """Parse source text into an AST without lowering it."""
    return parse(source)


def compile_source(source: str, entry_points: Optional[Iterable[str]] = None,
                   validate: bool = True) -> Program:
    """Compile source text into a closed-world :class:`~repro.ir.program.Program`.

    ``entry_points`` lists qualified method names (``Class.method``) used as
    analysis roots; when omitted, ``Main.main`` is used if it exists.
    """
    unit = parse_source(source)
    program = lower_unit(unit)
    roots = list(entry_points) if entry_points is not None else []
    if not roots and program.has_method("Main.main"):
        roots = ["Main.main"]
    for root in roots:
        program.add_entry_point(root)
    if validate:
        validate_program(program)
    return program
