"""Tokenizer for the Java-like surface language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.lang.errors import LexerError


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = {
    "class", "extends", "static", "void", "int", "boolean",
    "if", "else", "while", "return", "new", "null", "true", "false",
    "instanceof", "this",
}

#: Multi-character symbols must be listed before their prefixes.
SYMBOLS = [
    "==", "!=", "<=", ">=", "&&", "||",
    "{", "}", "(", ")", ";", ",", ".", "=", "<", ">", "+", "-", "*", "/", "!",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_symbol(self, text: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})"


class Lexer:
    """Converts source text into a token list (comments and whitespace skipped)."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.position < len(self.source):
                if self.source[self.position] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.position += 1

    def _skip_trivia(self) -> None:
        while True:
            char = self._peek()
            if char and char.isspace():
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._peek() and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if not self._peek():
                    raise LexerError("unterminated block comment", self.line, self.column)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        char = self._peek()
        if not char:
            return Token(TokenKind.EOF, "", line, column)
        if char.isalpha() or char == "_":
            return self._lex_word(line, column)
        if char.isdigit():
            return self._lex_number(line, column)
        for symbol in SYMBOLS:
            if self.source.startswith(symbol, self.position):
                self._advance(len(symbol))
                return Token(TokenKind.SYMBOL, symbol, line, column)
        raise LexerError(f"unexpected character {char!r}", line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.position]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.position
        while self._peek().isdigit():
            self._advance()
        return Token(TokenKind.INT, self.source[start:self.position], line, column)


def tokenize(source: str) -> List[Token]:
    """Tokenize a whole compilation unit."""
    return Lexer(source).tokenize()
