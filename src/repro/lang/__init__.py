"""A small Java-like surface language compiled to the SSA base language.

The frontend exists so that examples, tests, and documentation can express
programs as readable source text instead of builder calls.  It supports the
subset of Java needed by the paper's examples:

* classes with single inheritance, fields, instance and static methods;
* statements: local variable declarations, assignments (to locals and fields),
  ``if``/``else``, ``while``, ``return``, and expression statements;
* expressions: integer and boolean literals, ``null``, ``new T()``, local
  variables, field reads, virtual and static calls, comparisons, ``instanceof``,
  and arithmetic (which the analysis abstracts to ``Any``).

Example::

    from repro.lang import compile_source

    program = compile_source('''
        class Config {
            boolean isEnabled() { return false; }
        }
        class Main {
            static void main() {
                Config c = new Config();
                if (c.isEnabled()) {
                    Main.expensiveFeature();
                }
            }
            static void expensiveFeature() { }
        }
    ''', entry_points=["Main.main"])
"""

from repro.lang.api import compile_source, parse_source
from repro.lang.errors import LangError, LexerError, LoweringError, ParseError

__all__ = [
    "LangError",
    "LexerError",
    "LoweringError",
    "ParseError",
    "compile_source",
    "parse_source",
]
