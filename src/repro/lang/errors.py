"""Error types of the surface-language frontend."""

from __future__ import annotations


class LangError(Exception):
    """Base class for all frontend errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LexerError(LangError):
    """Raised on unexpected characters or malformed literals."""


class ParseError(LangError):
    """Raised on syntactically invalid input."""


class LoweringError(LangError):
    """Raised when a parsed program cannot be lowered to the base language."""
