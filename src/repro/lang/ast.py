"""Abstract syntax tree of the surface language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class IntLiteral:
    value: int
    line: int = 0


@dataclass(frozen=True)
class BoolLiteral:
    value: bool
    line: int = 0


@dataclass(frozen=True)
class NullLiteral:
    line: int = 0


@dataclass(frozen=True)
class VarRef:
    name: str
    line: int = 0


@dataclass(frozen=True)
class ThisRef:
    line: int = 0


@dataclass(frozen=True)
class NewObject:
    class_name: str
    line: int = 0


@dataclass(frozen=True)
class FieldAccess:
    receiver: "Expression"
    field_name: str
    line: int = 0


@dataclass(frozen=True)
class MethodCall:
    """``receiver.method(args)``; ``receiver`` is a class name string for static calls."""

    receiver: "Expression"
    method_name: str
    arguments: Tuple["Expression", ...]
    static_class: Optional[str] = None
    line: int = 0

    @property
    def is_static(self) -> bool:
        return self.static_class is not None


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic (``+ - * /``) or comparison (``== != < <= > >=``) operation."""

    op: str
    left: "Expression"
    right: "Expression"
    line: int = 0

    @property
    def is_comparison(self) -> bool:
        return self.op in ("==", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class InstanceOf:
    value: "Expression"
    class_name: str
    line: int = 0


@dataclass(frozen=True)
class NotOp:
    operand: "Expression"
    line: int = 0


Expression = (
    IntLiteral, BoolLiteral, NullLiteral, VarRef, ThisRef, NewObject,
    FieldAccess, MethodCall, BinaryOp, InstanceOf, NotOp,
)


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LocalDecl:
    declared_type: str
    name: str
    initializer: Optional[object]
    line: int = 0


@dataclass(frozen=True)
class AssignStmt:
    """Assignment to a local variable or to a field (``target`` is VarRef or FieldAccess)."""

    target: object
    value: object
    line: int = 0


@dataclass(frozen=True)
class IfStmt:
    condition: object
    then_body: Tuple[object, ...]
    else_body: Tuple[object, ...]
    line: int = 0


@dataclass(frozen=True)
class WhileStmt:
    condition: object
    body: Tuple[object, ...]
    line: int = 0


@dataclass(frozen=True)
class ReturnStmt:
    value: Optional[object]
    line: int = 0


@dataclass(frozen=True)
class ExprStmt:
    expression: object
    line: int = 0


Statement = (LocalDecl, AssignStmt, IfStmt, WhileStmt, ReturnStmt, ExprStmt)


# --------------------------------------------------------------------------- #
# Declarations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ParameterDecl:
    declared_type: str
    name: str


@dataclass(frozen=True)
class FieldDeclNode:
    declared_type: str
    name: str
    line: int = 0


@dataclass(frozen=True)
class MethodDeclNode:
    name: str
    return_type: str
    parameters: Tuple[ParameterDecl, ...]
    body: Tuple[object, ...]
    is_static: bool = False
    line: int = 0


@dataclass(frozen=True)
class ClassDeclNode:
    name: str
    superclass: str
    fields: Tuple[FieldDeclNode, ...]
    methods: Tuple[MethodDeclNode, ...]
    line: int = 0


@dataclass(frozen=True)
class CompilationUnit:
    classes: Tuple[ClassDeclNode, ...]

    def class_named(self, name: str) -> ClassDeclNode:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(f"no class named {name!r}")
