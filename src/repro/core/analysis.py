"""Public facade: analysis configurations and the :class:`SkipFlowAnalysis` driver.

This module is the stable entry point into the analysis core: construct an
:class:`AnalysisConfig` (or one of its canonical factory configurations),
hand it to :class:`SkipFlowAnalysis` together with a
:class:`~repro.ir.program.Program`, and receive an
:class:`~repro.core.results.AnalysisResult`.

Invariant: with every switch at its default (``AnalysisConfig.skipflow()``
for SkipFlow, ``AnalysisConfig.baseline_pta()`` for the baseline, and
``saturation_threshold=None``) results are bit-identical to the seed
implementation of the paper — the same reachable sets, value states, and
solver step counts.  Optional features (the saturation cutoff, validation)
only change results when explicitly enabled, and the benchmark engine keys
its caches on the full config so non-default results are never confused
with default ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, Optional

from repro.core.results import AnalysisResult, SolverStats
from repro.core.solver import SkipFlowSolver
from repro.ir.program import Program
from repro.ir.validate import validate_program


@dataclass(frozen=True)
class AnalysisConfig:
    """Feature switches of the propagation engine.

    The same engine implements both SkipFlow and the baseline points-to
    analysis of the paper; the configurations differ only in these switches.

    ``use_predicates``
        Honour predicate edges: flows stay disabled until their predicate is
        enabled with a non-empty value state.  Disabling this makes the
        analysis flow-insensitive (every flow is enabled immediately).
    ``track_primitives``
        Track concrete primitive constants.  When disabled, every primitive
        constant is abstracted to ``Any`` as in the baseline.
    ``filter_type_checks``
        Apply ``instanceof`` filtering to the value states inside branches.
    ``filter_comparisons``
        Apply null-check and primitive-comparison filtering inside branches.
    ``saturation_threshold``
        Optional cutoff for megamorphic flows: a flow whose reference type
        set grows beyond this many types is collapsed to the conservative
        any-type sentinel and unlinked from further propagation, as in
        GraalVM's points-to analysis.  ``None`` (the default) disables the
        cutoff and preserves the paper's exact semantics.
    """

    name: str = "skipflow"
    use_predicates: bool = True
    track_primitives: bool = True
    filter_type_checks: bool = True
    filter_comparisons: bool = True
    validate: bool = False
    saturation_threshold: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Canonical configurations
    # ------------------------------------------------------------------ #
    @staticmethod
    def skipflow() -> "AnalysisConfig":
        """The full SkipFlow analysis (predicates + primitive values)."""
        return AnalysisConfig(name="SkipFlow")

    @staticmethod
    def baseline_pta() -> "AnalysisConfig":
        """The paper's baseline: type-based, flow-insensitive, context-insensitive."""
        return AnalysisConfig(
            name="PTA",
            use_predicates=False,
            track_primitives=False,
            filter_type_checks=True,
            filter_comparisons=False,
        )

    @staticmethod
    def predicates_only() -> "AnalysisConfig":
        """Ablation: predicate edges without primitive constant tracking."""
        return AnalysisConfig(
            name="SkipFlow-predicates-only",
            use_predicates=True,
            track_primitives=False,
            filter_type_checks=True,
            filter_comparisons=True,
        )

    @staticmethod
    def primitives_only() -> "AnalysisConfig":
        """Ablation: primitive tracking without predicate edges."""
        return AnalysisConfig(
            name="SkipFlow-primitives-only",
            use_predicates=False,
            track_primitives=True,
            filter_type_checks=True,
            filter_comparisons=True,
        )

    def with_name(self, name: str) -> "AnalysisConfig":
        return replace(self, name=name)

    def with_saturation_threshold(self, threshold: Optional[int]) -> "AnalysisConfig":
        return replace(self, saturation_threshold=threshold)


class SkipFlowAnalysis:
    """Runs one analysis configuration over a program and packages the result.

    The driver is deterministic: for a fixed program and configuration every
    run produces the same reachable set, value states, and solver counters
    (only wall-clock ``analysis_time_seconds`` varies), which is what makes
    the engine's result cache and the CI solver-steps gate sound.  The
    program is treated as read-only input; analyzing the same ``Program``
    object under two configurations is supported but callers that mutate
    programs (e.g. reflection configs) should hand each analysis its own
    copy, as the benchmark engine does via the program store.
    """

    def __init__(self, program: Program, config: Optional[AnalysisConfig] = None):
        self.program = program
        self.config = config or AnalysisConfig.skipflow()

    def run(self, roots: Optional[Iterable[str]] = None) -> AnalysisResult:
        """Solve to a fixed point and return an :class:`AnalysisResult`."""
        if self.config.validate:
            validate_program(self.program)
        solver = SkipFlowSolver(self.program, self.config)
        started = time.perf_counter()
        solver.solve(roots)
        elapsed = time.perf_counter() - started
        return AnalysisResult(
            program=self.program,
            config=self.config,
            pvpg=solver.pvpg,
            reachable_methods=set(solver.reachable),
            stub_methods=set(solver.stub_methods),
            analysis_time_seconds=elapsed,
            steps=solver.steps,
            stats=SolverStats(
                steps=solver.steps,
                joins=solver.joins,
                transfers=solver.transfers,
                saturated_flows=solver.saturated_flows,
            ),
        )


def run_skipflow(program: Program, roots: Optional[Iterable[str]] = None) -> AnalysisResult:
    """Deprecated shim: run the full SkipFlow configuration.

    Prefer ``AnalysisSession.from_program(program).run("skipflow")`` (see
    :mod:`repro.api` and ``docs/api.md``); this wrapper is kept so existing
    callers — and the seed tests — stay bit-identical.
    """
    return SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run(roots)


def run_baseline(program: Program, roots: Optional[Iterable[str]] = None) -> AnalysisResult:
    """Deprecated shim: run the baseline points-to analysis.

    Prefer ``AnalysisSession.from_program(program).run("pta")`` (see
    :mod:`repro.api` and ``docs/api.md``).
    """
    return SkipFlowAnalysis(program, AnalysisConfig.baseline_pta()).run(roots)
