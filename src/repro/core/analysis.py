"""Public facade: analysis configurations and the :class:`SkipFlowAnalysis` driver.

This module is the stable entry point into the analysis core: construct an
:class:`AnalysisConfig` (or one of its canonical factory configurations),
hand it to :class:`SkipFlowAnalysis` together with a
:class:`~repro.ir.program.Program`, and receive an
:class:`~repro.core.results.AnalysisResult`.

Invariant: with every switch at its default (``AnalysisConfig.skipflow()``
for SkipFlow, ``AnalysisConfig.baseline_pta()`` for the baseline, and
``saturation_threshold=None``) results are bit-identical to the seed
implementation of the paper — the same reachable sets, value states, and
solver step counts.  Optional features (the saturation cutoff, validation)
only change results when explicitly enabled, and the benchmark engine keys
its caches on the full config so non-default results are never confused
with default ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, Optional

from repro.core.kernel.policy import SolverPolicy
from repro.core.kernel.saturation import OFF
from repro.core.results import AnalysisResult, Deferred, SolverStats
from repro.core.solver import SkipFlowSolver
from repro.core.state import SolverState
from repro.ir.program import Program
from repro.ir.validate import validate_program

#: The propagation kernels a config may select (``AnalysisConfig.kernel``).
KERNELS = ("object", "arena", "parallel")


@dataclass(frozen=True)
class AnalysisConfig:
    """Feature switches of the propagation engine.

    The same engine implements both SkipFlow and the baseline points-to
    analysis of the paper; the configurations differ only in these switches.

    ``use_predicates``
        Honour predicate edges: flows stay disabled until their predicate is
        enabled with a non-empty value state.  Disabling this makes the
        analysis flow-insensitive (every flow is enabled immediately).
    ``track_primitives``
        Track concrete primitive constants.  When disabled, every primitive
        constant is abstracted to ``Any`` as in the baseline.
    ``filter_type_checks``
        Apply ``instanceof`` filtering to the value states inside branches.
    ``filter_comparisons``
        Apply null-check and primitive-comparison filtering inside branches.
    ``saturation_threshold``
        Optional cutoff for megamorphic flows: a flow whose reference type
        set grows beyond this many types is collapsed to a conservative
        sentinel and unlinked from further propagation, as in GraalVM's
        points-to analysis.  ``None`` (the default) disables the cutoff and
        preserves the paper's exact semantics.
    ``scheduling`` / ``saturation_policy``
        The solver-kernel policies (:mod:`repro.core.kernel`): which
        worklist order the fixed-point iteration uses, and which sentinel a
        saturated flow collapses to.  The two saturation fields are kept
        coherent automatically: a bare threshold engages the classic
        ``closed-world`` sentinel, and dropping the threshold resets the
        policy to ``off`` — so ``(saturation_policy, saturation_threshold)``
        is canonical, which matters because the benchmark engine hashes the
        whole config into its cache keys.  The defaults (``fifo`` + ``off``)
        are the seed solver, bit-identical down to step counts; see
        :attr:`solver_policy` / :meth:`with_policy` for the bundled
        :class:`~repro.core.kernel.policy.SolverPolicy` view.
    ``kernel``
        Which propagation kernel executes the solve: ``object`` (the seed
        solver over :class:`~repro.core.flows.Flow` objects), ``arena``
        (:class:`~repro.core.kernel.arena_kernel.ArenaKernelSolver`, the
        flat integer-id kernel over a frozen
        :mod:`~repro.ir.arena` buffer), or ``parallel``
        (:class:`~repro.core.kernel.parallel_kernel.ParallelKernelSolver`,
        partitioned fid worklists over the shared-memory arena).  All
        three produce the same reachable sets, value states, and edges
        (``object``/``arena`` match step counts too; the parallel
        kernel's counters depend on the partitioning), so the choice is
        purely a performance lever; solves a kernel cannot mirror (warm
        resumes, custom registered policies, ``declared-type`` saturation
        under ``parallel``) fall back down the chain — parallel → serial
        arena → object — transparently.
    ``partitions``
        Worker count for the ``parallel`` kernel (``None`` sizes it
        automatically from the core budget and program size).  Ignored by
        the serial kernels; fewer than two partitions falls back to the
        serial arena kernel.
    """

    name: str = "skipflow"
    use_predicates: bool = True
    track_primitives: bool = True
    filter_type_checks: bool = True
    filter_comparisons: bool = True
    validate: bool = False
    saturation_threshold: Optional[int] = None
    scheduling: str = "fifo"
    saturation_policy: str = OFF
    kernel: str = "object"
    partitions: Optional[int] = None

    def __post_init__(self) -> None:
        # Canonicalize the saturation half (see the class docstring), then
        # validate the whole policy eagerly so a typo fails where the config
        # is written down, not deep inside a solve.
        if self.saturation_threshold is not None and self.saturation_policy == OFF:
            object.__setattr__(self, "saturation_policy", "closed-world")
        elif self.saturation_threshold is None and self.saturation_policy != OFF:
            object.__setattr__(self, "saturation_policy", OFF)
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; available: "
                f"{', '.join(KERNELS)}")
        if self.partitions is not None and self.partitions < 1:
            raise ValueError(
                f"partitions must be a positive worker count, "
                f"got {self.partitions!r}")
        self.solver_policy  # noqa: B018 — constructing it validates the names

    # ------------------------------------------------------------------ #
    # Canonical configurations
    # ------------------------------------------------------------------ #
    @staticmethod
    def skipflow() -> "AnalysisConfig":
        """The full SkipFlow analysis (predicates + primitive values)."""
        return AnalysisConfig(name="SkipFlow")

    @staticmethod
    def baseline_pta() -> "AnalysisConfig":
        """The paper's baseline: type-based, flow-insensitive, context-insensitive."""
        return AnalysisConfig(
            name="PTA",
            use_predicates=False,
            track_primitives=False,
            filter_type_checks=True,
            filter_comparisons=False,
        )

    @staticmethod
    def predicates_only() -> "AnalysisConfig":
        """Ablation: predicate edges without primitive constant tracking."""
        return AnalysisConfig(
            name="SkipFlow-predicates-only",
            use_predicates=True,
            track_primitives=False,
            filter_type_checks=True,
            filter_comparisons=True,
        )

    @staticmethod
    def primitives_only() -> "AnalysisConfig":
        """Ablation: primitive tracking without predicate edges."""
        return AnalysisConfig(
            name="SkipFlow-primitives-only",
            use_predicates=False,
            track_primitives=True,
            filter_type_checks=True,
            filter_comparisons=True,
        )

    def with_name(self, name: str) -> "AnalysisConfig":
        return replace(self, name=name)

    def with_saturation_threshold(self, threshold: Optional[int]) -> "AnalysisConfig":
        """This config with the cutoff at ``threshold`` (``None`` turns it off).

        A threshold on a config whose policy is ``off`` engages the classic
        ``closed-world`` sentinel (the pre-kernel behaviour); an explicit
        policy is preserved.
        """
        return replace(self, saturation_threshold=threshold)

    def with_scheduling(self, scheduling: str) -> "AnalysisConfig":
        """This config solved under a different worklist policy."""
        return replace(self, scheduling=scheduling)

    def with_saturation_policy(self, saturation: str,
                               threshold: Optional[int] = None) -> "AnalysisConfig":
        """This config with a different cutoff sentinel (and optional threshold).

        ``off`` drops the threshold; any other policy needs one — either
        passed here or already present on the config.
        """
        if saturation == OFF:
            return replace(self, saturation_policy=OFF, saturation_threshold=None)
        threshold = threshold if threshold is not None else self.saturation_threshold
        if threshold is None:
            raise ValueError(
                f"saturation policy {saturation!r} needs a threshold; pass "
                f"threshold=... or set one with with_saturation_threshold first")
        return replace(self, saturation_policy=saturation,
                       saturation_threshold=threshold)

    def with_policy(self, policy: SolverPolicy) -> "AnalysisConfig":
        """This config solved under the given kernel policy bundle."""
        return replace(self, scheduling=policy.scheduling,
                       saturation_policy=policy.saturation,
                       saturation_threshold=policy.saturation_threshold)

    def with_kernel(self, kernel: str) -> "AnalysisConfig":
        """This config executed by a different propagation kernel."""
        return replace(self, kernel=kernel)

    def with_partitions(self, partitions: Optional[int]) -> "AnalysisConfig":
        """This config with an explicit parallel-kernel worker count."""
        return replace(self, partitions=partitions)

    @property
    def solver_policy(self) -> SolverPolicy:
        """The kernel policy bundle this config solves under."""
        return SolverPolicy(scheduling=self.scheduling,
                            saturation=self.saturation_policy,
                            saturation_threshold=self.saturation_threshold)


class SkipFlowAnalysis:
    """Runs one analysis configuration over a program and packages the result.

    The driver is deterministic: for a fixed program and configuration every
    run produces the same reachable set, value states, and solver counters
    (only wall-clock ``analysis_time_seconds`` varies), which is what makes
    the engine's result cache and the CI solver-steps gate sound.  The
    program is treated as read-only input; analyzing the same ``Program``
    object under two configurations is supported but callers that mutate
    programs (e.g. reflection configs) should hand each analysis its own
    copy, as the benchmark engine does via the program store.

    ``state`` resumes a previous solve instead of starting cold: pass the
    ``solver_state`` of an earlier :class:`~repro.core.results.
    AnalysisResult` (or a restored snapshot) after growing the program
    monotonically, and only the new parts are propagated.  The state's
    counters are cumulative across resumed solves, so a resumed result's
    ``stats`` report total effort; diff them against the previous result to
    get the warm increment.  Resuming consumes the state (it is mutated in
    place); :meth:`~repro.core.state.SolverState.fork` first to keep a
    branch point.
    """

    def __init__(self, program: Program, config: Optional[AnalysisConfig] = None,
                 *, state: Optional[SolverState] = None):
        self.program = program
        self.config = config or AnalysisConfig.skipflow()
        self.state = state

    def run(self, roots: Optional[Iterable[str]] = None) -> AnalysisResult:
        """Solve to a fixed point and return an :class:`AnalysisResult`."""
        if self.config.validate:
            validate_program(self.program)
        solver, elapsed, backend = self._solve(roots)
        # ``pvpg`` / ``solver_state`` are handed over as thunks: the object
        # solver already holds both (the thunk is free), while the arena
        # kernel inflates its object graph only if a consumer actually asks.
        return AnalysisResult(
            program=self.program,
            config=self.config,
            pvpg=Deferred(lambda: solver.pvpg),
            reachable_methods=set(solver.reachable),
            stub_methods=set(solver.stub_methods),
            analysis_time_seconds=elapsed,
            steps=solver.steps,
            stats=SolverStats(
                steps=solver.steps,
                joins=solver.joins,
                transfers=solver.transfers,
                saturated_flows=solver.saturated_flows,
            ),
            solver_state=Deferred(lambda: solver.state),
            kernel_backend=backend,
        )

    def _solve(self, roots: Optional[Iterable[str]]):
        """Run the configured kernel; fall back down the chain loudly-never.

        The arena kernels only take cold solves they can prove
        bit-identical; anything else raises
        :class:`~repro.core.kernel.arena_kernel.ArenaKernelUnsupported`
        before or during :meth:`solve`, and the fallback below reruns cold
        with the next kernel down — ``parallel`` falls back to the serial
        arena kernel (warm resumes, ``declared-type`` saturation, too few
        cores/partitions), and both fall back to the object solver — safe
        because the arena paths are only taken when there is no borrowed
        state to corrupt.
        """
        if self.config.kernel in ("arena", "parallel") and self.state is None:
            from repro.core.kernel.arena_kernel import (
                ArenaKernelSolver,
                ArenaKernelUnsupported,
            )

            # The timer covers construction too: freezing a plain program
            # into an arena is real analysis-path work (an attached
            # ``ArenaProgram`` makes it near-free, which is the point of
            # the store's arena blobs).
            try_serial_arena = True
            if self.config.kernel == "parallel":
                from repro.core.kernel.parallel_kernel import (
                    ParallelKernelSolver,
                    ParallelKernelUnsupported,
                )

                started = time.perf_counter()
                try:
                    solver = ParallelKernelSolver(self.program, self.config)
                    solver.solve(roots)
                    return solver, time.perf_counter() - started, solver
                except ParallelKernelUnsupported:
                    pass  # partitioning refused; the serial arena may run
                except ArenaKernelUnsupported:
                    # Raised by the shared base checks (custom scheduling,
                    # unproven saturation): the serial arena kernel would
                    # refuse identically, so go straight to the object solver.
                    try_serial_arena = False
            if try_serial_arena:
                started = time.perf_counter()
                try:
                    solver = ArenaKernelSolver(self.program, self.config)
                    solver.solve(roots)
                    return solver, time.perf_counter() - started, solver
                except ArenaKernelUnsupported:
                    pass
        solver = SkipFlowSolver(self.program, self.config, state=self.state)
        started = time.perf_counter()
        solver.solve(roots)
        return solver, time.perf_counter() - started, None


def run_skipflow(program: Program, roots: Optional[Iterable[str]] = None) -> AnalysisResult:
    """Deprecated shim: run the full SkipFlow configuration.

    Prefer ``AnalysisSession.from_program(program).run("skipflow")`` (see
    :mod:`repro.api` and ``docs/api.md``); this wrapper is kept so existing
    callers — and the seed tests — stay bit-identical.
    """
    return SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run(roots)


def run_baseline(program: Program, roots: Optional[Iterable[str]] = None) -> AnalysisResult:
    """Deprecated shim: run the baseline points-to analysis.

    Prefer ``AnalysisSession.from_program(program).run("pta")`` (see
    :mod:`repro.api` and ``docs/api.md``).
    """
    return SkipFlowAnalysis(program, AnalysisConfig.baseline_pta()).run(roots)
