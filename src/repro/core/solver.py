"""The fixed-point solver: value propagation through PVPGs (Appendix C).

The solver maintains a worklist of flows whose value state changed and a
queue of invoke flows whose call targets may need (re-)linking.  All state is
monotone — value states only grow in the lattice ``L``, flows only ever switch
from disabled to enabled, and edges are only added — so the iteration reaches
a fixed point.

The inference rules of Figure 15 map onto the implementation as follows:

=============  ==============================================================
Rule           Implementation
=============  ==============================================================
Source         :meth:`SkipFlowSolver._enable` joins the constant produced by a
               :class:`~repro.core.flows.SourceFlow` into its state.
Propagate      :meth:`SkipFlowSolver._deliver` joins ``VSout`` of the source
               into ``VSin`` of the use-edge target.
Predicate      processing an enabled, non-empty flow enables its predicate
               targets (:meth:`SkipFlowSolver._process`).
Load / Store   :meth:`SkipFlowSolver._link_fields` looks up the field flow for
               every receiver type and adds the corresponding use edges.
Invoke         :meth:`SkipFlowSolver._link_invoke` resolves call targets from
               the receiver state, marks them reachable, and links arguments,
               parameters, and returns.
TypeCheck      :meth:`~repro.core.flows.FilterTypeFlow.transfer`
Cond           :meth:`~repro.core.flows.FilterCompareFlow.transfer` via
               :func:`~repro.core.compare.compare_states`
PassThrough    :meth:`~repro.core.flows.Flow.transfer`
=============  ==============================================================
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional, Set

from repro.core.flows import (
    FilterCompareFlow,
    Flow,
    InvokeFlow,
    LoadFieldFlow,
    ParameterFlow,
    SourceFlow,
    StoreFieldFlow,
)
from repro.core.kernel.policy import DEFAULT_POLICY, SolverPolicy
from repro.core.kernel.saturation import make_saturation_policy
from repro.core.kernel.scheduling import make_scheduling_policy
from repro.core.pvpg import MethodPVPG
from repro.core.pvpg_builder import PVPGBuilder
from repro.core.state import SolverState, SolverStateError
from repro.ir.instructions import InvokeKind
from repro.ir.method import Method
from repro.ir.program import Program
from repro.ir.types import (
    INT_TYPE_NAME,
    NULL_TYPE_NAME,
    MethodSignature,
)
from repro.lattice.value_state import ValueState


class SkipFlowSolver:
    """Interprocedural fixed-point solver over predicated value propagation graphs.

    The class is the propagation/linking *core* of the solver kernel
    (:mod:`repro.core.kernel`): it owns delivery, predicate enabling, and
    invoke/field linking, while two pluggable policies — resolved from
    ``config.solver_policy`` — own the rest:

    * a *scheduling policy* owns the worklist container and pop order
      (``fifo``, the bit-identical seed default; ``lifo``; ``degree``;
      ``rpo``).  Every fair order reaches the same fixed point; only the
      effort counters differ.
    * a *saturation policy* decides when a megamorphic flow collapses and
      which top it collapses to (``off`` — the exact default, represented
      as no policy object at all so the hot path pays nothing;
      ``closed-world``; ``declared-type``).  A saturated flow's joins are
      skipped because its state already dominates anything that could
      arrive, which keeps the result a sound over-approximation.

    Two implementation notes on the hot path:

    * Value states are hash-consed (:mod:`repro.lattice.value_state`) and
      :meth:`ValueState.join` returns the identical left operand when the join
      adds nothing, so change detection below uses ``is`` instead of ``==``.
    * Worklist membership is an intrusive ``in_worklist`` / ``in_link_queue``
      bit on each :class:`Flow` rather than a side set of flow ids; the
      scheduling policy therefore never sees duplicates.

    The *mutable* half of the solve — the PVPG, reachability, counters, and
    the injection record — lives in a :class:`~repro.core.state.SolverState`
    that the solver borrows rather than owns.  A fresh solver gets the empty
    state (the seed-identical cold path); constructing a solver around the
    state of a previous solve *resumes* the Kleene iteration, which is sound
    whenever the program only grew monotonically in between (see
    :mod:`repro.core.state` and :mod:`repro.ir.delta`).  A state belongs to
    at most one live solver at a time; use :meth:`SolverState.fork` to
    branch.
    """

    def __init__(self, program: Program, config,
                 state: Optional[SolverState] = None) -> None:
        self.program = program
        self.hierarchy = program.hierarchy
        self.config = config

        #: The kernel policies this solve runs under (``config.solver_policy``;
        #: bare config objects without one get the seed default).
        self.policy: SolverPolicy = getattr(config, "solver_policy", DEFAULT_POLICY)
        if state is None:
            state = SolverState.empty(config)
        elif state.config is not None and state.config != config:
            raise SolverStateError(
                f"cannot resume: the state was solved under configuration "
                f"{getattr(state.config, 'name', state.config)!r}, not "
                f"{getattr(config, 'name', config)!r}")
        if state.config is None:
            state.config = config
        #: The borrowed mutable fixpoint state (see the class docstring).
        self.state = state
        self.pvpg = state.pvpg
        self.builder = PVPGBuilder(program, self.pvpg, config)
        self._worklist = make_scheduling_policy(self.policy.scheduling)
        #: ``None`` when the cutoff is off — the hot path skips the feature.
        #: Built per solve (not here): program-aware policies need the roots.
        self._saturation = None
        #: Roots of the current solve (old seeds + new roots), for policies
        #: whose origin computation needs them; set by :meth:`solve`.
        self._solve_roots: tuple = ()
        self._pending_links: Deque[InvokeFlow] = deque()

    # ------------------------------------------------------------------ #
    # State views (the mutable fixpoint state lives on ``self.state``)
    # ------------------------------------------------------------------ #
    @property
    def reachable(self) -> Set[str]:
        """Qualified names of methods with bodies marked reachable."""
        return self.state.reachable

    @property
    def stub_methods(self) -> Set[str]:
        """Qualified names of called methods without a body (conservative)."""
        return self.state.stub_methods

    @property
    def steps(self) -> int:
        """Worklist events processed (a machine-independent cost proxy)."""
        return self.state.steps

    @property
    def joins(self) -> int:
        """Joins attempted against a flow's input state (delivery + injection)."""
        return self.state.joins

    @property
    def transfers(self) -> int:
        """Transfer-function evaluations (recomputations of ``VSout``)."""
        return self.state.transfers

    @property
    def saturated_flows(self) -> int:
        """Flows collapsed by the saturation cutoff (0 when the cutoff is off)."""
        return self.state.saturated_flows

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(self, roots: Optional[Iterable[str]] = None) -> None:
        """Run the analysis to a fixed point starting from the root methods.

        On a fresh state this is the seed-identical cold solve.  On a state
        that has already been solved, the iteration *resumes*: the restored
        worklist residue is rescheduled, saturated flows are re-collapsed
        against the current program's (possibly wider) sentinels, previous
        conservative injections are re-played, and only then are the roots
        seeded — so new roots, new classes, and new methods propagate into
        the existing fixpoint instead of re-deriving it.
        """
        state = self.state
        resuming = not state.is_fresh
        if resuming:
            state.validate_resume(self.program)
        pred_on = self.pvpg.pred_on
        pred_on.enabled = True
        pred_on.state = pred_on.artificial_on_enable

        root_names = list(roots) if roots is not None else list(self.program.entry_points)
        if not root_names:
            raise ValueError("no root methods: provide roots or program entry points")
        self._saturation = make_saturation_policy(
            self.policy.saturation, self.hierarchy,
            self.policy.saturation_threshold,
            program=self.program, roots=tuple(root_names))
        self._solve_roots = tuple(dict.fromkeys(
            list(state.seeded_roots) + root_names))
        # Reachability-refined policies compute their origins from the
        # state's reachable set; seed them before any (re-)collapse so
        # resume-time sentinels are already current.
        self._refresh_saturation()
        previously_seeded = set(state.seeded_roots)
        if resuming:
            self._reattach(state.seeded_roots)
        for root in root_names:
            graph = self._make_reachable(root)
            if graph is None:
                continue
            if resuming and root in previously_seeded:
                continue  # _reattach already re-played this root's seed.
            self._seed_root_parameters(graph)
            if root not in previously_seeded:
                state.seeded_roots.append(root)
                previously_seeded.add(root)
        state.solve_count += 1
        self._run()
        # Optimistic refinement: policies whose sentinel depends on the
        # reachable set (``allocated-type-reachable``) may have collapsed
        # flows against origins that the inner fixpoint then outgrew.
        # Re-collapse to the widened sentinels and iterate; the loop
        # terminates because origins only grow and are bounded by the
        # closed world's type count.
        while self._refresh_saturation():
            self._recollapse_saturated()
            self._run()

    # ------------------------------------------------------------------ #
    # Resumption
    # ------------------------------------------------------------------ #
    def _reattach(self, seeded_roots: Iterable[str]) -> None:
        """Prepare a previously solved state for a warm continuation.

        Three things can be stale after a monotone program change:

        * the worklist residue — flows whose intrusive membership bits were
          set when the state was snapshotted mid-solve (empty at a fixpoint)
          must re-enter the fresh scheduling container;
        * saturated flows — their sentinel was computed against the *old*
          program, and every sentinel only widens as the world grows
          (closed-world and allocated tops gain types, declared subtrees
          gain subclasses).  Joins into a saturated flow are skipped, so the
          flow must first be re-collapsed to the current sentinel or a cold
          solve of the grown program would see more than the resumed one;
        * conservative injections — root parameter seeds and stub-callee
          effects inject ``instantiable_subtypes`` of declared types, which
          also grow with the hierarchy.  Re-playing them is a no-op join
          whenever nothing changed.
        """
        for flow in self.pvpg.all_flows():
            if flow.in_worklist:
                self._worklist.push(flow)
            if isinstance(flow, InvokeFlow) and flow.in_link_queue:
                self._pending_links.append(flow)
        self._recollapse_saturated()
        for root in seeded_roots:
            graph = self.pvpg.method_graph(root)
            if graph is not None:
                self._seed_root_parameters(graph)
        for invoke_flow, signature in list(self.state.stub_links):
            self._apply_stub_effects(invoke_flow, signature)

    def _refresh_saturation(self) -> bool:
        """Let a reachability-aware cutoff recompute its origin set.

        Duck-typed: only policies exposing ``refresh_origins`` (today
        ``allocated-type-reachable``) participate; every other policy —
        and the policy-less exact path — returns ``False`` immediately,
        so the refinement loop is a single no-op check for them.
        """
        refresh = getattr(self._saturation, "refresh_origins", None)
        if refresh is None:
            return False
        return refresh(
            frozenset(self.state.reachable),
            tuple(signature for _, signature in self.state.stub_links),
            self._solve_roots)

    def _recollapse_saturated(self) -> None:
        """Re-collapse saturated flows against the current sentinels.

        Joins into a saturated flow are skipped, so whenever a sentinel may
        have widened — the program grew before a resume, or a refinement
        pass grew a reachability-refined origin set — every saturated flow
        must jump to the new top (and reschedule) or the solve would
        under-approximate what a cold solve of the same program sees.
        """
        saturation = self._saturation
        if saturation is None:
            return
        for flow in self.pvpg.all_flows():
            if not flow.saturated:
                continue
            refreshed = flow.state.join(saturation.sentinel_for(flow))
            if refreshed is not flow.state:
                flow.input_state = refreshed
                flow.state = refreshed
                if flow.enabled:
                    self._schedule(flow)

    # ------------------------------------------------------------------ #
    # Reachability
    # ------------------------------------------------------------------ #
    def _make_reachable(self, qualified_name: str) -> Optional[MethodPVPG]:
        existing = self.pvpg.method_graph(qualified_name)
        if existing is not None:
            return existing
        method = self.program.methods.get(qualified_name)
        if method is None:
            self.stub_methods.add(qualified_name)
            return None
        graph = self.builder.build_method(method)
        self.pvpg.add_method_graph(graph)
        self.reachable.add(qualified_name)
        if self.config.use_predicates:
            for flow in graph.flows:
                if any(p.enabled and not p.state.is_empty for p in flow.predicates):
                    self._enable(flow)
        else:
            for flow in graph.flows:
                self._enable(flow)
        return graph

    def _seed_root_parameters(self, graph: MethodPVPG) -> None:
        """Seed the parameters of a root method with conservative value states.

        Reference parameters may hold any instantiable subtype of their
        declared type (or ``null``); primitive parameters hold ``Any``.  This
        mirrors the treatment of reflection/JNI roots in Section 5.
        """
        signature = graph.method.signature
        for flow in graph.parameter_flows:
            declared = self._declared_parameter_type(signature, flow)
            self._inject(flow, self._conservative_state(declared))

    def _declared_parameter_type(self, signature: MethodSignature,
                                 flow: ParameterFlow) -> Optional[str]:
        if flow.declared_type is not None:
            return flow.declared_type
        index = flow.index
        if not signature.is_static:
            if index == 0:
                return signature.declaring_class
            index -= 1
        if 0 <= index < len(signature.param_types):
            return signature.param_types[index]
        return None

    def _conservative_state(self, declared_type: Optional[str]) -> ValueState:
        if declared_type is None or declared_type in (INT_TYPE_NAME, "void"):
            return ValueState.any_primitive()
        if declared_type in self.hierarchy:
            types = set(self.hierarchy.instantiable_subtypes(declared_type))
            types.add(NULL_TYPE_NAME)
            return ValueState.of_types(types)
        return ValueState.any_primitive()

    # ------------------------------------------------------------------ #
    # Worklist machinery
    # ------------------------------------------------------------------ #
    def _schedule(self, flow: Flow) -> None:
        if not flow.in_worklist:
            flow.in_worklist = True
            self._worklist.push(flow)

    def _schedule_link(self, flow: InvokeFlow) -> None:
        if not flow.in_link_queue:
            flow.in_link_queue = True
            self._pending_links.append(flow)

    def _run(self) -> None:
        state = self.state
        while self._worklist or self._pending_links:
            if self._pending_links:
                invoke_flow = self._pending_links.popleft()
                invoke_flow.in_link_queue = False
                if invoke_flow.enabled:
                    self._link_invoke(invoke_flow)
                state.steps += 1
                continue
            flow = self._worklist.pop()
            flow.in_worklist = False
            state.steps += 1
            self._process(flow)

    def _process(self, flow: Flow) -> None:
        if not flow.enabled:
            return
        for target in list(flow.uses):
            self._deliver(flow, target)
        for observer in list(flow.observers):
            self._notify(observer)
        if not flow.state.is_empty:
            for target in list(flow.predicate_targets):
                self._enable(target)

    def _deliver(self, source: Flow, target: Flow) -> None:
        if target.saturated:
            return
        self.state.joins += 1
        new_input = target.input_state.join(source.state)
        if new_input is not target.input_state:
            target.input_state = new_input
            self._recompute(target)

    def _inject(self, flow: Flow, state: ValueState) -> None:
        """Join an externally produced value into a flow's input (roots, stubs)."""
        if flow.saturated:
            return
        self.state.joins += 1
        new_input = flow.input_state.join(state)
        if new_input is not flow.input_state:
            flow.input_state = new_input
            self._recompute(flow)

    def _recompute(self, flow: Flow) -> None:
        self.state.transfers += 1
        output = flow.transfer(self.hierarchy)
        new_state = flow.state.join(output)
        if new_state is not flow.state:
            saturation = self._saturation
            if saturation is not None:
                sentinel = saturation.collapse(flow, new_state)
                if sentinel is not None:
                    self._saturate(flow, sentinel)
                    return
            flow.state = new_state
            if flow.enabled:
                self._schedule(flow)

    # ------------------------------------------------------------------ #
    # Saturation cutoff (off by default; see repro.core.kernel.saturation)
    # ------------------------------------------------------------------ #
    def _saturate(self, flow: Flow, sentinel: ValueState) -> None:
        """Collapse a megamorphic flow to its policy's sentinel.

        The sentinel dominates everything that can still arrive at the flow
        (the policy's contract), so skipping all further joins into it
        (``_deliver`` / ``_inject``) loses nothing: the result stays a sound
        over-approximation, it is just coarser than the paper's exact
        semantics.
        """
        self.state.saturated_flows += 1
        flow.saturated = True
        flow.input_state = sentinel
        flow.state = sentinel
        if flow.enabled:
            self._schedule(flow)

    def _notify(self, observer: Flow) -> None:
        if isinstance(observer, InvokeFlow):
            if observer.enabled:
                self._schedule_link(observer)
        elif isinstance(observer, (LoadFieldFlow, StoreFieldFlow)):
            if observer.enabled:
                self._link_fields(observer)
        elif isinstance(observer, FilterCompareFlow):
            self._recompute(observer)

    def _enable(self, flow: Flow) -> None:
        if flow.enabled:
            return
        flow.enabled = True
        if isinstance(flow, SourceFlow):
            produced = flow.source_state(self.config.track_primitives)
            flow.state = flow.state.join(produced)
        if flow.artificial_on_enable is not None:
            flow.state = flow.state.join(flow.artificial_on_enable)
        if isinstance(flow, InvokeFlow):
            self._schedule_link(flow)
        if isinstance(flow, (LoadFieldFlow, StoreFieldFlow)):
            self._link_fields(flow)
        if not flow.state.is_empty:
            self._schedule(flow)

    def _add_use_edge(self, source: Flow, target: Flow) -> None:
        if source.has_use(target):
            return
        source.add_use(target)
        if source.enabled and not source.state.is_empty:
            self._deliver(source, target)

    # ------------------------------------------------------------------ #
    # Field linking (Load / Store rules)
    # ------------------------------------------------------------------ #
    def _link_fields(self, flow) -> None:
        receiver_state = flow.receiver.state
        for type_name in receiver_state.reference_types:
            declaration = self.hierarchy.lookup_field(type_name, flow.field_name)
            if declaration is None:
                continue
            field_flow = self.pvpg.field_flow(declaration)
            if isinstance(flow, LoadFieldFlow):
                self._add_use_edge(field_flow, flow)
            else:
                self._add_use_edge(flow, field_flow)

    # ------------------------------------------------------------------ #
    # Invoke linking (Invoke rule)
    # ------------------------------------------------------------------ #
    def _link_invoke(self, invoke_flow: InvokeFlow) -> None:
        invoke = invoke_flow.invoke
        if invoke.kind is InvokeKind.STATIC:
            signature = self._resolve_static(invoke.target_class, invoke.method_name)
            if signature is not None:
                self._link_callee(invoke_flow, signature)
            elif invoke.target_class is not None:
                self._record_unknown_callee(invoke_flow,
                                            f"{invoke.target_class}.{invoke.method_name}")
            return
        receiver_state = invoke_flow.receiver.state
        for type_name in sorted(receiver_state.reference_types):
            signature = self.hierarchy.resolve(type_name, invoke.method_name)
            if signature is not None:
                self._link_callee(invoke_flow, signature)

    def _resolve_static(self, target_class: Optional[str], method_name: str
                        ) -> Optional[MethodSignature]:
        if target_class is None or target_class not in self.hierarchy:
            return None
        return self.hierarchy.resolve(target_class, method_name)

    def _record_unknown_callee(self, invoke_flow: InvokeFlow, qualified_name: str) -> None:
        """A static call to an undeclared method: treat it as an opaque stub."""
        if qualified_name in invoke_flow.linked_callees:
            return
        invoke_flow.linked_callees.add(qualified_name)
        self.stub_methods.add(qualified_name)
        self._inject(invoke_flow, ValueState.any_primitive())

    def _link_callee(self, invoke_flow: InvokeFlow, signature: MethodSignature) -> None:
        qualified = signature.qualified_name
        if qualified in invoke_flow.linked_callees:
            return
        invoke_flow.linked_callees.add(qualified)
        graph = self._make_reachable(qualified)
        if graph is None:
            # Recorded so a resumed solve can re-play the conservative
            # effect against a grown hierarchy (see _reattach).  Static
            # calls to undeclared methods (_record_unknown_callee) inject
            # only primitive Any, which never widens, so they need no record.
            self.state.stub_links.append((invoke_flow, signature))
            self._apply_stub_effects(invoke_flow, signature)
            return
        for argument, parameter in zip(invoke_flow.argument_flows, graph.parameter_flows):
            self._add_use_edge(argument, parameter)
        for return_flow in graph.return_flows:
            self._add_use_edge(return_flow, invoke_flow)

    def _apply_stub_effects(self, invoke_flow: InvokeFlow, signature: MethodSignature) -> None:
        """Conservative handling of callees without a body (native/opaque methods)."""
        if signature.returns_reference:
            result = self._conservative_state(signature.return_type)
        else:
            result = ValueState.any_primitive()
        self._inject(invoke_flow, result)
