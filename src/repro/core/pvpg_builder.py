"""Construction of predicated value propagation graphs (Appendix B.4).

The builder performs one sequential pass over a method: basic blocks are
visited in reverse postorder and the instructions of each block top to bottom.
Per-block state consists of

* ``m`` — a mapping from SSA variable names to the flows currently
  representing them, and
* ``pred`` — the most recently encountered predicate flow (the always-enabled
  ``pred_on`` at the start of the entry block, a fresh ``phi_pred`` flow at
  every merge, the invoke flow after every call, and the filtering flows of a
  condition inside the branches of an ``if``).

Loops are supported through the explicit phi instructions of merge blocks
(the frontend and the builder always emit them); for hand-written IR without
explicit phis the collision rule of the paper's ``propagate`` function creates
phi flows lazily, which is only sound for acyclic control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.flows import (
    FilterCompareFlow,
    FilterTypeFlow,
    Flow,
    InvokeFlow,
    LoadFieldFlow,
    ParameterFlow,
    PhiFlow,
    PhiPredFlow,
    ReturnFlow,
    SourceFlow,
    StoreFieldFlow,
)
from repro.core.pvpg import BranchKind, BranchRecord, MethodPVPG, ProgramPVPG
from repro.ir.blocks import BasicBlock
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import (
    Assign,
    Condition,
    If,
    InstanceOfCondition,
    Invoke,
    Jump,
    LoadField,
    Merge,
    Return,
    Start,
    StoreField,
    flip_compare_op,
)
from repro.ir.method import Method
from repro.ir.program import Program
from repro.ir.values import ConstKind, Value


class PVPGBuildError(Exception):
    """Raised when a method body cannot be translated into a PVPG."""


@dataclass
class _BlockState:
    """Per-block traversal state: variable map and current predicate."""

    m: Dict[str, Flow] = field(default_factory=dict)
    pred: Optional[Flow] = None


class PVPGBuilder:
    """Builds the PVPG of individual methods within one program-wide graph."""

    def __init__(self, program: Program, program_pvpg: ProgramPVPG, config) -> None:
        self.program = program
        self.hierarchy = program.hierarchy
        self.pvpg = program_pvpg
        self.config = config

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def build_method(self, method: Method) -> MethodPVPG:
        graph = MethodPVPG(method)
        cfg = ControlFlowGraph(method)
        qualified = method.qualified_name

        states: Dict[str, _BlockState] = {
            name: _BlockState() for name in cfg.reverse_postorder
        }
        lazy_phis: Set[int] = set()

        # Pre-create phi_pred and phi flows for every merge block so that both
        # forward and backward jumps can link against them.
        for name in cfg.reverse_postorder:
            block = cfg.blocks[name]
            if block.is_merge:
                state = states[name]
                merge = block.begin
                assert isinstance(merge, Merge)
                phi_pred = PhiPredFlow(f"phi_pred@{name}", qualified)
                graph.register(phi_pred)
                state.pred = phi_pred
                for phi in merge.phis:
                    phi_flow = PhiFlow(f"phi:{phi.result.name}", qualified)
                    graph.register(phi_flow)
                    phi_pred.add_predicate_target(phi_flow)
                    state.m[phi.result.name] = phi_flow

        for name in cfg.reverse_postorder:
            block = cfg.blocks[name]
            state = states[name]
            if block.is_entry:
                state.pred = self.pvpg.pred_on
                self._process_start(block.begin, state, graph, qualified)
            if state.pred is None:
                # A label block whose predecessor has not set a predicate would
                # indicate invalid IR; fall back to pred_on to stay sound.
                state.pred = self.pvpg.pred_on
            for statement in block.statements:
                self._process_statement(statement, state, graph, qualified)
            self._process_end(block, state, states, cfg, graph, qualified, lazy_phis)

        return graph

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _lookup(self, state: _BlockState, value: Value, context: str) -> Flow:
        flow = state.m.get(value.name)
        if flow is None:
            raise PVPGBuildError(
                f"value {value.name!r} has no flow in {context} "
                "(use before definition or missing phi)"
            )
        return flow

    def _new_flow(self, flow: Flow, state: _BlockState, graph: MethodPVPG) -> Flow:
        """Register a flow and predicate it on the current block predicate."""
        graph.register(flow)
        state.pred.add_predicate_target(flow)
        return flow

    # ------------------------------------------------------------------ #
    # Instructions
    # ------------------------------------------------------------------ #
    def _process_start(self, start: Start, state: _BlockState, graph: MethodPVPG,
                       qualified: str) -> None:
        for index, param in enumerate(start.params):
            flow = ParameterFlow(f"param:{param.name}", qualified, index, param.declared_type)
            self._new_flow(flow, state, graph)
            graph.parameter_flows.append(flow)
            state.m[param.name] = flow

    def _process_statement(self, statement, state: _BlockState, graph: MethodPVPG,
                           qualified: str) -> None:
        if isinstance(statement, Assign):
            flow = SourceFlow(str(statement.expr), qualified, statement.expr)
            self._new_flow(flow, state, graph)
            state.m[statement.result.name] = flow
        elif isinstance(statement, LoadField):
            receiver = self._lookup(state, statement.receiver, qualified)
            flow = LoadFieldFlow(f"load:{statement.field_name}", qualified,
                                 statement.field_name, receiver)
            self._new_flow(flow, state, graph)
            receiver.add_observer(flow)
            state.m[statement.result.name] = flow
        elif isinstance(statement, StoreField):
            receiver = self._lookup(state, statement.receiver, qualified)
            value = self._lookup(state, statement.value, qualified)
            flow = StoreFieldFlow(f"store:{statement.field_name}", qualified,
                                  statement.field_name, receiver)
            self._new_flow(flow, state, graph)
            value.add_use(flow)
            receiver.add_observer(flow)
        elif isinstance(statement, Invoke):
            self._process_invoke(statement, state, graph, qualified)
        else:
            raise PVPGBuildError(f"unsupported statement {statement!r}")

    def _process_invoke(self, invoke: Invoke, state: _BlockState, graph: MethodPVPG,
                        qualified: str) -> None:
        receiver_flow: Optional[Flow] = None
        if invoke.receiver is not None:
            receiver_flow = self._lookup(state, invoke.receiver, qualified)
        argument_flows = [self._lookup(state, value, qualified)
                          for value in invoke.all_arguments]
        flow = InvokeFlow(f"invoke:{invoke.method_name}", qualified, invoke,
                          receiver_flow, argument_flows)
        self._new_flow(flow, state, graph)
        if receiver_flow is not None:
            receiver_flow.add_observer(flow)
        if invoke.result is not None:
            state.m[invoke.result.name] = flow
        graph.invoke_flows.append(flow)
        # Every method invocation is a predicate for the following statements
        # in the block (Section 3, "Method Invocations as Predicates").
        state.pred = flow

    def _process_end(self, block: BasicBlock, state: _BlockState,
                     states: Dict[str, _BlockState], cfg: ControlFlowGraph,
                     graph: MethodPVPG, qualified: str, lazy_phis: Set[int]) -> None:
        end = block.end
        if isinstance(end, Return):
            returns_void = end.value is None
            flow = ReturnFlow("return", qualified, returns_void)
            self._new_flow(flow, state, graph)
            if end.value is not None:
                self._lookup(state, end.value, qualified).add_use(flow)
            graph.return_flows.append(flow)
        elif isinstance(end, Jump):
            self._propagate(state, end, cfg.blocks[end.target], states[end.target],
                            graph, qualified, lazy_phis)
        elif isinstance(end, If):
            then_pred = self._init_block(
                state, end.condition, cfg.blocks[end.then_label],
                states[end.then_label], graph, qualified)
            else_pred = self._init_block(
                state, _invert(end.condition), cfg.blocks[end.else_label],
                states[end.else_label], graph, qualified)
            graph.branch_records.append(
                BranchRecord(end, self._classify_branch(end.condition, state),
                             then_pred, else_pred, state.pred)
            )
        elif end is None:
            raise PVPGBuildError(f"block {block.name!r} in {qualified} is not terminated")
        else:
            raise PVPGBuildError(f"unsupported block end {end!r}")

    # ------------------------------------------------------------------ #
    # Control-flow transfer: jumps (propagate) and ifs (initBlock)
    # ------------------------------------------------------------------ #
    def _propagate(self, state: _BlockState, jump: Jump, target_block: BasicBlock,
                   target_state: _BlockState, graph: MethodPVPG, qualified: str,
                   lazy_phis: Set[int]) -> None:
        merge = target_block.begin
        assert isinstance(merge, Merge)
        # The end of this block being reachable makes the merge reachable.
        state.pred.add_predicate_target(target_state.pred)
        # Explicit phi operands contributed by this jump.
        for index, phi in enumerate(merge.phis):
            if index >= len(jump.phi_arguments):
                continue
            source = self._lookup(state, jump.phi_arguments[index], qualified)
            source.add_use(target_state.m[phi.result.name])
        # Remaining variables: inherit, or create a phi flow on collision.
        for name, flow in state.m.items():
            existing = target_state.m.get(name)
            if existing is None:
                target_state.m[name] = flow
            elif existing is not flow:
                if existing.uid in lazy_phis:
                    flow.add_use(existing)
                else:
                    phi_flow = PhiFlow(f"phi:{name}", qualified)
                    graph.register(phi_flow)
                    target_state.pred.add_predicate_target(phi_flow)
                    existing.add_use(phi_flow)
                    flow.add_use(phi_flow)
                    target_state.m[name] = phi_flow
                    lazy_phis.add(phi_flow.uid)

    def _init_block(self, state: _BlockState, condition, target_block: BasicBlock,
                    target_state: _BlockState, graph: MethodPVPG, qualified: str) -> Flow:
        """Initialize one branch of an ``if``; returns the branch predicate flow."""
        # Label blocks have a single predecessor: inherit the whole variable map.
        for name, flow in state.m.items():
            target_state.m[name] = flow
        if isinstance(condition, InstanceOfCondition):
            return self._init_unary(state, condition, target_state, graph, qualified)
        if isinstance(condition, Condition):
            return self._init_binary(state, condition, target_state, graph, qualified)
        raise PVPGBuildError(f"unsupported condition {condition!r}")

    def _init_unary(self, state: _BlockState, condition: InstanceOfCondition,
                    target_state: _BlockState, graph: MethodPVPG, qualified: str) -> Flow:
        tested = self._lookup(state, condition.value, qualified)
        flow = FilterTypeFlow(str(condition), qualified, condition.type_name,
                              condition.negated, self.config.filter_type_checks)
        graph.register(flow)
        state.pred.add_predicate_target(flow)
        tested.add_use(flow)
        target_state.m[condition.value.name] = flow
        target_state.pred = flow
        return flow

    def _init_binary(self, state: _BlockState, condition: Condition,
                     target_state: _BlockState, graph: MethodPVPG, qualified: str) -> Flow:
        left = self._lookup(state, condition.left, qualified)
        right = self._lookup(state, condition.right, qualified)
        filtering = self.config.filter_comparisons

        left_filter = FilterCompareFlow(str(condition), qualified, condition.op,
                                        observed=right, filtering_enabled=filtering)
        graph.register(left_filter)
        state.pred.add_predicate_target(left_filter)
        left.add_use(left_filter)
        right.add_observer(left_filter)
        target_state.m[condition.left.name] = left_filter

        flipped = flip_compare_op(condition.op)
        right_filter = FilterCompareFlow(
            f"{condition.right} {flipped} {condition.left}", qualified, flipped,
            observed=left, filtering_enabled=filtering)
        graph.register(right_filter)
        left_filter.add_predicate_target(right_filter)
        right.add_use(right_filter)
        left.add_observer(right_filter)
        target_state.m[condition.right.name] = right_filter

        target_state.pred = right_filter
        return right_filter

    # ------------------------------------------------------------------ #
    # Metric classification
    # ------------------------------------------------------------------ #
    def _classify_branch(self, condition, state: _BlockState) -> BranchKind:
        if isinstance(condition, InstanceOfCondition):
            return BranchKind.TYPE_CHECK
        assert isinstance(condition, Condition)
        for operand in (condition.left, condition.right):
            flow = state.m.get(operand.name)
            if isinstance(flow, SourceFlow) and flow.expr.kind is ConstKind.NULL:
                return BranchKind.NULL_CHECK
        return BranchKind.PRIMITIVE_CHECK


def _invert(condition):
    """``inv(c)``: the condition guarding the else branch."""
    return condition.inverted()
