"""Flows: the vertices of a predicated value propagation graph.

Each flow carries

* a *value state* (``state``), the conservative over-approximation of the
  values the underlying code element can hold at runtime — this is the
  ``VSout`` of Appendix C;
* an *input state* (``input_state``), the join of everything delivered over
  incoming use edges (``VSin``);
* an ``enabled`` bit — flows are disabled until their predicate fires
  (Predicate rule);
* outgoing edge lists: ``uses`` (use edges), ``observers`` (observe edges) and
  ``predicate_targets`` (predicate edges), plus the list of incoming
  ``predicates`` used when a freshly built method graph is attached to the
  already-running solver.

Specialised subclasses add the flow-specific data (the constant of a source,
the condition of a filter, the call site of an invoke, ...) and implement
:meth:`Flow.transfer`, the per-flow output function (TypeCheck / Cond /
PassThrough rules).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Set

from repro.core.compare import compare_states
from repro.ir.instructions import CompareOp, Invoke
from repro.ir.types import FieldDecl, TypeHierarchy
from repro.ir.values import ConstantExpr, ConstKind
from repro.lattice.typeset import filter_instanceof
from repro.lattice.value_state import ValueState


class FlowKind(enum.Enum):
    """Discriminator for the different flow vertices of a PVPG."""

    PRED_ON = "pred_on"
    SOURCE = "source"
    PARAMETER = "parameter"
    PHI = "phi"
    PHI_PRED = "phi_pred"
    FILTER_TYPE = "filter_type"
    FILTER_COMPARE = "filter_compare"
    LOAD_FIELD = "load_field"
    STORE_FIELD = "store_field"
    INVOKE = "invoke"
    RETURN = "return"
    FIELD = "field"


class _UidAllocator:
    """Monotone uid source for flows, with a raisable floor.

    Flow uids back the O(1) duplicate-edge sets and the worklist policies'
    visited sets, so they must be unique *within any one PVPG*.  A solver
    state restored from a snapshot carries flows with their original uids;
    :func:`ensure_uid_floor` raises the allocator past them so that flows
    built while resuming can never collide with restored ones.
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> int:
        uid = self._next
        self._next += 1
        return uid

    def ensure_floor(self, floor: int) -> None:
        if floor > self._next:
            self._next = floor


_flow_ids = _UidAllocator()


def ensure_uid_floor(floor: int) -> None:
    """Guarantee that future flow uids are ``>= floor`` (snapshot restore)."""
    _flow_ids.ensure_floor(floor)


class Flow:
    """Base class of all PVPG vertices."""

    kind: FlowKind = FlowKind.SOURCE

    __slots__ = (
        "uid",
        "label",
        "method",
        "state",
        "input_state",
        "enabled",
        "in_worklist",
        "in_link_queue",
        "saturated",
        "uses",
        "observers",
        "predicate_targets",
        "predicates",
        "_use_ids",
        "_observer_ids",
        "_predicate_target_ids",
    )

    def __init__(self, label: str, method: Optional[str] = None):
        self.uid: int = _flow_ids.allocate()
        self.label = label
        self.method = method
        self.state: ValueState = ValueState.empty()
        self.input_state: ValueState = ValueState.empty()
        self.enabled: bool = False
        # Intrusive solver flags: membership bits for the worklist and the
        # invoke-link queue (cheaper than side sets of flow ids), and the
        # saturation mark of the optional megamorphic-flow cutoff.
        self.in_worklist: bool = False
        self.in_link_queue: bool = False
        self.saturated: bool = False
        self.uses: List["Flow"] = []
        self.observers: List["Flow"] = []
        self.predicate_targets: List["Flow"] = []
        self.predicates: List["Flow"] = []
        # Companion id sets keep duplicate-edge checks O(1); edge lists can
        # grow large (pred_on predicates every method entry, field flows feed
        # every load site), so a linear membership test would be quadratic.
        self._use_ids: set = set()
        self._observer_ids: set = set()
        self._predicate_target_ids: set = set()

    # ------------------------------------------------------------------ #
    # Edges
    # ------------------------------------------------------------------ #
    def add_use(self, target: "Flow") -> None:
        """``self ⇝use target``."""
        if target.uid not in self._use_ids:
            self._use_ids.add(target.uid)
            self.uses.append(target)

    def has_use(self, target: "Flow") -> bool:
        return target.uid in self._use_ids

    def add_observer(self, target: "Flow") -> None:
        """``self ⇝obs target``."""
        if target.uid not in self._observer_ids:
            self._observer_ids.add(target.uid)
            self.observers.append(target)

    def add_predicate_target(self, target: "Flow") -> None:
        """``self ⇝pred target``."""
        if target.uid not in self._predicate_target_ids:
            self._predicate_target_ids.add(target.uid)
            self.predicate_targets.append(target)
            target.predicates.append(self)

    # ------------------------------------------------------------------ #
    # Transfer function (VSin -> VSout)
    # ------------------------------------------------------------------ #
    def transfer(self, hierarchy: TypeHierarchy) -> ValueState:
        """Compute the output contribution from the accumulated input state.

        The default is the PassThrough rule; filter flows override this.
        """
        return self.input_state

    #: Value joined into the state when the flow becomes enabled even though it
    #: has no incoming use edges (``pred_on``, phi-pred flows, void returns).
    artificial_on_enable: Optional[ValueState] = None

    def __repr__(self) -> str:
        scope = f"{self.method}::" if self.method else ""
        return f"<{self.kind.value} {scope}{self.label} #{self.uid}>"


class PredOnFlow(Flow):
    """The always-enabled predicate ``pred_on`` (one per analysis run)."""

    kind = FlowKind.PRED_ON
    __slots__ = ()
    artificial_on_enable = ValueState.of_int(1)

    def __init__(self) -> None:
        super().__init__("pred_on", None)


class SourceFlow(Flow):
    """A flow created for a ``v <- e`` assignment (Source rule)."""

    kind = FlowKind.SOURCE
    __slots__ = ("expr",)

    def __init__(self, label: str, method: str, expr: ConstantExpr):
        super().__init__(label, method)
        self.expr = expr

    def source_state(self, track_primitives: bool) -> ValueState:
        """The value produced by the expression once the flow is enabled."""
        if self.expr.kind is ConstKind.INT:
            if track_primitives:
                return ValueState.of_int(self.expr.int_value)
            return ValueState.any_primitive()
        if self.expr.kind is ConstKind.ANY:
            return ValueState.any_primitive()
        if self.expr.kind is ConstKind.NEW:
            return ValueState.of_type(self.expr.type_name)
        return ValueState.null()


class ParameterFlow(Flow):
    """A formal parameter of a method (values arrive through linking)."""

    kind = FlowKind.PARAMETER
    __slots__ = ("index", "declared_type")

    def __init__(self, label: str, method: str, index: int, declared_type: Optional[str]):
        super().__init__(label, method)
        self.index = index
        self.declared_type = declared_type


class PhiFlow(Flow):
    """Joins the values of the incoming branches at a control-flow merge."""

    kind = FlowKind.PHI
    __slots__ = ()


class PhiPredFlow(Flow):
    """Joins the predicates of the incoming branches at a control-flow merge.

    Enabled as soon as *any* incoming predicate is enabled with a non-empty
    state; carries an artificial non-empty value so that it can in turn act
    as the predicate of the following block.
    """

    kind = FlowKind.PHI_PRED
    __slots__ = ()
    artificial_on_enable = ValueState.of_int(1)


class FilterTypeFlow(Flow):
    """A filtering flow for an ``instanceof`` (or negated) type check."""

    kind = FlowKind.FILTER_TYPE
    __slots__ = ("type_name", "negated", "filtering_enabled")

    def __init__(self, label: str, method: str, type_name: str, negated: bool,
                 filtering_enabled: bool = True):
        super().__init__(label, method)
        self.type_name = type_name
        self.negated = negated
        self.filtering_enabled = filtering_enabled

    def transfer(self, hierarchy: TypeHierarchy) -> ValueState:
        if not self.filtering_enabled:
            return self.input_state
        return filter_instanceof(self.input_state, hierarchy, self.type_name, self.negated)


class FilterCompareFlow(Flow):
    """A filtering flow for a binary comparison (Cond rule).

    The flow receives the tested operand over its use edge and *observes* the
    other operand; its output is ``Compare(op, VSin, VS(observed))``.
    """

    kind = FlowKind.FILTER_COMPARE
    __slots__ = ("op", "observed", "filtering_enabled")

    def __init__(self, label: str, method: str, op: CompareOp,
                 observed: Optional[Flow], filtering_enabled: bool = True):
        super().__init__(label, method)
        self.op = op
        self.observed = observed
        self.filtering_enabled = filtering_enabled

    def transfer(self, hierarchy: TypeHierarchy) -> ValueState:
        if not self.filtering_enabled:
            return self.input_state
        observed_state = self.observed.state if self.observed is not None else ValueState.empty()
        return compare_states(self.op, self.input_state, observed_state)


class LoadFieldFlow(Flow):
    """A ``v <- r.x`` flow; observes the receiver to link field flows lazily."""

    kind = FlowKind.LOAD_FIELD
    __slots__ = ("field_name", "receiver")

    def __init__(self, label: str, method: str, field_name: str, receiver: Flow):
        super().__init__(label, method)
        self.field_name = field_name
        self.receiver = receiver


class StoreFieldFlow(Flow):
    """A ``r.x <- v`` flow; observes the receiver to link field flows lazily."""

    kind = FlowKind.STORE_FIELD
    __slots__ = ("field_name", "receiver")

    def __init__(self, label: str, method: str, field_name: str, receiver: Flow):
        super().__init__(label, method)
        self.field_name = field_name
        self.receiver = receiver


class InvokeFlow(Flow):
    """A method invocation; also represents the returned value in the caller."""

    kind = FlowKind.INVOKE
    __slots__ = ("invoke", "receiver", "argument_flows", "linked_callees")

    def __init__(self, label: str, method: str, invoke: Invoke,
                 receiver: Optional[Flow], argument_flows: List[Flow]):
        super().__init__(label, method)
        self.invoke = invoke
        self.receiver = receiver
        self.argument_flows = list(argument_flows)
        #: Qualified names of callees already linked at this call site.
        self.linked_callees: Set[str] = set()

    @property
    def is_virtual(self) -> bool:
        return self.receiver is not None


class ReturnFlow(Flow):
    """The ``return`` of a method; linked back to every calling invoke flow."""

    kind = FlowKind.RETURN
    __slots__ = ("artificial_on_enable",)

    def __init__(self, label: str, method: str, returns_void: bool):
        super().__init__(label, method)
        # "A method with a void return type still returns the predicate of the
        # return instruction as an artificial value" (Section 3).
        self.artificial_on_enable = ValueState.any_primitive() if returns_void else None


class FieldFlow(Flow):
    """The program-wide flow of one declared field (field-sensitive heap)."""

    kind = FlowKind.FIELD
    __slots__ = ("declaration",)

    def __init__(self, declaration: FieldDecl):
        super().__init__(declaration.qualified_name, None)
        self.declaration = declaration
        # Field flows are not guarded by any predicate; they are enabled from
        # the start and become non-empty only when some store writes to them.
        self.enabled = True
