"""Containers for per-method and whole-program predicated value propagation graphs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.flows import (
    FieldFlow,
    Flow,
    InvokeFlow,
    ParameterFlow,
    PredOnFlow,
    ReturnFlow,
)
from repro.ir.instructions import If
from repro.ir.method import Method
from repro.ir.types import FieldDecl


class BranchKind(enum.Enum):
    """Classification of branching instructions for the counter metrics (Section 6)."""

    TYPE_CHECK = "type_check"
    NULL_CHECK = "null_check"
    PRIMITIVE_CHECK = "primitive_check"


@dataclass
class BranchRecord:
    """One ``if`` instruction together with the filter flows guarding its branches.

    ``then_predicate`` / ``else_predicate`` are the flows whose value states
    decide whether the corresponding branch is reachable; the counter metrics
    count the branch instruction as "not removable" when both are live.
    """

    instruction: If
    kind: BranchKind
    then_predicate: Flow
    else_predicate: Flow
    block_predicate: Flow


@dataclass
class MethodPVPG:
    """The PVPG of a single method."""

    method: Method
    parameter_flows: List[ParameterFlow] = field(default_factory=list)
    return_flows: List[ReturnFlow] = field(default_factory=list)
    invoke_flows: List[InvokeFlow] = field(default_factory=list)
    branch_records: List[BranchRecord] = field(default_factory=list)
    flows: List[Flow] = field(default_factory=list)

    @property
    def qualified_name(self) -> str:
        return self.method.qualified_name

    def register(self, flow: Flow) -> Flow:
        self.flows.append(flow)
        return flow

    @property
    def flow_count(self) -> int:
        return len(self.flows)


class ProgramPVPG:
    """The interprocedural PVPG: one graph per reachable method plus globals.

    Globals are the always-enabled predicate ``pred_on`` and one
    :class:`~repro.core.flows.FieldFlow` per declared field that is actually
    accessed (created lazily).
    """

    def __init__(self) -> None:
        self.pred_on = PredOnFlow()
        self.methods: Dict[str, MethodPVPG] = {}
        self.field_flows: Dict[str, FieldFlow] = {}

    def add_method_graph(self, graph: MethodPVPG) -> MethodPVPG:
        self.methods[graph.qualified_name] = graph
        return graph

    def method_graph(self, qualified_name: str) -> Optional[MethodPVPG]:
        return self.methods.get(qualified_name)

    def field_flow(self, declaration: FieldDecl) -> FieldFlow:
        """Get (or lazily create) the program-wide flow for a declared field."""
        flow = self.field_flows.get(declaration.qualified_name)
        if flow is None:
            flow = FieldFlow(declaration)
            self.field_flows[declaration.qualified_name] = flow
        return flow

    @property
    def total_flow_count(self) -> int:
        return sum(graph.flow_count for graph in self.methods.values()) + len(self.field_flows) + 1

    def all_flows(self) -> List[Flow]:
        flows: List[Flow] = [self.pred_on]
        flows.extend(self.field_flows.values())
        for graph in self.methods.values():
            flows.extend(graph.flows)
        return flows
