"""The ``Compare`` function of Appendix C.

``compare_states(op, vl, vr)`` returns the content of ``vl`` filtered with
respect to the comparison ``vl <op> vr``.  The cases follow the paper's
definition, with one soundness guard documented below:

1. If either operand is empty the result is empty (both operands are needed
   to perform the filtering).
2. ``=`` with ``Any`` on either side returns the lower of the two operands.
3. ``=`` without ``Any`` is the intersection.
4. ``≠`` is the set difference — applied only when the right operand is a
   singleton (a single constant, a single type, or ``null``).  The paper's
   formal definition subtracts arbitrary sets, which is not sound when the
   right operand can take several values (``x ≠ y`` does not exclude values
   that ``y`` merely *may* have); restricting to singletons covers every use
   in the paper (null checks, boolean and integer constants) and stays sound.
5. Any other operator with ``Any`` on either side cannot filter and returns
   the left operand unchanged.
6. Relational operators on two known constants keep the left value only when
   the comparison holds.

``Compare`` is a *filter*: its result is always ``<=`` the left operand in
the lattice, so it composes with the solver's monotonicity argument — and
with the saturation cutoff, since filtering a saturated (closed-world-top)
state can only shrink it, never grow it.  See ``docs/architecture.md`` for
how saturation interacts with filtering precision.
"""

from __future__ import annotations

from repro.ir.instructions import CompareOp
from repro.lattice.value_state import ValueState


def _is_singleton(state: ValueState) -> bool:
    return len(state) == 1 and not state.has_any


def _relational_holds(op: CompareOp, left: int, right: int) -> bool:
    if op is CompareOp.LT:
        return left < right
    if op is CompareOp.LE:
        return left <= right
    if op is CompareOp.GT:
        return left > right
    if op is CompareOp.GE:
        return left >= right
    raise ValueError(f"unexpected relational operator {op}")


def _equality_filter(vl: ValueState, vr: ValueState) -> ValueState:
    if vl.has_any or vr.has_any:
        # minL(vl, vr): whichever operand carries more information.
        if vl.has_any and vr.has_any:
            return vl
        return vr if vl.has_any else vl
    types = vl.types & vr.types
    primitive = vl.primitive if (vl.primitive is not None and vl.primitive == vr.primitive) else None
    return ValueState.of(types=types, primitive=primitive)


def _inequality_filter(vl: ValueState, vr: ValueState) -> ValueState:
    if not _is_singleton(vr):
        # Soundness guard: only a singleton right operand justifies removal.
        return vl
    types = vl.types - vr.types
    primitive = vl.primitive
    if primitive is not None and not vl.has_any and primitive == vr.primitive:
        primitive = None
    return ValueState.of(types=types, primitive=primitive)


def _relational_filter(op: CompareOp, vl: ValueState, vr: ValueState) -> ValueState:
    if vl.has_any or vr.has_any:
        return vl
    left = vl.constant_value
    right = vr.constant_value
    if left is None or right is None:
        # Relational operators are only defined on primitives; reference parts
        # (which should not occur here in well-typed programs) pass through.
        return vl
    if _relational_holds(op, left, right):
        return vl
    return vl.with_primitive(None).only_types() if vl.types else ValueState.empty()


def compare_states(op: CompareOp, vl: ValueState, vr: ValueState) -> ValueState:
    """Filter ``vl`` with respect to ``vl <op> vr`` (Appendix C, ``Compare``)."""
    if vl.is_empty or vr.is_empty:
        return ValueState.empty()
    if op is CompareOp.EQ:
        return _equality_filter(vl, vr)
    if op is CompareOp.NE:
        return _inequality_filter(vl, vr)
    return _relational_filter(op, vl, vr)
