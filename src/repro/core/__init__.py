"""SkipFlow core: predicated value propagation graphs and the fixed-point solver.

The public entry point is :class:`~repro.core.analysis.SkipFlowAnalysis`, which
wraps PVPG construction (Appendix B) and the value-propagation rules
(Appendix C) behind a small facade::

    from repro.core import SkipFlowAnalysis, AnalysisConfig

    analysis = SkipFlowAnalysis(program, AnalysisConfig.skipflow())
    result = analysis.run()
    print(result.reachable_method_count)
"""

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.compare import compare_states
from repro.core.flows import (
    FieldFlow,
    FilterCompareFlow,
    FilterTypeFlow,
    Flow,
    FlowKind,
    InvokeFlow,
    LoadFieldFlow,
    ParameterFlow,
    PhiFlow,
    PhiPredFlow,
    PredOnFlow,
    ReturnFlow,
    SourceFlow,
    StoreFieldFlow,
)
from repro.core.kernel import (
    DEFAULT_POLICY,
    SaturationPolicy,
    SchedulingPolicy,
    SolverPolicy,
    available_saturation_policies,
    available_scheduling_policies,
    register_saturation_policy,
    register_scheduling_policy,
)
from repro.core.pvpg import BranchKind, BranchRecord, MethodPVPG, ProgramPVPG
from repro.core.pvpg_builder import PVPGBuilder
from repro.core.results import AnalysisResult, MethodSummary
from repro.core.solver import SkipFlowSolver
from repro.core.state import SolverState, SolverStateError

__all__ = [
    "DEFAULT_POLICY",
    "AnalysisConfig",
    "AnalysisResult",
    "BranchKind",
    "BranchRecord",
    "FieldFlow",
    "FilterCompareFlow",
    "FilterTypeFlow",
    "Flow",
    "FlowKind",
    "InvokeFlow",
    "LoadFieldFlow",
    "MethodPVPG",
    "MethodSummary",
    "ParameterFlow",
    "PhiFlow",
    "PhiPredFlow",
    "PredOnFlow",
    "ProgramPVPG",
    "PVPGBuilder",
    "ReturnFlow",
    "SaturationPolicy",
    "SchedulingPolicy",
    "SkipFlowAnalysis",
    "SkipFlowSolver",
    "SolverPolicy",
    "SolverState",
    "SolverStateError",
    "SourceFlow",
    "StoreFieldFlow",
    "available_saturation_policies",
    "available_scheduling_policies",
    "compare_states",
    "register_saturation_policy",
    "register_scheduling_policy",
]
