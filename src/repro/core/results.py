"""Analysis results: reachable methods, value states, and call-graph queries.

An :class:`AnalysisResult` is a read-only view over the solved PVPG.  Its
counters are deterministic for a fixed (program, configuration) pair —
:class:`SolverStats` carries exact machine-independent numbers, not samples
— so downstream consumers (the benchmark engine's cache, the CI regression
gate) may compare them with ``==`` across processes, hosts, and runs.  Only
``analysis_time_seconds`` is wall-clock and excluded from such comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.core.flows import InvokeFlow
from repro.core.pvpg import BranchRecord, MethodPVPG, ProgramPVPG
from repro.ir.program import Program
from repro.lattice.value_state import ValueState


@dataclass(frozen=True)
class SolverStats:
    """Machine-independent counters of one fixed-point solve.

    ``steps`` counts worklist events (the paper's cost proxy), ``joins`` the
    lattice joins attempted against flow input states, ``transfers`` the
    transfer-function evaluations, and ``saturated_flows`` the flows collapsed
    by the saturation cutoff (always 0 when the cutoff is disabled).
    """

    steps: int = 0
    joins: int = 0
    transfers: int = 0
    saturated_flows: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "steps": self.steps,
            "joins": self.joins,
            "transfers": self.transfers,
            "saturated_flows": self.saturated_flows,
        }


@dataclass
class MethodSummary:
    """Per-method statistics extracted from the solved PVPG."""

    qualified_name: str
    flow_count: int
    enabled_flow_count: int
    invoke_count: int
    linked_callee_count: int

    @property
    def disabled_flow_count(self) -> int:
        return self.flow_count - self.enabled_flow_count


class Deferred:
    """A field value that is produced on first access.

    Wraps a zero-argument thunk.  The :class:`AnalysisResult` fields backed
    by :class:`_LazyField` accept either the value itself or a ``Deferred``
    around it, resolving (and memoizing) the thunk transparently on first
    read — so a kernel can hand over an expensive view, like the arena
    kernel's inflated object PVPG, without anyone paying for it unless it is
    actually looked at.
    """

    __slots__ = ("thunk",)

    def __init__(self, thunk: Callable[[], object]) -> None:
        self.thunk = thunk


class _LazyField:
    """Data descriptor behind a dataclass field that accepts :class:`Deferred`.

    Attached to the class *after* ``@dataclass`` builds it, so the generated
    ``__init__`` keeps its signature while field assignment and access route
    through a shadow slot where a ``Deferred`` is resolved exactly once.
    """

    def __init__(self, name: str) -> None:
        self._slot = "_lazy_" + name

    def __get__(self, obj: object, owner: Optional[type] = None) -> object:
        if obj is None:
            return self
        value = getattr(obj, self._slot)
        if isinstance(value, Deferred):
            value = value.thunk()
            setattr(obj, self._slot, value)
        return value

    def __set__(self, obj: object, value: object) -> None:
        setattr(obj, self._slot, value)


@dataclass
class AnalysisResult:
    """The outcome of one analysis run.

    Exposes the fixed-point PVPG together with convenience accessors used by
    the image builder, the metrics collector, and the tests.  ``pvpg`` and
    ``solver_state`` may be constructed with :class:`Deferred` thunks: the
    arena kernel propagates on flat integer tables and only inflates the
    object graph when one of these fields is actually read, so consumers
    that stick to counters, reachable sets, and the image reports never
    trigger it.
    """

    program: Program
    config: object
    pvpg: ProgramPVPG
    reachable_methods: Set[str]
    stub_methods: Set[str]
    analysis_time_seconds: float
    steps: int
    stats: Optional[SolverStats] = None
    #: The live :class:`~repro.core.state.SolverState` behind this result.
    #: ``pvpg`` above *is* this state's graph; resuming a later solve from
    #: the state continues mutating it (the scalar fields of this result —
    #: counts, sets, stats — are copies taken at solve time and stay put).
    solver_state: Optional[object] = None
    #: The kernel solver that produced this result, when it can answer the
    #: image-report queries directly from its own representation (the arena
    #: kernel's ``image_counters`` / ``dead_code_rows``); ``None`` for the
    #: object kernel, whose only view *is* the PVPG.
    kernel_backend: Optional[object] = None

    # ------------------------------------------------------------------ #
    # Reachability
    # ------------------------------------------------------------------ #
    @property
    def reachable_method_count(self) -> int:
        return len(self.reachable_methods)

    def is_method_reachable(self, qualified_name: str) -> bool:
        return qualified_name in self.reachable_methods

    def method_graph(self, qualified_name: str) -> Optional[MethodPVPG]:
        return self.pvpg.method_graph(qualified_name)

    def reachable_graphs(self) -> Iterator[MethodPVPG]:
        for name in sorted(self.reachable_methods):
            graph = self.pvpg.method_graph(name)
            if graph is not None:
                yield graph

    # ------------------------------------------------------------------ #
    # Value states
    # ------------------------------------------------------------------ #
    def parameter_state(self, qualified_name: str, index: int) -> ValueState:
        graph = self._require_graph(qualified_name)
        return graph.parameter_flows[index].state

    def return_state(self, qualified_name: str) -> ValueState:
        graph = self._require_graph(qualified_name)
        state = ValueState.empty()
        for return_flow in graph.return_flows:
            if return_flow.enabled:
                state = state.join(return_flow.state)
        return state

    def field_state(self, qualified_field_name: str) -> ValueState:
        flow = self.pvpg.field_flows.get(qualified_field_name)
        return flow.state if flow is not None else ValueState.empty()

    # ------------------------------------------------------------------ #
    # Call graph
    # ------------------------------------------------------------------ #
    def call_targets(self, qualified_name: str) -> Dict[str, FrozenSet[str]]:
        """Map from call-site label to the set of linked callees in a method."""
        graph = self._require_graph(qualified_name)
        targets: Dict[str, FrozenSet[str]] = {}
        for index, invoke_flow in enumerate(graph.invoke_flows):
            key = f"{invoke_flow.label}#{index}"
            targets[key] = frozenset(invoke_flow.linked_callees)
        return targets

    def call_edges(self) -> List[Tuple[str, str]]:
        """All (caller, callee) pairs of the computed call graph."""
        edges: List[Tuple[str, str]] = []
        for graph in self.reachable_graphs():
            for invoke_flow in graph.invoke_flows:
                for callee in sorted(invoke_flow.linked_callees):
                    edges.append((graph.qualified_name, callee))
        return edges

    def invoke_flows(self) -> Iterator[InvokeFlow]:
        for graph in self.reachable_graphs():
            yield from graph.invoke_flows

    def branch_records(self) -> Iterator[Tuple[str, BranchRecord]]:
        for graph in self.reachable_graphs():
            for record in graph.branch_records:
                yield graph.qualified_name, record

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def method_summary(self, qualified_name: str) -> MethodSummary:
        graph = self._require_graph(qualified_name)
        return MethodSummary(
            qualified_name=qualified_name,
            flow_count=len(graph.flows),
            enabled_flow_count=sum(1 for flow in graph.flows if flow.enabled),
            invoke_count=len(graph.invoke_flows),
            linked_callee_count=sum(len(f.linked_callees) for f in graph.invoke_flows),
        )

    def summaries(self) -> List[MethodSummary]:
        return [self.method_summary(name) for name in sorted(self.reachable_methods)]

    def _require_graph(self, qualified_name: str) -> MethodPVPG:
        graph = self.pvpg.method_graph(qualified_name)
        if graph is None:
            raise KeyError(f"method {qualified_name!r} was not analyzed (not reachable)")
        return graph


# The lazy fields (see the class docstring).  Attached post-decoration so
# ``@dataclass`` generates a normal ``__init__``; at runtime its assignments
# hit these data descriptors instead of the instance dict.
AnalysisResult.pvpg = _LazyField("pvpg")  # type: ignore[assignment]
AnalysisResult.solver_state = _LazyField("solver_state")  # type: ignore[assignment]
