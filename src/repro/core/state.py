"""SolverState: the complete, snapshotable mutable state of one fixpoint solve.

Historically :class:`~repro.core.solver.SkipFlowSolver` *owned* its mutable
fixpoint state — the PVPG with every flow's value state and edge lists, the
reachable and stub sets, the effort counters, and the worklist membership
bits — so the only way to analyze an edited program was to throw the solver
away and start cold.  This module inverts that ownership: the solver now
*borrows* a :class:`SolverState`, and a state outlives the solve that
produced it.  Any later solve — same program, or a monotonically grown one —
can be constructed around the state and simply continues the Kleene
iteration from where it stopped.

What a state contains
---------------------
* ``pvpg`` — the program PVPG: every built method graph, the field flows,
  ``pred_on``, and through them every flow's ``state`` / ``input_state`` /
  ``enabled`` / ``saturated`` bits and edge lists.  This *is* the lattice
  element the fixpoint iteration climbs.
* ``reachable`` / ``stub_methods`` — the reachability frontier.
* ``steps`` / ``joins`` / ``transfers`` / ``saturated_flows`` — cumulative
  effort counters (they keep counting across resumed solves; callers that
  want per-solve costs diff :meth:`counters` around a solve).
* ``seeded_roots`` / ``stub_links`` — the conservative injections the solve
  performed (root parameter seeds and stub-callee effects).  A resumed
  solve re-plays them against the *current* hierarchy, because a monotone
  program change can widen the conservative state they injected.
* worklist residue — not stored separately: the intrusive ``in_worklist`` /
  ``in_link_queue`` bits on the flows are the record.  At a fixpoint both
  queues are empty; a state snapshotted mid-solve resumes by rescheduling
  every marked flow (any fair order reaches the same fixpoint, so the
  original queue order need not be preserved).
* ``config`` — the :class:`~repro.core.analysis.AnalysisConfig` the state
  was solved under.  Resuming under a different configuration is rejected:
  half-solved predicates of one configuration are meaningless to another.
* ``fingerprint`` — optionally, a :class:`~repro.ir.delta.ProgramFingerprint`
  of the program at snapshot time (:meth:`stamp` / :meth:`to_bytes`).  A
  stamped state validates, at resume time, that the program it is resumed
  against is a *monotone extension* of the one it solved; violations raise
  :class:`SolverStateError` so callers can fall back to a cold solve loudly.

The cold path is "resume from the empty state": a fresh solver simply
creates ``SolverState.empty()`` and runs — the exact seed behavior, down to
step counts (the CI regression gate covers this).
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.flows import (
    FieldFlow,
    FilterCompareFlow,
    FilterTypeFlow,
    Flow,
    InvokeFlow,
    LoadFieldFlow,
    ParameterFlow,
    PhiFlow,
    PhiPredFlow,
    PredOnFlow,
    ReturnFlow,
    SourceFlow,
    StoreFieldFlow,
    ensure_uid_floor,
)
from repro.core.pvpg import BranchRecord, MethodPVPG, ProgramPVPG
from repro.ir.delta import ProgramFingerprint, diff_fingerprints
from repro.ir.types import MethodSignature

if TYPE_CHECKING:
    from repro.ir.program import Program

#: Bumped whenever the snapshot layout changes; snapshots written by other
#: versions (or other code versions — the engine's stores also prefix the
#: code version) are refused rather than misinterpreted.
SNAPSHOT_VERSION = 1


class SolverStateError(ValueError):
    """A solver state that cannot be resumed as requested.

    Raised for configuration mismatches, snapshot-format mismatches, and —
    for stamped states — non-monotone program changes.  Callers that can
    fall back (the session API, the CLI) catch this and run cold, loudly.
    """


class SolverState:
    """The mutable half of a fixpoint solve, detached from the solver."""

    def __init__(self, config: Optional[object] = None) -> None:
        self.pvpg = ProgramPVPG()
        self.reachable: set = set()
        self.stub_methods: set = set()
        self.steps = 0
        self.joins = 0
        self.transfers = 0
        self.saturated_flows = 0
        #: The AnalysisConfig of the first solve; later solves must match.
        self.config = config
        #: Roots whose parameter flows were conservatively seeded, in order.
        self.seeded_roots: List[str] = []
        #: (invoke flow, callee signature) pairs whose stub effects were
        #: injected; re-played on resume because the conservative return
        #: state can widen when the hierarchy grows.
        self.stub_links: List[Tuple[InvokeFlow, MethodSignature]] = []
        #: Completed solves over this state (0 = fresh, cold path).
        self.solve_count = 0
        #: Set by :meth:`stamp`: the fingerprint of the program this state
        #: was solved against, used to self-validate resumes.
        self.fingerprint: Optional[ProgramFingerprint] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, config: Optional[object] = None) -> "SolverState":
        """The cold-start state (what every pre-refactor solve began from)."""
        return cls(config)

    @property
    def is_fresh(self) -> bool:
        return self.solve_count == 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, int]:
        """The cumulative effort counters (diff around a solve for deltas)."""
        return {
            "steps": self.steps,
            "joins": self.joins,
            "transfers": self.transfers,
            "saturated_flows": self.saturated_flows,
        }

    def pending_flows(self) -> List[Flow]:
        """Flows whose worklist bit is set (non-empty only mid-solve)."""
        return [flow for flow in self.pvpg.all_flows() if flow.in_worklist]

    def pending_links(self) -> List[InvokeFlow]:
        """Invoke flows whose link-queue bit is set (non-empty only mid-solve)."""
        return [flow for flow in self.pvpg.all_flows()
                if isinstance(flow, InvokeFlow) and flow.in_link_queue]

    def max_flow_uid(self) -> int:
        flows = self.pvpg.all_flows()
        return max(flow.uid for flow in flows) if flows else -1

    # ------------------------------------------------------------------ #
    # Fingerprinting and resume validation
    # ------------------------------------------------------------------ #
    def stamp(self, program: "Program") -> None:
        """Record the program's fingerprint for self-validating resumes."""
        self.fingerprint = ProgramFingerprint.of(program)

    def validate_resume(self, program: "Program") -> None:
        """Check that ``program`` is a monotone extension of the solved one.

        Only stamped states can validate; un-stamped states (the in-memory
        session path, where the session tracks delta monotonicity itself)
        pass silently.  Raises :class:`SolverStateError` listing every
        violation otherwise.
        """
        if self.fingerprint is None:
            return
        delta = diff_fingerprints(self.fingerprint, ProgramFingerprint.of(program))
        if not delta.is_monotone:
            raise SolverStateError(
                "cannot resume: the program is not a monotone extension of "
                "the snapshotted one: " + "; ".join(delta.violations))

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def fork(self) -> "SolverState":
        """An independent deep copy (resume one branch, keep the other).

        Copies every flow, edge list, and solver-owned set through the flat
        snapshot codec; the immutable IR (methods, instructions, value
        states) stays shared between the branches — the analysis treats it
        as read-only, so sharing is safe and cheap.  A session's generation
        tag travels with the fork (it is an in-process lineage fact), so a
        forked state is subject to the same warm barrier as its original;
        ``to_bytes`` deliberately does *not* persist it, because generation
        numbers are meaningless outside the session that issued them.
        """
        branch = _decode_state(_encode_state(self))
        generation = getattr(self, "session_generation", None)
        if generation is not None:
            branch.session_generation = generation
        return branch

    def to_bytes(self, program: Optional["Program"] = None) -> bytes:
        """Serialize for persistence; with ``program``, stamp the *snapshot*.

        The payload is a *flat* encoding — flows become records whose edges
        are uid lists — because the PVPG's object graph nests as deep as the
        longest propagation chain and naive pickling would blow the
        recursion limit on real programs.  The whole payload goes through a
        single pickler, so IR objects shared between flows and method
        bodies keep their identity on restore.  The payload is versioned so
        stale snapshot files are refused by :meth:`from_bytes` instead of
        being misread.

        Stamping writes the fingerprint into the serialized payload only;
        this live state is untouched, so snapshotting a chain that keeps
        resuming in memory does not saddle its later solves with
        fingerprint re-validation.  Use :meth:`stamp` to mark the live
        state itself.
        """
        payload = _encode_state(self)
        if program is not None:
            payload["fingerprint"] = ProgramFingerprint.of(program)
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SolverState":
        """Restore a snapshot; future flow uids are raised past its flows."""
        try:
            payload = pickle.loads(blob)
        except Exception as error:
            raise SolverStateError(
                f"unreadable solver-state snapshot: {error}") from error
        return _decode_state(payload)


# --------------------------------------------------------------------------- #
# The flat snapshot codec
# --------------------------------------------------------------------------- #
# Flows are encoded as records whose inter-flow references are uids, which
# bounds the pickling depth (the live graph nests as deep as the longest
# propagation chain).  Immutable IR payloads — methods, instructions, value
# states, field declarations — are stored as direct object references and
# travel through the same pickler, so sharing (e.g. one Invoke instruction
# referenced by both a method body and its invoke flow) survives the round
# trip.  One deliberate normalization: each flow's ``predicates`` list is
# rebuilt from the predicate-target edges in flow-table order, which can
# permute it relative to the original interleaving; the solver only ever
# asks "is any predicate enabled", so the order is semantically inert.

_FLOW_CLASSES = {cls.__name__: cls for cls in (
    Flow, PredOnFlow, SourceFlow, ParameterFlow, PhiFlow, PhiPredFlow,
    FilterTypeFlow, FilterCompareFlow, LoadFieldFlow, StoreFieldFlow,
    InvokeFlow, ReturnFlow, FieldFlow,
)}


def _encode_flow(flow: Flow) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "cls": type(flow).__name__,
        "uid": flow.uid,
        "label": flow.label,
        "method": flow.method,
        "state": flow.state,
        "input_state": flow.input_state,
        "enabled": flow.enabled,
        "in_worklist": flow.in_worklist,
        "in_link_queue": flow.in_link_queue,
        "saturated": flow.saturated,
        "uses": [target.uid for target in flow.uses],
        "observers": [target.uid for target in flow.observers],
        "predicate_targets": [target.uid for target in flow.predicate_targets],
    }
    if isinstance(flow, SourceFlow):
        record["expr"] = flow.expr
    elif isinstance(flow, ParameterFlow):
        record["index"] = flow.index
        record["declared_type"] = flow.declared_type
    elif isinstance(flow, FilterTypeFlow):
        record["type_name"] = flow.type_name
        record["negated"] = flow.negated
        record["filtering_enabled"] = flow.filtering_enabled
    elif isinstance(flow, FilterCompareFlow):
        record["op"] = flow.op
        record["observed"] = flow.observed.uid if flow.observed is not None else None
        record["filtering_enabled"] = flow.filtering_enabled
    elif isinstance(flow, (LoadFieldFlow, StoreFieldFlow)):
        record["field_name"] = flow.field_name
        record["receiver"] = flow.receiver.uid
    elif isinstance(flow, InvokeFlow):
        record["invoke"] = flow.invoke
        record["receiver"] = flow.receiver.uid if flow.receiver is not None else None
        record["argument_flows"] = [arg.uid for arg in flow.argument_flows]
        record["linked_callees"] = sorted(flow.linked_callees)
    elif isinstance(flow, ReturnFlow):
        record["artificial_on_enable"] = flow.artificial_on_enable
    elif isinstance(flow, FieldFlow):
        record["declaration"] = flow.declaration
    return record


def _decode_flow_shell(record: Dict[str, Any]) -> Flow:
    """First pass: a flow with its scalar state but no wiring yet."""
    cls = _FLOW_CLASSES.get(record["cls"])
    if cls is None:
        raise SolverStateError(
            f"snapshot contains unknown flow class {record['cls']!r}")
    flow = cls.__new__(cls)
    flow.uid = record["uid"]
    flow.label = record["label"]
    flow.method = record["method"]
    flow.state = record["state"]
    flow.input_state = record["input_state"]
    flow.enabled = record["enabled"]
    flow.in_worklist = record["in_worklist"]
    flow.in_link_queue = record["in_link_queue"]
    flow.saturated = record["saturated"]
    flow.uses = []
    flow.observers = []
    flow.predicate_targets = []
    flow.predicates = []
    flow._use_ids = set()
    flow._observer_ids = set()
    flow._predicate_target_ids = set()
    if isinstance(flow, SourceFlow):
        flow.expr = record["expr"]
    elif isinstance(flow, ParameterFlow):
        flow.index = record["index"]
        flow.declared_type = record["declared_type"]
    elif isinstance(flow, FilterTypeFlow):
        flow.type_name = record["type_name"]
        flow.negated = record["negated"]
        flow.filtering_enabled = record["filtering_enabled"]
    elif isinstance(flow, FilterCompareFlow):
        flow.op = record["op"]
        flow.filtering_enabled = record["filtering_enabled"]
    elif isinstance(flow, (LoadFieldFlow, StoreFieldFlow)):
        flow.field_name = record["field_name"]
    elif isinstance(flow, InvokeFlow):
        flow.invoke = record["invoke"]
        flow.linked_callees = set(record["linked_callees"])
    elif isinstance(flow, ReturnFlow):
        flow.artificial_on_enable = record["artificial_on_enable"]
    elif isinstance(flow, FieldFlow):
        flow.declaration = record["declaration"]
    return flow


def _wire_flow(record: Dict[str, Any], flows: Dict[int, Flow]) -> None:
    """Second pass: edge lists and intra-flow references, by uid."""
    flow = flows[record["uid"]]
    for uid in record["uses"]:
        flow.add_use(flows[uid])
    for uid in record["observers"]:
        flow.add_observer(flows[uid])
    for uid in record["predicate_targets"]:
        flow.add_predicate_target(flows[uid])
    if isinstance(flow, FilterCompareFlow):
        observed = record["observed"]
        flow.observed = flows[observed] if observed is not None else None
    elif isinstance(flow, (LoadFieldFlow, StoreFieldFlow)):
        flow.receiver = flows[record["receiver"]]
    elif isinstance(flow, InvokeFlow):
        receiver = record["receiver"]
        flow.receiver = flows[receiver] if receiver is not None else None
        flow.argument_flows = [flows[uid] for uid in record["argument_flows"]]


def _encode_state(state: SolverState) -> Dict[str, Any]:
    pvpg = state.pvpg
    flow_records = [_encode_flow(flow) for flow in pvpg.all_flows()]
    method_records = []
    for name, graph in pvpg.methods.items():
        method_records.append({
            "name": name,
            "method": graph.method,
            "flows": [flow.uid for flow in graph.flows],
            "parameter_flows": [flow.uid for flow in graph.parameter_flows],
            "return_flows": [flow.uid for flow in graph.return_flows],
            "invoke_flows": [flow.uid for flow in graph.invoke_flows],
            "branch_records": [{
                "instruction": rec.instruction,
                "kind": rec.kind,
                "then_predicate": rec.then_predicate.uid,
                "else_predicate": rec.else_predicate.uid,
                "block_predicate": rec.block_predicate.uid,
            } for rec in graph.branch_records],
        })
    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "config": state.config,
        "fingerprint": state.fingerprint,
        "steps": state.steps,
        "joins": state.joins,
        "transfers": state.transfers,
        "saturated_flows": state.saturated_flows,
        "reachable": sorted(state.reachable),
        "stub_methods": sorted(state.stub_methods),
        "seeded_roots": list(state.seeded_roots),
        "stub_links": [(flow.uid, signature)
                       for flow, signature in state.stub_links],
        "solve_count": state.solve_count,
        "flows": flow_records,
        "pred_on": pvpg.pred_on.uid,
        "field_flows": [(name, flow.uid)
                        for name, flow in pvpg.field_flows.items()],
        "methods": method_records,
    }


def _decode_state(payload: Dict[str, Any]) -> SolverState:
    version = payload.get("snapshot_version") if isinstance(payload, dict) else None
    if version != SNAPSHOT_VERSION:
        raise SolverStateError(
            f"unsupported solver-state snapshot version {version!r} "
            f"(expected {SNAPSHOT_VERSION})")
    flows: Dict[int, Flow] = {}
    for record in payload["flows"]:
        flows[record["uid"]] = _decode_flow_shell(record)
    for record in payload["flows"]:
        _wire_flow(record, flows)

    pvpg = ProgramPVPG.__new__(ProgramPVPG)
    pvpg.pred_on = flows[payload["pred_on"]]
    pvpg.field_flows = {name: flows[uid]
                        for name, uid in payload["field_flows"]}
    pvpg.methods = {}
    for record in payload["methods"]:
        graph = MethodPVPG(
            method=record["method"],
            parameter_flows=[flows[uid] for uid in record["parameter_flows"]],
            return_flows=[flows[uid] for uid in record["return_flows"]],
            invoke_flows=[flows[uid] for uid in record["invoke_flows"]],
            branch_records=[BranchRecord(
                instruction=rec["instruction"],
                kind=rec["kind"],
                then_predicate=flows[rec["then_predicate"]],
                else_predicate=flows[rec["else_predicate"]],
                block_predicate=flows[rec["block_predicate"]],
            ) for rec in record["branch_records"]],
            flows=[flows[uid] for uid in record["flows"]],
        )
        pvpg.methods[record["name"]] = graph

    state = SolverState(payload["config"])
    state.pvpg = pvpg
    state.fingerprint = payload["fingerprint"]
    state.steps = payload["steps"]
    state.joins = payload["joins"]
    state.transfers = payload["transfers"]
    state.saturated_flows = payload["saturated_flows"]
    state.reachable = set(payload["reachable"])
    state.stub_methods = set(payload["stub_methods"])
    state.seeded_roots = list(payload["seeded_roots"])
    state.stub_links = [(flows[uid], signature)
                        for uid, signature in payload["stub_links"]]
    state.solve_count = payload["solve_count"]
    ensure_uid_floor(state.max_flow_uid() + 1)
    return state
