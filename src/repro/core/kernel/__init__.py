"""The solver kernel: pluggable scheduling, saturation, and linking layers.

:class:`~repro.core.solver.SkipFlowSolver` used to be a monolith in which
worklist order, the saturation cutoff, and invoke/field linking were
interleaved in one class.  This package splits the *policy* decisions out
of the *propagation core* so they can be swapped without touching the
solver:

* :mod:`repro.core.kernel.scheduling` — who owns the worklist and in what
  order pending flows are processed (``fifo``, ``lifo``, ``degree``,
  ``rpo``);
* :mod:`repro.core.kernel.saturation` — when a megamorphic flow collapses
  and which top element it collapses to (``off``, ``closed-world``,
  ``declared-type``);
* :mod:`repro.core.kernel.policy` — :class:`SolverPolicy`, the hashable
  bundle of both halves plus the threshold that travels through
  ``AnalysisConfig``, the session API, the engine's cache keys, and the
  CLI.

Why every policy preserves the termination argument
---------------------------------------------------
The solver's proof (Appendix C) needs three monotonicity legs: value states
only move up the finite lattice ``L``, flows only switch from disabled to
enabled, and edges are only added.  Policies cannot touch any of them —

* a scheduling policy only permutes the order in which already-scheduled
  flows are popped; as long as it is *fair* (every pushed flow is
  eventually popped — all built-ins drain their containers completely),
  the chaotic-iteration theorem gives the same least fixed point, in
  finitely many steps, for every order;
* a saturation policy only ever *raises* a state (the sentinel is joined
  over the state that triggered the collapse) and then skips joins that
  would be no-ops against that top, so it can shorten the iteration but
  never extend or redirect it.

The propagation/linking core (delivery, predicate enabling, invoke and
field linking) stays in the solver and is identical under every policy —
which is what the policy-equivalence tests assert: the same reachable set,
call edges, and final value states under every scheduling policy, and with
``fifo`` + ``off`` the seed's exact step counts.
"""

from repro.core.kernel.policy import DEFAULT_POLICY, SolverPolicy
from repro.core.kernel.saturation import (
    AllocatedTypeSaturation,
    ClosedWorldSaturation,
    DeclaredTypeSaturation,
    ReachableAllocatedSaturation,
    SaturationContext,
    SaturationPolicy,
    allocated_types,
    available_saturation_policies,
    make_saturation_policy,
    reachable_allocated_types,
    register_saturation_policy,
)
from repro.core.kernel.scheduling import (
    DegreeScheduling,
    FifoScheduling,
    HybridScheduling,
    LifoScheduling,
    RpoScheduling,
    SchedulingPolicy,
    available_scheduling_policies,
    make_scheduling_policy,
    register_scheduling_policy,
)

__all__ = [
    "DEFAULT_POLICY",
    "AllocatedTypeSaturation",
    "ClosedWorldSaturation",
    "DeclaredTypeSaturation",
    "DegreeScheduling",
    "FifoScheduling",
    "HybridScheduling",
    "LifoScheduling",
    "ReachableAllocatedSaturation",
    "RpoScheduling",
    "SaturationContext",
    "SaturationPolicy",
    "SchedulingPolicy",
    "SolverPolicy",
    "allocated_types",
    "available_saturation_policies",
    "available_scheduling_policies",
    "make_saturation_policy",
    "make_scheduling_policy",
    "reachable_allocated_types",
    "register_saturation_policy",
    "register_scheduling_policy",
]
