"""The parallel arena kernel: partitioned fid worklists over shared memory.

:class:`ParallelKernelSolver` is the third ``kernel=`` backend.  It cuts
the dense fid space of one frozen arena into contiguous, method-aligned
ranges and runs one :class:`~repro.core.kernel.arena_kernel.
ArenaKernelSolver`-derived worker per range.  Workers never touch each
other's tables: all *static* CSR edges (uses, observers, predicate
targets, incoming predicates) are intra-method by construction, so with
partitions cut at method boundaries the only cross-partition traffic is
what the solve itself links — argument→parameter and return→invoke edges,
load/store↔field edges, and method activations.  Those travel as small
messages over per-edge-direction queues:

``JOIN(fid, state)``
    join ``state`` into the owner's input state of ``fid`` (the remote
    half of ``_deliver``); the sender accumulates per-target states so a
    target is re-sent only when the accumulated join actually grew.
``EDGE(source, target)``
    add a dynamic use edge whose *source* the receiver owns (the remote
    half of ``_add_use_edge``); the owner dedups and re-delivers.
``ACT(mid)``
    make a method reachable (the remote half of ``_activate``): the owner
    enables the method's fid range.
``TOUCH(field_fid)``
    record a field flow's first link, so the owner's field-creation order
    covers every field any partition linked (inflation needs it).

**Execution model.**  The coordinator drives bulk-synchronous rounds: in
round *r* every worker (1) applies exactly one batch from every inbound
channel — the batches its peers sent in round *r−1*, applied in ascending
sender order — (2) runs its local worklist to quiescence under the
configured scheduling policy, buffering outbound messages, (3) flushes
exactly one batch (possibly empty) to every outbound channel, and (4)
reports its send count.  **Global quiescence** is a round whose total send
count is zero: every worklist is empty and, because round *r*'s receives
are exactly round *r−1*'s sends, every channel is provably drained.  The
whole schedule is a deterministic function of (partitioning, scheduling
policy) — no races, no timing-dependent interleavings.

**Why the result is bit-identical.**  The transfer system is monotone
over a finite lattice, so chaotic iteration reaches the *unique* least
fixpoint under any fair schedule — the partitioned schedule included.
The saturated bit is schedule-independent too: a flow saturates iff its
final state exceeds the threshold, because states only grow and every
growth re-checks the threshold.  The one policy whose *sentinel* is
history-dependent is ``declared-type`` (its field tops depend on which
parameter carried ``this`` first), so the coordinator refuses it —
:class:`ParallelKernelUnsupported` — and the caller falls back to the
serial arena kernel, same as warm resumes and custom policies.  The
reachability-refined ``allocated-type-reachable`` policy re-collapses at
round boundaries: at each inner quiescence the coordinator refreshes its
own policy instance with the merged reachable set and stub signatures,
and on growth broadcasts the merged sets so every worker refreshes to the
identical origins before rounds continue.

**Process vs thread workers.**  Large programs get one OS process per
partition: the coordinator copies the arena buffer into
:class:`multiprocessing.shared_memory.SharedMemory`, and each worker
attaches it read-only (``open_program`` — zero decode, shared pages).
Tiny programs (differential fuzz cases, unit specs) fall back to threads
over the same protocol — the propagation math is identical and the
channel protocol still gets exercised on one core.  Auto mode sizes the
process tier by the ``REPRO_PARALLEL_CORE_BUDGET`` environment variable
(set by the engine's matrix pool so intra-solve workers and pool workers
share the machine) and refuses to run on a budget below two cores;
explicit ``partitions=`` requests are honored regardless so studies and
tests can exercise the protocol anywhere.
"""

from __future__ import annotations

import os
import queue
import threading
import traceback
from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.flows import PredOnFlow
from repro.core.kernel.arena_kernel import (
    _EMPTY,
    _KNOWN_SATURATIONS,
    ArenaKernelSolver,
    ArenaKernelUnsupported,
)
from repro.core.kernel.saturation import (
    DeclaredTypeSaturation,
    make_saturation_policy,
)
from repro.core.state import SolverState
from repro.ir.arena import ProgramArena, open_program, schema
from repro.ir.program import Program
from repro.lattice.value_state import ValueState


class ParallelKernelUnsupported(ArenaKernelUnsupported):
    """This solve cannot run partitioned; fall back to the serial arena kernel."""


#: Engine workers export their per-solve core allowance here so the matrix
#: pool and intra-solve partitions never oversubscribe the machine.
ENV_CORE_BUDGET = "REPRO_PARALLEL_CORE_BUDGET"

#: Programs below this many flows use thread workers: process start-up and
#: arena copying would dominate, and threads still cover the full channel
#: protocol (which is the point on fuzz-sized programs).
THREAD_MODE_MAX_FLOWS = 32768
#: Auto partition sizing: aim for at least this many flows per partition.
THREAD_TARGET_FLOWS = 2000
PROCESS_TARGET_FLOWS = 8000

#: How long the coordinator waits between worker-liveness checks while
#: blocked on a report.  Not a round deadline — rounds may legitimately
#: run far longer; the timeout only bounds how late a dead worker is
#: noticed.
_REPORT_POLL_SECONDS = 10.0


def core_budget() -> int:
    """Cores this solve may use: the engine's exported budget, else all."""
    raw = os.environ.get(ENV_CORE_BUDGET, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return os.cpu_count() or 1


def partition_bounds(arena: ProgramArena, count: int) -> List[int]:
    """Method-aligned cut points for ``count`` contiguous fid ranges.

    Returns ascending fid boundaries ``[0, c1, ..., num_flows]`` — range
    ``i`` is ``[bounds[i], bounds[i+1])``.  Cuts fall only on method range
    starts, so every method's flows (and therefore every static CSR edge)
    live in exactly one partition; partition 0 additionally owns the
    artificial ``pred_on`` flow (fid 0) and every field flow, which the
    freezer lays out below the first method.  Greedy balancing by flow
    count; fewer than ``count`` ranges come back when there are not
    enough method boundaries to cut at.
    """
    n = arena.num_flows
    cuts = sorted({int(arena.method_flow_lo[mid])
                   for mid in range(arena.num_methods)
                   if 0 < arena.method_flow_lo[mid] < n})
    bounds = [0]
    ideal = n / count
    for cut in cuts:
        if len(bounds) >= count:
            break
        if cut >= ideal * len(bounds):
            bounds.append(cut)
    bounds.append(n)
    return bounds


class _Outbox:
    """Per-receiver buffer of one round's outbound messages."""

    __slots__ = ("ops", "joins")

    def __init__(self) -> None:
        #: EDGE/ACT/TOUCH ops in emission order.
        self.ops: List[Tuple[Any, ...]] = []
        #: Accumulated JOIN state per target fid (re-joining the full
        #: accumulation at the owner is idempotent, so batches coalesce).
        self.joins: Dict[int, ValueState] = {}

    def flush(self) -> Tuple[List[Tuple[Any, ...]], List[Tuple[int, ValueState]]]:
        batch = (self.ops, sorted(self.joins.items()))
        self.ops = []
        self.joins = {}
        return batch


class _PartitionWorker(ArenaKernelSolver):
    """One partition's solver: the serial kernel plus ownership routing.

    Every override keeps the owned-fid path byte-for-byte the inherited
    one and diverts only the remote half into the outboxes, so the local
    propagation stays the proven serial kernel.
    """

    def __init__(self, program: Program, config, *, arena: ProgramArena,
                 index: int, bounds: Sequence[int],
                 root_names: Sequence[str]) -> None:
        super().__init__(program, config, arena=arena)
        self._index = index
        self._bounds = list(bounds)
        self._lo = self._bounds[index]
        self._hi = self._bounds[index + 1]
        self._outboxes: Dict[int, _Outbox] = {
            peer: _Outbox() for peer in range(len(self._bounds) - 1)
            if peer != index}
        self._root_names = list(root_names)
        # Remote-send dedup: each activation/touch/edge crosses at most once.
        self._sent_activations: Set[int] = set()
        self._sent_touches: Set[int] = set()
        self._sent_edges: Set[Tuple[int, int]] = set()
        #: Accumulated state already sent per remote target; a new local
        #: state only goes out when it grows this accumulation.
        self._join_sent: Dict[int, ValueState] = {}
        # Delta tracking for per-round reports (saturation refresh inputs).
        self._reported_reachable: Set[str] = set()
        self._reported_stub_links = 0

    # ------------------------------------------------------------------ #
    # Ownership
    # ------------------------------------------------------------------ #
    def _owns(self, fid: int) -> bool:
        return self._lo <= fid < self._hi

    def _partition_of(self, fid: int) -> int:
        return bisect_right(self._bounds, fid) - 1

    def _emit(self, peer: int, op: Tuple[Any, ...]) -> None:
        self._outboxes[peer].ops.append(op)

    def _emit_join(self, target: int, state: ValueState) -> None:
        sent = self._join_sent.get(target, _EMPTY)
        accumulated = sent.join(state)
        if accumulated is sent:
            return
        self._join_sent[target] = accumulated
        self._outboxes[self._partition_of(target)].joins[target] = accumulated

    # ------------------------------------------------------------------ #
    # Ownership-routing overrides of the serial kernel
    # ------------------------------------------------------------------ #
    def _deliver(self, source: int, target: int) -> None:
        if self._owns(target):
            super()._deliver(source, target)
            return
        state = self._st[source]
        if not state.is_empty:
            self._emit_join(target, state)

    def _add_use_edge(self, source: int, target: int) -> None:
        if self._owns(source):
            super()._add_use_edge(source, target)
            return
        key = (source, target)
        if key not in self._sent_edges:
            self._sent_edges.add(key)
            self._emit(self._partition_of(source), ("edge", source, target))

    def _activate(self, qualified_name: str) -> Optional[int]:
        arena = self.arena
        mid = arena.mid_of(qualified_name)
        if mid is not None and not self._owns(arena.method_flow_lo[mid]):
            if mid not in self._sent_activations:
                self._sent_activations.add(mid)
                self._emit(self._partition_of(arena.method_flow_lo[mid]),
                           ("act", mid))
            # The mid is still the caller's answer (``_link_callee`` links
            # arg/ret edges from the arena's read-only metadata); only the
            # enable sweep and bookkeeping happen at the owner.
            return mid
        return super()._activate(qualified_name)

    def _link_fields(self, fid: int) -> None:
        # Identical to the base rule except field-creation bookkeeping is
        # routed to the field's owner (partition 0).
        arena = self.arena
        field_name = arena.string(arena.flow_aux1[fid])
        receiver_state = self._st[arena.flow_aux2[fid]]
        is_load = arena.flow_kind[fid] == schema.K_LOAD_FIELD
        for type_name in receiver_state.reference_types:
            declaration = self.hierarchy.lookup_field(type_name, field_name)
            if declaration is None:
                continue
            field_fid = arena.field_fid(declaration.qualified_name)
            if field_fid is None:  # pragma: no cover — fields are all frozen
                continue
            self._touch_field(field_fid)
            if is_load:
                self._add_use_edge(field_fid, fid)
            else:
                self._add_use_edge(fid, field_fid)

    def _touch_field(self, field_fid: int) -> None:
        if self._owns(field_fid):
            self._record_touch(field_fid)
        elif field_fid not in self._sent_touches:
            self._sent_touches.add(field_fid)
            self._emit(self._partition_of(field_fid), ("touch", field_fid))

    def _record_touch(self, field_fid: int) -> None:
        if field_fid not in self._touched_field_set:
            self._touched_field_set.add(field_fid)
            self._touched_fields.append(field_fid)

    # ------------------------------------------------------------------ #
    # Round protocol
    # ------------------------------------------------------------------ #
    def setup(self) -> None:
        """Mirror of the serial ``solve`` preamble, restricted to owned fids."""
        self._enabled[0] = 1
        self._st[0] = PredOnFlow.artificial_on_enable
        self._saturation = make_saturation_policy(
            self.policy.saturation, self.hierarchy,
            self.policy.saturation_threshold,
            program=self.program, roots=tuple(self._root_names))
        self._solve_roots = tuple(dict.fromkeys(self._root_names))
        self._refresh_saturation()
        arena = self.arena
        for root in self._root_names:
            mid = arena.mid_of(root)
            if mid is None or not self._owns(arena.method_flow_lo[mid]):
                continue  # stub roots and remote roots are the owner's job
            self._activate(root)
            self._seed_root_parameters(mid)
        self._solve_count = 1

    def apply_batch(self, batch: Tuple[List[Tuple[Any, ...]],
                                       List[Tuple[int, ValueState]]]) -> None:
        ops, joins = batch
        for op in ops:
            tag = op[0]
            if tag == "edge":
                self._add_use_edge(op[1], op[2])
            elif tag == "act":
                self._activate(self.arena.qualified_name(op[1]))
            else:  # "touch"
                self._record_touch(op[1])
        for fid, state in joins:
            self._inject(fid, state)

    def run_round(self, batches: Iterable[Tuple[int, Any]],
                  send) -> Tuple[int, List[str], List[Any]]:
        """One superstep: apply inbound batches, run to local quiescence,
        flush one batch per outbound channel via ``send(peer, batch)``.

        Returns (messages sent, newly-reachable names, new stub-link
        signatures) — the deltas the coordinator folds into its
        saturation-refresh inputs.
        """
        for _, batch in batches:
            self.apply_batch(batch)
        self._run()
        sent = 0
        for peer in sorted(self._outboxes):
            batch = self._outboxes[peer].flush()
            sent += len(batch[0]) + len(batch[1])
            send(peer, batch)
        reachable_delta = sorted(self._reachable - self._reported_reachable)
        self._reported_reachable.update(reachable_delta)
        stub_delta = [signature for _, signature
                      in self._stub_links[self._reported_stub_links:]]
        self._reported_stub_links = len(self._stub_links)
        return sent, reachable_delta, stub_delta

    def apply_refresh(self, reachable: Iterable[str],
                      stub_signatures: Iterable[Any]) -> None:
        """Refresh saturation origins from the coordinator's merged sets."""
        refresh = getattr(self._saturation, "refresh_origins", None)
        if refresh is None:
            return
        if refresh(frozenset(reachable), tuple(stub_signatures),
                   self._solve_roots):
            self._recollapse_saturated()

    def collect(self) -> Dict[str, Any]:
        """The partition's final tables, sliced to owned fids."""
        lo, hi = self._lo, self._hi
        st, inp = self._st, self._inp
        states = [(fid, st[fid], inp[fid]) for fid in range(lo, hi)
                  if st[fid] is not _EMPTY or inp[fid] is not _EMPTY]
        return {
            "index": self._index, "lo": lo, "hi": hi,
            "states": states,
            "enabled": bytes(self._enabled[lo:hi]),
            "saturated": bytes(self._saturated[lo:hi]),
            "extra_uses": self._extra_uses,
            "linked_callees": self._linked_callees,
            "activated_mids": list(self._activated_mids),
            "touched_fields": list(self._touched_fields),
            "stub_links": list(self._stub_links),
            "reachable": sorted(self._reachable),
            "stub_methods": sorted(self._stub_methods),
            "steps": self._steps, "joins": self._joins,
            "transfers": self._transfers,
            "saturated_count": self._saturated_count,
        }


# ---------------------------------------------------------------------- #
# Worker mains (shared round-serving loop; thread and process entry)
# ---------------------------------------------------------------------- #
def _serve(worker: _PartitionWorker, inboxes: Dict[int, Any],
           outqueues: Dict[int, Any], report_queue, control_queue) -> None:
    """Answer coordinator commands until told to stop.

    Commands: ``("round", r, refresh)`` — one superstep, preceded by a
    saturation refresh when ``refresh`` is a (reachable, stub-signatures)
    payload; ``("collect",)``; ``("stop",)``.  Any exception is shipped
    to the coordinator as an ``("error", index, traceback)`` report.
    """
    try:
        worker.setup()
        while True:
            command = control_queue.get()
            tag = command[0]
            if tag == "round":
                _, round_index, refresh = command
                if refresh is not None:
                    worker.apply_refresh(refresh[0], refresh[1])
                batches = []
                if round_index > 0:
                    # Ascending sender order keeps batch application (and
                    # with it the whole superstep) deterministic.
                    for sender in sorted(inboxes):
                        batches.append((sender, inboxes[sender].get()))
                sent, reachable_delta, stub_delta = worker.run_round(
                    batches, lambda peer, batch: outqueues[peer].put(batch))
                report_queue.put(("report", worker._index, round_index,
                                  sent, reachable_delta, stub_delta))
            elif tag == "collect":
                report_queue.put(("result", worker._index, worker.collect()))
            else:
                return
    except BaseException:
        report_queue.put(("error", worker._index, traceback.format_exc()))


def _process_worker_main(shm_name: str, config, index: int,
                         bounds: List[int], root_names: List[str],
                         inboxes, outqueues, report_queue, control_queue,
                         shared_tracker: bool) -> None:  # pragma: no cover — child process
    import gc

    from multiprocessing import resource_tracker, shared_memory
    shm = program = worker = None
    try:
        try:
            shm = shared_memory.SharedMemory(name=shm_name)
            if not shared_tracker:
                try:
                    # Attaching registers the segment with this process's
                    # own (spawn-context) resource tracker on 3.10–3.12,
                    # which would unlink it when the first worker exits;
                    # the coordinator owns the lifetime.  A fork child
                    # shares the coordinator's tracker, where the attach
                    # registration is a no-op and an unregister here would
                    # break the coordinator's own unlink bookkeeping.
                    resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
                except Exception:
                    pass
            program = open_program(shm.buf)
            worker = _PartitionWorker(program, config, arena=program.arena,
                                      index=index, bounds=bounds,
                                      root_names=root_names)
        except BaseException:
            report_queue.put(("error", index, traceback.format_exc()))
            return
        _serve(worker, inboxes, outqueues, report_queue, control_queue)
    finally:
        # Drop every memoryview into the segment before closing it, or
        # SharedMemory raises BufferError ("exported pointers exist") at
        # interpreter shutdown.
        worker = None
        program = None
        gc.collect()
        if shm is not None:
            try:
                shm.close()
            except BufferError:
                pass


# ---------------------------------------------------------------------- #
# Coordinator
# ---------------------------------------------------------------------- #
class ParallelKernelSolver(ArenaKernelSolver):
    """Partitioned solve over the arena; drop-in for :class:`ArenaKernelSolver`.

    The coordinator never propagates: it plans the partitioning, drives
    the bulk-synchronous rounds, and installs the workers' merged tables
    into its own (inherited) flat tables, so inflation, image fast paths,
    and every read property behave exactly like the serial kernel's.
    Merging is deterministic — payloads are folded in ascending partition
    order — and the per-cell results are bit-identical to both serial
    kernels by fixpoint uniqueness (the module docstring carries the
    argument; the cross-kernel grid in ``tests/core/test_parallel_kernel.
    py`` and ``benchmarks/run_parallel_study.py`` enforce it).
    """

    def __init__(self, program: Program, config,
                 *, arena: Optional[ProgramArena] = None,
                 state: Optional[SolverState] = None,
                 partitions: Optional[int] = None,
                 mode: Optional[str] = None) -> None:
        super().__init__(program, config, arena=arena, state=state)
        if partitions is None:
            partitions = getattr(config, "partitions", None)
        if partitions is not None and partitions < 2:
            raise ParallelKernelUnsupported(
                f"partitions={partitions}: a partitioned solve needs at "
                f"least two ranges; run the serial arena kernel")
        self._requested_partitions = partitions
        if mode not in (None, "auto", "thread", "process"):
            raise ValueError(f"unknown parallel worker mode {mode!r}")
        self._requested_mode = None if mode == "auto" else mode
        #: Filled by :meth:`solve` for observability (study/tests).
        self.worker_mode: Optional[str] = None
        self.worker_bounds: Optional[List[int]] = None

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def _plan(self) -> Tuple[str, List[int]]:
        arena = self.arena
        if arena.num_methods < 2:
            raise ParallelKernelUnsupported(
                "fewer than two methods: nothing to partition")
        flows = arena.num_flows
        mode = self._requested_mode
        if mode is None:
            mode = "thread" if flows < THREAD_MODE_MAX_FLOWS else "process"
        requested = self._requested_partitions
        if requested is None:
            if mode == "process":
                budget = core_budget()
                if budget < 2:
                    raise ParallelKernelUnsupported(
                        f"core budget {budget} leaves no room for process "
                        f"workers; run the serial arena kernel")
                requested = min(budget, max(2, flows // PROCESS_TARGET_FLOWS))
            else:
                requested = max(2, flows // THREAD_TARGET_FLOWS)
        bounds = partition_bounds(arena, requested)
        if len(bounds) - 1 < 2:
            raise ParallelKernelUnsupported(
                "not enough method boundaries for two partitions")
        return mode, bounds

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(self, roots: Optional[Iterable[str]] = None) -> None:
        root_names = (list(roots) if roots is not None
                      else list(self.program.entry_points))
        if not root_names:
            raise ValueError(
                "no root methods: provide roots or program entry points")
        saturation = make_saturation_policy(
            self.policy.saturation, self.hierarchy,
            self.policy.saturation_threshold,
            program=self.program, roots=tuple(root_names))
        if saturation is not None and type(saturation) not in _KNOWN_SATURATIONS:
            raise ParallelKernelUnsupported(
                f"saturation policy {self.policy.saturation!r} resolves to "
                f"{type(saturation).__name__}, which no arena kernel has "
                f"proven bit-identical")
        if type(saturation) is DeclaredTypeSaturation:
            # Its field sentinels depend on delivery *history* (which
            # parameter carried ``this`` first), the one documented
            # schedule residue — only the serial schedules reproduce it.
            raise ParallelKernelUnsupported(
                "declared-type saturation sentinels are history-dependent; "
                "run the serial arena kernel")
        mode, bounds = self._plan()
        self._saturation = saturation
        self._solve_roots = tuple(dict.fromkeys(root_names))
        self._refresh_saturation()
        self.worker_mode = mode
        self.worker_bounds = bounds
        if mode == "thread":
            payloads = self._run_threads(bounds, root_names)
        else:
            payloads = self._run_processes(bounds, root_names)
        self._install(payloads, root_names)
        self._solved = True

    # ------------------------------------------------------------------ #
    # Orchestration
    # ------------------------------------------------------------------ #
    def _run_threads(self, bounds: List[int],
                     root_names: List[str]) -> List[Dict[str, Any]]:
        count = len(bounds) - 1
        report_queue: queue.SimpleQueue = queue.SimpleQueue()
        controls = [queue.SimpleQueue() for _ in range(count)]
        channels = {(sender, receiver): queue.SimpleQueue()
                    for sender in range(count) for receiver in range(count)
                    if sender != receiver}
        threads = []
        for index in range(count):
            worker = _PartitionWorker(
                self.program, self.config, arena=self.arena,
                index=index, bounds=bounds, root_names=root_names)
            inboxes = {s: channels[(s, index)] for s in range(count)
                       if s != index}
            outqueues = {r: channels[(index, r)] for r in range(count)
                         if r != index}
            thread = threading.Thread(
                target=_serve, name=f"repro-parallel-{index}",
                args=(worker, inboxes, outqueues, report_queue,
                      controls[index]),
                daemon=True)
            threads.append(thread)
        for thread in threads:
            thread.start()
        try:
            return self._drive(controls, report_queue, count, threads)
        finally:
            for control in controls:
                control.put(("stop",))
            for thread in threads:
                thread.join(timeout=10)

    def _run_processes(self, bounds: List[int],
                       root_names: List[str]) -> List[Dict[str, Any]]:
        import multiprocessing

        count = len(bounds) - 1
        try:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
            context = multiprocessing.get_context(start_method)
            from multiprocessing import shared_memory
            blob = self.arena.to_bytes()
            shm = shared_memory.SharedMemory(create=True, size=len(blob))
        except (ImportError, OSError, ValueError) as error:
            raise ParallelKernelUnsupported(
                f"shared-memory workers unavailable here ({error}); run "
                f"the serial arena kernel") from error
        shm.buf[:len(blob)] = blob
        del blob
        processes: List[Any] = []
        try:
            report_queue = context.Queue()
            controls = [context.Queue() for _ in range(count)]
            channels = {(sender, receiver): context.Queue()
                        for sender in range(count)
                        for receiver in range(count) if sender != receiver}
            for index in range(count):
                inboxes = {s: channels[(s, index)] for s in range(count)
                           if s != index}
                outqueues = {r: channels[(index, r)] for r in range(count)
                             if r != index}
                process = context.Process(
                    target=_process_worker_main,
                    name=f"repro-parallel-{index}",
                    args=(shm.name, self.config, index, list(bounds),
                          list(root_names), inboxes, outqueues,
                          report_queue, controls[index],
                          start_method == "fork"),
                    daemon=True)
                processes.append(process)
            try:
                for process in processes:
                    process.start()
            except (OSError, ValueError) as error:
                raise ParallelKernelUnsupported(
                    f"could not start process workers ({error}); run the "
                    f"serial arena kernel") from error
            return self._drive(controls, report_queue, count, processes)
        finally:
            for control in controls:
                try:
                    control.put(("stop",))
                except Exception:
                    pass
            for process in processes:
                process.join(timeout=10)
            for process in processes:
                if process.is_alive():  # pragma: no cover — hung worker
                    process.terminate()
                    process.join(timeout=5)
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover — already gone
                pass

    def _drive(self, controls: List[Any], report_queue, count: int,
               liveness: List[Any]) -> List[Dict[str, Any]]:
        """The coordinator loop: rounds to quiescence, refresh, collect."""
        refresh = getattr(self._saturation, "refresh_origins", None)
        merged_reachable: Set[str] = set(self._reachable)
        merged_stub_signatures: List[Any] = []
        round_index = 0
        refresh_payload = None
        while True:
            for control in controls:
                control.put(("round", round_index, refresh_payload))
            refresh_payload = None
            total_sent = 0
            for message in self._gather(report_queue, count, liveness):
                tag, index, reported_round, sent, reachable, stubs = message
                assert tag == "report" and reported_round == round_index, (
                    f"worker {index} answered round {reported_round} "
                    f"during round {round_index}")
                total_sent += sent
                merged_reachable.update(reachable)
                merged_stub_signatures.extend(stubs)
            round_index += 1
            if total_sent:
                continue
            # Global quiescence: nothing was sent, so next round's receives
            # are all empty and every local worklist is drained.
            if refresh is not None and refresh(
                    frozenset(merged_reachable),
                    tuple(merged_stub_signatures), self._solve_roots):
                payload = (sorted(merged_reachable),
                           list(merged_stub_signatures))
                refresh_payload = payload
                continue
            break
        for control in controls:
            control.put(("collect",))
        payloads = []
        for message in self._gather(report_queue, count, liveness):
            tag, _, payload = message
            assert tag == "result"
            payloads.append(payload)
        return payloads

    def _gather(self, report_queue, count: int,
                liveness: List[Any]) -> List[Tuple[Any, ...]]:
        messages = []
        while len(messages) < count:
            try:
                message = report_queue.get(timeout=_REPORT_POLL_SECONDS)
            except queue.Empty:
                dead = [worker.name for worker in liveness
                        if not worker.is_alive()]
                if dead:  # pragma: no cover — crashed worker
                    raise RuntimeError(
                        f"parallel kernel worker(s) died without reporting: "
                        f"{', '.join(dead)}")
                continue
            if message[0] == "error":
                raise RuntimeError(
                    f"parallel kernel worker {message[1]} failed:\n"
                    f"{message[2]}")
            messages.append(message)
        return messages

    # ------------------------------------------------------------------ #
    # Merge
    # ------------------------------------------------------------------ #
    def _install(self, payloads: List[Dict[str, Any]],
                 root_names: List[str]) -> None:
        """Fold worker tables into the inherited flat tables.

        Ascending partition order makes the merge deterministic; within a
        payload every list keeps the worker's local order.  Activation,
        field-creation, and stub-link order therefore differ from the
        serial kernels' — all three are presentation order only (image
        rows sort, counters sum, saturation origins are sets), never part
        of the bit-identity contract (reachable set, edges, states).
        """
        arena = self.arena
        for payload in sorted(payloads, key=lambda entry: entry["index"]):
            lo, hi = payload["lo"], payload["hi"]
            self._enabled[lo:hi] = payload["enabled"]
            self._saturated[lo:hi] = payload["saturated"]
            for fid, st, inp in payload["states"]:
                self._st[fid] = st
                self._inp[fid] = inp
            self._extra_uses.update(payload["extra_uses"])
            self._linked_callees.update(payload["linked_callees"])
            for mid in payload["activated_mids"]:
                self._activated[mid] = 1
                self._activated_mids.append(mid)
                plo = arena.method_pred_ptr[mid]
                phi = arena.method_pred_ptr[mid + 1]
                self._pred_on_targets.extend(arena.method_pred_val[plo:phi])
            for fid in payload["touched_fields"]:
                if fid not in self._touched_field_set:
                    self._touched_field_set.add(fid)
                    self._touched_fields.append(fid)
            self._stub_links.extend(payload["stub_links"])
            self._reachable.update(payload["reachable"])
            self._stub_methods.update(payload["stub_methods"])
            self._steps += payload["steps"]
            self._joins += payload["joins"]
            self._transfers += payload["transfers"]
            self._saturated_count += payload["saturated_count"]
        self._enabled[0] = 1
        self._st[0] = PredOnFlow.artificial_on_enable
        seen: Set[str] = set()
        for root in root_names:
            if root in seen:
                continue
            seen.add(root)
            if arena.mid_of(root) is None:
                self._stub_methods.add(root)
            else:
                self._seeded_roots.append(root)
        self._solve_count = 1


__all__ = [
    "ENV_CORE_BUDGET",
    "ParallelKernelSolver",
    "ParallelKernelUnsupported",
    "core_budget",
    "partition_bounds",
]
