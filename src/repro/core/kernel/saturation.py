"""Saturation policies: what "megamorphic" means and which top a flow jumps to.

The saturation cutoff collapses a flow whose reference-type set grows past a
threshold, GraalVM-style: the flow's state jumps to a *sentinel* — a top
element for everything that could still arrive — and all further joins into
the flow are skipped (they would be no-ops against top by definition).  A
:class:`SaturationPolicy` decides two things: when a freshly joined state
counts as over the threshold, and which sentinel the flow collapses to.

Both decisions preserve the solver's monotone-termination argument (see
:mod:`repro.core.kernel`): the sentinel is always joined *over* the state
that triggered the collapse, so saturation is a move up the lattice, and
skipping joins into a flow already at its top loses nothing.

Built-ins:

``off``
    No cutoff; the paper's exact semantics.  Represented as ``threshold is
    None`` — :func:`make_saturation_policy` returns ``None`` so the solver's
    hot path pays nothing for the feature being pluggable.
``closed-world``
    The original sentinel: every instantiable type of the closed world,
    ``null``, and primitive ``Any``.  Trivially sound, maximally coarse —
    an ``instanceof Rare`` guard over a saturated flow can never be
    discharged again, because the closed-world top contains every declared
    concrete type whether it is ever allocated or not.
``declared-type``
    A per-declared-type top: a flow that knows its declared reference type
    collapses to the instantiable *subtypes of that declaration* plus
    ``null`` and primitive ``Any``, memoized per declared type.
    Parameters and field flows carry their declaration directly; load and
    store flows collapse to the union of the tops of *every* same-named
    field declaration in the program — a static set, so the sentinel
    dominates whatever declaration the access resolves to later, no matter
    how the receiver's type set grows after the collapse.  Flows without
    any declaration fall back to the closed-world top.  This keeps
    saturation from re-inflating the reachable set with types that could
    never legally flow here, at the cost of assuming type-compatible
    assignments — every value reaching a declared-``T`` flow is a subtype
    of ``T`` — which holds for the surface language and the workload
    generator (stores and calls respect declared types).  Under that
    assumption the sentinel still dominates every future join, so the
    result remains a sound over-approximation.  One place the assumption
    does *not* hold is ``this`` parameters, which receive a call site's
    unfiltered receiver set: there the collapse keeps whatever arrived
    before it (joined over the sentinel, so still sound), which makes a
    saturated flow's exact state history-dependent — reachability and call
    edges stay canonical, but warm-resumed and cold solves may differ in
    that residue (see ``tests/core/test_solver_state.py``).
``allocated-type``
    An RTA-style top: saturated flows collapse to the set of types that can
    ever *originate* in a value state — types with an allocation site
    anywhere in the closed world, plus the instantiable subtypes of the
    root methods' reference parameter types (conservative root seeding can
    inject those even without an allocation).  Declared-but-never-allocated
    types are excluded, so an ``instanceof Rare`` guard over a saturated
    flow is still discharged when ``Rare`` is never instantiated — the
    precision loss the closed-world and declared-type sentinels cannot
    avoid.  Soundness rests on the closed-world origin argument: reference
    types enter value states only through ``new`` sources, conservative
    root seeds, and the stub effects of declared-but-bodyless callees —
    and :func:`allocated_types` unions all three origin sets, computed
    statically over the whole program text, so the sentinel dominates
    every arrival independent of reachability and of the schedule, and
    only grows under monotone program deltas.  This policy needs the
    program (and the solve's roots), so it is registered with a
    context-aware factory; see :class:`SaturationContext`.
``allocated-type-reachable``
    The reachability-refined variant of ``allocated-type``: allocation
    sites are counted only in methods the solve has proved *reachable*
    (plus the root seeds and the stub effects of callees the solve has
    actually linked), so dormant code — plugin self-registration, dead
    feature modules — no longer widens the sentinel.  The origin set now
    depends on reachability, which grows during the solve, so the policy
    cooperates with the solver's refinement loop: after every inner
    fixpoint the solver calls :meth:`ReachableAllocatedSaturation.
    refresh_origins` with the current reachable set, and if the origins
    grew it re-collapses every saturated flow to the widened sentinel
    (the same machinery warm resumption uses) and iterates again.  The
    loop terminates because origins only grow and are bounded by the
    closed world's type count; the result is schedule-independent and
    warm/cold-identical because the *final* sentinel is a function of the
    final reachable set alone — see ``docs/architecture.md`` for the full
    soundness argument.

New policies plug in with :func:`register_saturation_policy`; factories
registered with ``needs_context=True`` receive a :class:`SaturationContext`
(hierarchy, threshold, program, roots) instead of the bare
``(hierarchy, threshold)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.core.flows import (
    FieldFlow,
    Flow,
    LoadFieldFlow,
    ParameterFlow,
    StoreFieldFlow,
)
from repro.ir.instructions import Assign
from repro.ir.types import NULL_TYPE_NAME, OBJECT_TYPE_NAME, TypeHierarchy
from repro.ir.values import ConstKind
from repro.lattice.primitive import ANY
from repro.lattice.value_state import ValueState

if TYPE_CHECKING:
    from repro.ir.program import Program
    from repro.ir.types import MethodSignature

#: The policy name meaning "no cutoff" (threshold ``None``, exact semantics).
OFF = "off"


@runtime_checkable
class SaturationPolicy(Protocol):
    """What the solver consults after every state-growing transfer.

    ``collapse`` returns the sentinel state the flow should jump to, or
    ``None`` when the freshly joined ``new_state`` is still below the
    threshold.  ``sentinel_for`` exposes the flow's top directly; the solver
    uses it when *resuming* a solve to re-collapse already-saturated flows
    against the current program's (possibly wider) sentinel.  A policy
    instance belongs to exactly one solve (it memoizes sentinels against
    that solve's type hierarchy).
    """

    name: str

    def collapse(self, flow: Flow, new_state: ValueState) -> Optional[ValueState]: ...

    def sentinel_for(self, flow: Flow) -> ValueState: ...


class ClosedWorldSaturation:
    """The original cutoff: collapse to the closed world's any-type sentinel."""

    name = "closed-world"

    def __init__(self, hierarchy: TypeHierarchy, threshold: int) -> None:
        self.hierarchy = hierarchy
        self.threshold = threshold
        self._top: Optional[ValueState] = None

    def _closed_world_top(self) -> ValueState:
        top = self._top
        if top is None:
            types = set(self.hierarchy.instantiable_subtypes(OBJECT_TYPE_NAME))
            types.add(NULL_TYPE_NAME)
            top = ValueState.of_types(types).with_primitive(ANY)
            self._top = top
        return top

    def _sentinel(self, flow: Flow) -> ValueState:
        return self._closed_world_top()

    def sentinel_for(self, flow: Flow) -> ValueState:
        """The top this flow would collapse to (resume-time re-collapse)."""
        return self._sentinel(flow)

    def collapse(self, flow: Flow, new_state: ValueState) -> Optional[ValueState]:
        if len(new_state.reference_types) <= self.threshold:
            return None
        # Joining over the triggering state keeps the collapse a move *up*
        # the lattice even if the sentinel itself is narrower in some
        # component (e.g. a declared-type top under ill-typed input).
        return new_state.join(self._sentinel(flow))


class DeclaredTypeSaturation(ClosedWorldSaturation):
    """Per-declared-type top: saturate within the flow's declared subtree."""

    name = "declared-type"

    def __init__(self, hierarchy: TypeHierarchy, threshold: int) -> None:
        super().__init__(hierarchy, threshold)
        self._declared_tops: Dict[str, ValueState] = {}
        self._field_tops: Dict[str, ValueState] = {}

    @staticmethod
    def declared_reference_type(flow: Flow) -> Optional[str]:
        """The flow's *directly recorded* declared reference type, if any."""
        if isinstance(flow, ParameterFlow):
            return flow.declared_type
        if isinstance(flow, FieldFlow):
            return flow.declaration.declared_type
        return None

    def field_declared_types(self, field_name: str) -> Tuple[str, ...]:
        """The declared types of every program field named ``field_name``."""
        return tuple(sorted({
            cls.fields[field_name].declared_type
            for cls in self.hierarchy
            if field_name in cls.fields}))

    def _declared_top(self, declared: str) -> Optional[ValueState]:
        if declared not in self.hierarchy:
            return None
        top = self._declared_tops.get(declared)
        if top is None:
            types = set(self.hierarchy.instantiable_subtypes(declared))
            types.add(NULL_TYPE_NAME)
            top = ValueState.of_types(types).with_primitive(ANY)
            self._declared_tops[declared] = top
        return top

    def _field_top(self, field_name: str) -> Optional[ValueState]:
        """Union of the declared tops of every same-named field declaration.

        Which declaration a load/store resolves to depends on the receiver's
        type set, which keeps growing after the collapse — so the sentinel
        must dominate *every* declaration the access could ever resolve to,
        not just the ones visible when the flow saturates.  The set of
        same-named declarations is static, which makes this sound; shadowed
        or reused field names simply widen the top to the union.
        """
        if field_name in self._field_tops:
            return self._field_tops[field_name]
        top: Optional[ValueState] = None
        for declared in self.field_declared_types(field_name):
            declared_top = self._declared_top(declared)
            if declared_top is None:
                top = None  # a non-class declared type: fall back
                break
            top = declared_top if top is None else top.join(declared_top)
        self._field_tops[field_name] = top
        return top

    def _sentinel(self, flow: Flow) -> ValueState:
        top: Optional[ValueState] = None
        declared = self.declared_reference_type(flow)
        if declared is not None:
            top = self._declared_top(declared)
        elif isinstance(flow, (LoadFieldFlow, StoreFieldFlow)):
            top = self._field_top(flow.field_name)
        return top if top is not None else self._closed_world_top()


class AllocatedTypeSaturation(ClosedWorldSaturation):
    """RTA-style top: only types that can ever originate in a value state."""

    name = "allocated-type"

    def __init__(self, hierarchy: TypeHierarchy, threshold: int,
                 allocated: FrozenSet[str]) -> None:
        super().__init__(hierarchy, threshold)
        self._allocated = allocated
        self._allocated_top: Optional[ValueState] = None

    def _sentinel(self, flow: Flow) -> ValueState:
        top = self._allocated_top
        if top is None:
            types = set(self._allocated)
            types.add(NULL_TYPE_NAME)
            top = ValueState.of_types(types).with_primitive(ANY)
            self._allocated_top = top
        return top


class ReachableAllocatedSaturation(ClosedWorldSaturation):
    """RTA-style top over *reachable* allocation sites only.

    Unlike :class:`AllocatedTypeSaturation`, the origin set is not a
    whole-text constant: it is recomputed from the solve's current
    reachable set by :meth:`refresh_origins`, which the solver calls
    between inner fixpoints (and at resume time, where the restored
    state's reachable set seeds the origins before any re-collapse).
    ``collapse`` and ``sentinel_for`` always answer against the origins of
    the *latest* refresh; the solver's refinement loop guarantees the
    final answer was computed against the final reachable set.
    """

    name = "allocated-type-reachable"

    def __init__(self, hierarchy: TypeHierarchy, threshold: int,
                 program: "Program") -> None:
        super().__init__(hierarchy, threshold)
        self._program = program
        self._origins: FrozenSet[str] = frozenset()
        self._origin_top: Optional[ValueState] = None

    @property
    def origins(self) -> FrozenSet[str]:
        """The origin types of the latest refresh (for tests/diagnostics)."""
        return self._origins

    def refresh_origins(self, reachable: FrozenSet[str],
                        stub_signatures: Tuple["MethodSignature", ...],
                        roots: Tuple[str, ...]) -> bool:
        """Recompute origins from the current reachable set.

        Returns ``True`` when the origin set grew (the solver must then
        re-collapse saturated flows and re-run to the inner fixpoint).
        Origins never shrink within one policy instance, even if called
        with a smaller reachable set, so sentinels only move up the
        lattice — the property the monotone-termination argument needs.
        """
        origins = reachable_allocated_types(
            self._program, reachable=reachable,
            stub_signatures=stub_signatures, roots=roots)
        if origins <= self._origins:
            return False
        self._origins = self._origins | origins
        self._origin_top = None
        return True

    def _sentinel(self, flow: Flow) -> ValueState:
        top = self._origin_top
        if top is None:
            types = set(self._origins)
            types.add(NULL_TYPE_NAME)
            top = ValueState.of_types(types).with_primitive(ANY)
            self._origin_top = top
        return top


def reachable_allocated_types(
        program: "Program", *, reachable: FrozenSet[str],
        stub_signatures: Tuple["MethodSignature", ...] = (),
        roots: Tuple[str, ...] = ()) -> FrozenSet[str]:
    """Types that can originate in a value state of the *reachable* program.

    The refined counterpart of :func:`allocated_types`: the same three
    origin sets, but (a) counts ``new`` sites only in methods of the
    ``reachable`` set and (c) counts only the bodyless callees the solve
    has actually linked (``stub_signatures``, from the solver state's
    replay record) instead of every declared stub in the closed world.
    (b) — the conservative root seeds — is unchanged: roots are seeded
    unconditionally, reachable or not.
    """
    allocated = set()
    hierarchy = program.hierarchy
    # Duck-typed fast path: arena-attached programs precompute their
    # allocation sites per method, so no body is ever decoded here.
    site_index = getattr(program, "allocation_site_index", None)
    if site_index is not None:
        for qualified_name in reachable:
            allocated.update(site_index.get(qualified_name, ()))
    else:
        for qualified_name in reachable:
            method = program.methods.get(qualified_name)
            if method is None:
                continue
            for block in method.blocks:
                for statement in block.statements:
                    if (isinstance(statement, Assign)
                            and statement.expr.kind is ConstKind.NEW):
                        allocated.add(statement.expr.type_name)
    for root in roots or tuple(program.entry_points):
        method = program.methods.get(root)
        if method is None:
            continue
        signature = method.signature
        declared = list(signature.param_types)
        if not signature.is_static:
            declared.append(signature.declaring_class)
        for type_name in declared:
            if type_name in hierarchy:
                allocated.update(hierarchy.instantiable_subtypes(type_name))
    for signature in stub_signatures:
        if (signature.returns_reference
                and signature.return_type in hierarchy):
            allocated.update(
                hierarchy.instantiable_subtypes(signature.return_type))
    return frozenset(allocated)


def allocated_types(program: "Program",
                    roots: Tuple[str, ...] = ()) -> FrozenSet[str]:
    """Every type that can originate in a reference state of ``program``.

    The union of three origin sets, each computed over the whole program
    text — reachability-independent on purpose, so the set is stable under
    any schedule and only grows under monotone deltas:

    (a) types with a ``new`` site anywhere in the closed world;
    (b) the instantiable subtypes of the root methods' declared reference
        parameter types, which conservative root seeding injects without an
        allocation (mirrors ``SkipFlowSolver._conservative_state``; roots
        default to the program's entry points);
    (c) the instantiable subtypes of the reference *return* types of
        declared-but-bodyless methods (native/opaque stubs): the solver's
        stub effects inject exactly that conservative state when such a
        callee is linked, so the sentinel must dominate it too.
    """
    allocated = set()
    # Duck-typed fast path: arena-attached programs precompute their
    # allocation sites per method, so no body is ever decoded here.
    site_index = getattr(program, "allocation_site_index", None)
    if site_index is not None:
        for site_types in site_index.values():
            allocated.update(site_types)
    else:
        for method in program.methods.values():
            for block in method.blocks:
                for statement in block.statements:
                    if (isinstance(statement, Assign)
                            and statement.expr.kind is ConstKind.NEW):
                        allocated.add(statement.expr.type_name)
    hierarchy = program.hierarchy
    for root in roots or tuple(program.entry_points):
        method = program.methods.get(root)
        if method is None:
            continue
        signature = method.signature
        declared = list(signature.param_types)
        if not signature.is_static:
            declared.append(signature.declaring_class)
        for type_name in declared:
            if type_name in hierarchy:
                allocated.update(hierarchy.instantiable_subtypes(type_name))
    for cls in hierarchy:
        for signature in cls.declared_methods.values():
            if signature.qualified_name in program.methods:
                continue
            if (signature.returns_reference
                    and signature.return_type in hierarchy):
                allocated.update(
                    hierarchy.instantiable_subtypes(signature.return_type))
    return frozenset(allocated)


# ---------------------------------------------------------------------- #
# The registry
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SaturationContext:
    """Everything a program-aware saturation factory may need for one solve."""

    hierarchy: TypeHierarchy
    threshold: int
    program: Optional["Program"] = None
    roots: Tuple[str, ...] = ()


SaturationFactory = Callable[[TypeHierarchy, int], SaturationPolicy]

_SATURATION_POLICIES: Dict[str, Tuple[Callable, bool]] = {}


def register_saturation_policy(name: str, factory: Callable,
                               *, needs_context: bool = False,
                               replace: bool = False) -> None:
    """Register a cutoff policy under ``name`` (one fresh instance per solve).

    Plain factories take ``(hierarchy, threshold)``; factories registered
    with ``needs_context=True`` take one :class:`SaturationContext` and may
    inspect the program and the solve's roots (e.g. ``allocated-type``).
    """
    key = name.strip().lower()
    if key == OFF:
        raise ValueError(f"{OFF!r} is the reserved no-cutoff policy")
    if not replace and key in _SATURATION_POLICIES:
        raise ValueError(f"saturation policy {key!r} is already registered; "
                         f"pass replace=True to override it")
    _SATURATION_POLICIES[key] = (factory, needs_context)


def make_saturation_policy(name: str, hierarchy: TypeHierarchy,
                           threshold: Optional[int],
                           *, program: Optional["Program"] = None,
                           roots: Tuple[str, ...] = ()
                           ) -> Optional[SaturationPolicy]:
    """A fresh cutoff policy for one solve, or ``None`` for ``off``.

    Returning ``None`` (rather than a never-fires object) lets the solver
    skip the whole saturation branch on its hot path when the cutoff is
    disabled — which is how the default stays bit-identical to the seed.
    ``program``/``roots`` are forwarded to context-aware factories; plain
    factories never see them.
    """
    key = name.strip().lower()
    if key == OFF or threshold is None:
        return None
    try:
        factory, needs_context = _SATURATION_POLICIES[key]
    except KeyError:
        raise ValueError(
            f"unknown saturation policy {name!r}; available: "
            f"{', '.join(available_saturation_policies())}") from None
    if needs_context:
        return factory(SaturationContext(hierarchy=hierarchy,
                                         threshold=threshold,
                                         program=program, roots=roots))
    return factory(hierarchy, threshold)


def available_saturation_policies() -> Tuple[str, ...]:
    """Registered cutoff names, ``off`` (the exact default) first."""
    return (OFF,) + tuple(sorted(_SATURATION_POLICIES))


def _make_allocated_type(context: SaturationContext) -> AllocatedTypeSaturation:
    if context.program is None:
        raise ValueError(
            "the 'allocated-type' saturation policy needs the program; "
            "it is constructed per solve by the solver (or pass a "
            "SaturationContext with a program)")
    return AllocatedTypeSaturation(
        context.hierarchy, context.threshold,
        allocated_types(context.program, context.roots))


def _make_reachable_allocated(
        context: SaturationContext) -> ReachableAllocatedSaturation:
    if context.program is None:
        raise ValueError(
            "the 'allocated-type-reachable' saturation policy needs the "
            "program; it is constructed per solve by the solver (or pass a "
            "SaturationContext with a program)")
    return ReachableAllocatedSaturation(
        context.hierarchy, context.threshold, context.program)


register_saturation_policy("closed-world", ClosedWorldSaturation)
register_saturation_policy("declared-type", DeclaredTypeSaturation)
register_saturation_policy("allocated-type", _make_allocated_type,
                           needs_context=True)
register_saturation_policy("allocated-type-reachable",
                           _make_reachable_allocated, needs_context=True)
