"""The arena propagation kernel: the fixed-point solve over integer flow ids.

:class:`ArenaKernelSolver` is a transliteration of
:class:`~repro.core.solver.SkipFlowSolver` onto the struct-of-arrays program
encoding of :mod:`repro.ir.arena`.  Where the object solver walks a graph of
:class:`~repro.core.flows.Flow` objects that it builds lazily per reachable
method, the arena kernel works on *flow ids* (fids) into preallocated flat
side tables:

* value states and input states live in two plain lists indexed by fid
  (the states themselves are the same hash-consed
  :class:`~repro.lattice.value_state.ValueState` objects, so ``is``-based
  change detection carries over unchanged);
* the enabled / worklist-membership / link-queue / saturated bits live in
  ``bytearray``\\ s instead of per-object attributes;
* the build-time edges (uses, observers, predicate targets, incoming
  predicates) are read straight from the arena's CSR columns — zero-copy
  ``memoryview`` slices, no per-``_process`` list copies of object edge
  lists — while the edges the solve *adds* (field links, call links,
  ``pred_on`` fan-out) go to small dynamic side tables, exactly like the
  object solver grows its graph;
* "make a method reachable" is "enable an fid range" — no PVPG build, no
  method-body decode: the kernel never touches ``method.blocks``.

The kernel is **bit-identical** to the object solver: same reachable sets,
same value states, same ``steps`` / ``joins`` / ``transfers`` /
``saturated_flows`` counters under every built-in scheduling × saturation
policy.  Every method below mirrors its namesake in ``solver.py`` statement
for statement; when editing one, edit the other (the cross-kernel grid in
``tests/core/test_arena_kernel.py`` and the CI solver-steps gate both fail
loudly on drift).

Because bit-identity is only *proven* for the built-in policies, the kernel
refuses anything it cannot mirror — custom registered scheduling or
saturation policies, and warm resumption from a prior
:class:`~repro.core.state.SolverState` (the object solver borrows caller
state; the arena kernel owns flat tables) — by raising
:class:`ArenaKernelUnsupported`, which callers
(:class:`~repro.core.analysis.SkipFlowAnalysis`) catch to fall back to the
object solver.

After the fixpoint, the :attr:`ArenaKernelSolver.state` property lazily
materializes a real :class:`~repro.core.state.SolverState` (PVPG objects,
edge lists, counters) from the flat tables so every downstream consumer —
value-state queries, call-graph walks, snapshots, warm resumes — sees
exactly what the object solver would have produced.  Inflation reconstructs
flows through their real constructors and never thaws a method body; it
costs more than the propagation itself, which is why it is deferred and why
the image-report inputs (:meth:`ArenaKernelSolver.image_counters`,
:meth:`ArenaKernelSolver.dead_code_rows`) are computed directly from the
flat tables instead.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.flows import (
    FilterCompareFlow,
    FilterTypeFlow,
    Flow,
    InvokeFlow,
    LoadFieldFlow,
    ParameterFlow,
    PhiFlow,
    PhiPredFlow,
    PredOnFlow,
    ReturnFlow,
    SourceFlow,
    StoreFieldFlow,
)
from repro.core.compare import compare_states
from repro.core.kernel.policy import DEFAULT_POLICY, SolverPolicy
from repro.core.kernel.saturation import (
    AllocatedTypeSaturation,
    ClosedWorldSaturation,
    DeclaredTypeSaturation,
    ReachableAllocatedSaturation,
    make_saturation_policy,
)
from repro.core.pvpg import BranchKind, BranchRecord, MethodPVPG, ProgramPVPG
from repro.core.state import SolverState
from repro.ir.arena import ProgramArena, freeze, schema
from repro.ir.instructions import (
    Condition,
    If,
    InstanceOfCondition,
    Invoke,
    InvokeKind,
)
from repro.ir.program import Program
from repro.ir.types import INT_TYPE_NAME, NULL_TYPE_NAME, MethodSignature
from repro.ir.values import ConstantExpr, ConstKind, Value
from repro.lattice.typeset import filter_instanceof
from repro.lattice.value_state import ValueState


class ArenaKernelUnsupported(Exception):
    """The arena kernel cannot run this solve bit-identically; run the object solver."""


#: Scheduling policies the kernel mirrors with integer worklists.  A custom
#: registered policy operates on Flow objects, which the kernel does not have.
_SUPPORTED_SCHEDULING = frozenset({"fifo", "lifo", "degree", "rpo", "hybrid"})

#: Saturation policies whose ``collapse``/``sentinel_for`` the kernel inlines.
#: The check is on the *exact* type: a subclass may override either hook.
_KNOWN_SATURATIONS = (
    ClosedWorldSaturation,
    DeclaredTypeSaturation,
    AllocatedTypeSaturation,
    ReachableAllocatedSaturation,
)

_EMPTY = ValueState.empty()
_INT_ONE = ValueState.of_int(1)

_C_INT = schema.CONST_INDEX[ConstKind.INT]
_C_ANY = schema.CONST_INDEX[ConstKind.ANY]
_C_NEW = schema.CONST_INDEX[ConstKind.NEW]
_CS_STATIC = schema.INVOKE_INDEX[InvokeKind.STATIC]
_CS_VIRTUAL = schema.INVOKE_INDEX[InvokeKind.VIRTUAL]

#: Flow kinds that correspond to actual instructions in the method body —
#: mirror of ``repro.image.dce._INSTRUCTION_FLOW_KINDS`` as kind indices.
_INSTRUCTION_KINDS = frozenset({
    schema.K_SOURCE,
    schema.K_LOAD_FIELD,
    schema.K_STORE_FIELD,
    schema.K_INVOKE,
    schema.K_RETURN,
})


# ---------------------------------------------------------------------- #
# Integer worklists (fid mirrors of repro.core.kernel.scheduling)
# ---------------------------------------------------------------------- #
class _FifoFids:
    """Mirror of ``FifoScheduling`` over fids."""

    def __init__(self, solver: "ArenaKernelSolver") -> None:
        self._queue: Deque[int] = deque()

    def push(self, fid: int) -> None:
        self._queue.append(fid)

    def pop(self) -> int:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class _LifoFids:
    """Mirror of ``LifoScheduling`` over fids."""

    def __init__(self, solver: "ArenaKernelSolver") -> None:
        self._stack: List[int] = []

    def push(self, fid: int) -> None:
        self._stack.append(fid)

    def pop(self) -> int:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class _DegreeFids:
    """Mirror of ``DegreeScheduling``: push-time out-degree, push-order ties."""

    def __init__(self, solver: "ArenaKernelSolver") -> None:
        self._solver = solver
        self._heap: List[Tuple[int, int, int]] = []
        self._pushes = 0

    def push(self, fid: int) -> None:
        self._pushes += 1
        heapq.heappush(
            self._heap, (-self._solver._degree(fid), self._pushes, fid))

    def pop(self) -> int:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class _RpoFids:
    """Mirror of ``RpoScheduling``: reverse-postorder batches over use edges."""

    def __init__(self, solver: "ArenaKernelSolver") -> None:
        self._solver = solver
        self._pending: List[int] = []
        self._batch: List[int] = []

    def push(self, fid: int) -> None:
        self._pending.append(fid)

    def pop(self) -> int:
        if not self._batch:
            self._batch = _postorder_fids(self._solver, self._pending)
            self._pending = []
        return self._batch.pop()

    def __len__(self) -> int:
        return len(self._pending) + len(self._batch)


class _HybridFids:
    """Mirror of ``HybridScheduling``: degree priority within rpo batches."""

    def __init__(self, solver: "ArenaKernelSolver") -> None:
        self._solver = solver
        self._pending: List[int] = []
        self._batch: List[int] = []

    def push(self, fid: int) -> None:
        self._pending.append(fid)

    def pop(self) -> int:
        if not self._batch:
            solver = self._solver
            postorder = _postorder_fids(solver, self._pending)
            rank = {fid: position
                    for position, fid in enumerate(reversed(postorder))}
            ordered = sorted(
                postorder,
                key=lambda fid: (-solver._degree(fid), rank[fid]))
            ordered.reverse()
            self._batch = ordered
            self._pending = []
        return self._batch.pop()

    def __len__(self) -> int:
        return len(self._pending) + len(self._batch)


def _postorder_fids(solver: "ArenaKernelSolver", fids: List[int]) -> List[int]:
    """Mirror of ``scheduling._postorder`` over fids (use edges = static + extra)."""
    members = set(fids)
    visited: Set[int] = set()
    postorder: List[int] = []
    for root in fids:
        if root in visited:
            continue
        visited.add(root)
        stack = [(root, iter(solver._uses_of(root)))]
        while stack:
            fid, edges = stack[-1]
            descended = False
            for target in edges:
                if target in members and target not in visited:
                    visited.add(target)
                    stack.append((target, iter(solver._uses_of(target))))
                    descended = True
                    break
            if not descended:
                postorder.append(fid)
                stack.pop()
    return postorder


_WORKLISTS = {
    "fifo": _FifoFids,
    "lifo": _LifoFids,
    "degree": _DegreeFids,
    "rpo": _RpoFids,
    "hybrid": _HybridFids,
}


class ArenaKernelSolver:
    """The fixed-point solver over an attached arena's integer flow ids.

    Drop-in for :class:`~repro.core.solver.SkipFlowSolver` on the cold path:
    same constructor shape, same :meth:`solve`, and afterwards the same
    ``state`` / ``pvpg`` / counter surface (``state`` inflates lazily on
    first access).  ``program`` may be an
    :class:`~repro.ir.arena.ArenaProgram` (its buffer is used directly — the
    zero-decode worker path) or any plain program (frozen on the fly, which
    still wins when several configs solve the same program).
    """

    def __init__(self, program: Program, config,
                 *, arena: Optional[ProgramArena] = None,
                 state: Optional[SolverState] = None) -> None:
        if state is not None:
            # Warm resumption borrows a caller's object-graph state; the
            # arena kernel owns flat tables and cannot continue it.
            raise ArenaKernelUnsupported(
                "the arena kernel only runs cold solves; resume with the "
                "object kernel")
        self.program = program
        self.hierarchy = program.hierarchy
        self.config = config
        self.policy: SolverPolicy = getattr(config, "solver_policy", DEFAULT_POLICY)
        scheduling = self.policy.scheduling.strip().lower()
        if scheduling not in _SUPPORTED_SCHEDULING:
            raise ArenaKernelUnsupported(
                f"scheduling policy {self.policy.scheduling!r} has no arena "
                f"mirror (supported: {', '.join(sorted(_SUPPORTED_SCHEDULING))})")
        if arena is None:
            arena = getattr(program, "arena", None)
        if arena is None:
            arena = ProgramArena(freeze(program))
        self.arena = arena

        n = arena.num_flows
        #: ``VSout`` / ``VSin`` per fid (hash-consed ValueState objects).
        self._st: List[ValueState] = [_EMPTY] * n
        self._inp: List[ValueState] = [_EMPTY] * n
        self._enabled = bytearray(n)
        self._in_worklist = bytearray(n)
        self._in_link_queue = bytearray(n)
        self._saturated = bytearray(n)
        # Field flows are enabled from the start (FieldFlow.__init__); they
        # are never predicate targets, so pre-setting the bits is inert
        # until a store links one.
        for fid in range(1, 1 + arena.num_fields):
            self._enabled[fid] = 1

        #: Solve-time use edges per source fid, in addition order (the
        #: object solver appends them to ``flow.uses``).
        self._extra_uses: Dict[int, List[int]] = {}
        #: Per-source use-target sets for O(1) duplicate-edge checks;
        #: lazily seeded from the static CSR row on first dynamic add.
        self._use_seen: Dict[int, Set[int]] = {}
        #: Mirror of ``InvokeFlow.linked_callees`` per invoke fid.
        self._linked_callees: Dict[int, Set[str]] = {}
        #: ``pred_on``'s fan-out, replayed per method activation (the object
        #: solver grows it while *building* each reachable method).
        self._pred_on_targets: List[int] = []
        self._activated = bytearray(arena.num_methods)
        #: Activation order — the object PVPG's method-graph insertion order.
        self._activated_mids: List[int] = []
        #: Field fids in first-link order — the object PVPG's lazy
        #: ``FieldFlow`` creation order (``all_flows`` iterates it).
        self._touched_fields: List[int] = []
        self._touched_field_set: Set[int] = set()

        self._reachable: Set[str] = set()
        self._stub_methods: Set[str] = set()
        self._steps = 0
        self._joins = 0
        self._transfers = 0
        self._saturated_count = 0
        self._seeded_roots: List[str] = []
        self._stub_links: List[Tuple[int, MethodSignature]] = []
        self._solve_count = 0

        self._worklist = _WORKLISTS[scheduling](self)
        self._pending_links: Deque[int] = deque()
        self._saturation = None
        self._solve_roots: tuple = ()
        self._signatures: Dict[int, MethodSignature] = {}

        #: Lazily inflated by the :attr:`state` property after :meth:`solve`.
        self._inflated: Optional[SolverState] = None
        self._solved = False

    # ------------------------------------------------------------------ #
    # State views (the object solver's read surface)
    # ------------------------------------------------------------------ #
    @property
    def reachable(self) -> Set[str]:
        return self._reachable

    @property
    def stub_methods(self) -> Set[str]:
        return self._stub_methods

    @property
    def steps(self) -> int:
        return self._steps

    @property
    def joins(self) -> int:
        return self._joins

    @property
    def transfers(self) -> int:
        return self._transfers

    @property
    def saturated_flows(self) -> int:
        return self._saturated_count

    @property
    def state(self) -> SolverState:
        """The fixpoint as an object-graph :class:`SolverState` (lazy).

        Inflation rebuilds real :class:`~repro.core.flows.Flow` objects from
        the flat tables, which costs more than the propagation itself —
        consumers that only need counters, reachable sets, or the image
        reports (:meth:`image_counters`, :meth:`dead_code_rows`) never pay
        it.  The first access materializes and memoizes.
        """
        if self._inflated is None:
            if not self._solved:
                raise RuntimeError("solve() has not run; no state to inflate")
            self._inflated = self._inflate()
        return self._inflated

    @property
    def pvpg(self) -> ProgramPVPG:
        return self.state.pvpg

    # ------------------------------------------------------------------ #
    # Image-report extraction (no inflation)
    # ------------------------------------------------------------------ #
    def image_counters(self) -> Dict[str, int]:
        """The Section 6 counter metrics straight from the flat tables.

        Bit-identical to walking the inflated PVPG with
        :func:`repro.image.metrics.collect_counter_metrics`: a branch counts
        when both of its filter predicates are live (enabled with a
        non-empty state), an invoke counts as polymorphic when it is an
        enabled virtual call with a receiver and at least two linked
        callees.
        """
        arena = self.arena
        enabled = self._enabled
        st = self._st
        type_checks = null_checks = primitive_checks = poly_calls = 0
        for mid in self._activated_mids:
            for row in range(arena.method_br_ptr[mid],
                             arena.method_br_ptr[mid + 1]):
                then_fid = arena.br_then[row]
                else_fid = arena.br_else[row]
                if not (enabled[then_fid] and not st[then_fid].is_empty
                        and enabled[else_fid] and not st[else_fid].is_empty):
                    continue  # removable: at most one branch is live
                kind = schema.BRANCH_KINDS[arena.br_kind[row]]
                if kind is BranchKind.TYPE_CHECK:
                    type_checks += 1
                elif kind is BranchKind.NULL_CHECK:
                    null_checks += 1
                else:
                    primitive_checks += 1
            for index in range(arena.method_inv_ptr[mid],
                               arena.method_inv_ptr[mid + 1]):
                fid = arena.method_inv_val[index]
                if arena.flow_aux2[fid] < 0:  # no receiver: not virtual
                    continue
                if arena.cs_kind[arena.flow_aux1[fid]] != _CS_VIRTUAL:
                    continue
                if not enabled[fid]:
                    continue
                callees = self._linked_callees.get(fid)
                if callees is not None and len(callees) >= 2:
                    poly_calls += 1
        return {
            "type_checks": type_checks,
            "null_checks": null_checks,
            "primitive_checks": primitive_checks,
            "poly_calls": poly_calls,
        }

    def dead_code_rows(self) -> List[Tuple[str, int, int, int, int]]:
        """Per-method ``(name, live, dead, removable_branches, total_branches)``.

        One row per reachable method with a body (stubs have none), sorted
        by qualified name like
        :meth:`~repro.core.results.AnalysisResult.reachable_graphs`; live
        and dead count instruction-kind flows (sources, loads, stores,
        invokes, returns) by their enabled bit — the inputs of
        :func:`repro.image.dce.eliminate_dead_code`, without the PVPG.
        """
        arena = self.arena
        enabled = self._enabled
        st = self._st
        flow_kind = arena.flow_kind
        rows: List[Tuple[str, int, int, int, int]] = []
        for mid in self._activated_mids:
            live = dead = 0
            for fid in range(arena.method_flow_lo[mid],
                             arena.method_flow_hi[mid]):
                if flow_kind[fid] not in _INSTRUCTION_KINDS:
                    continue
                if enabled[fid]:
                    live += 1
                else:
                    dead += 1
            removable = 0
            lo = arena.method_br_ptr[mid]
            hi = arena.method_br_ptr[mid + 1]
            for row in range(lo, hi):
                then_fid = arena.br_then[row]
                else_fid = arena.br_else[row]
                if not (enabled[then_fid] and not st[then_fid].is_empty
                        and enabled[else_fid] and not st[else_fid].is_empty):
                    removable += 1
            rows.append((arena.qualified_name(mid), live, dead, removable,
                         hi - lo))
        rows.sort(key=lambda entry: entry[0])
        return rows

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(self, roots: Optional[Iterable[str]] = None) -> None:
        """Run the cold solve to a fixed point (mirror of ``SkipFlowSolver.solve``)."""
        self._enabled[0] = 1
        self._st[0] = PredOnFlow.artificial_on_enable

        root_names = (list(roots) if roots is not None
                      else list(self.program.entry_points))
        if not root_names:
            raise ValueError("no root methods: provide roots or program entry points")
        saturation = make_saturation_policy(
            self.policy.saturation, self.hierarchy,
            self.policy.saturation_threshold,
            program=self.program, roots=tuple(root_names))
        if saturation is not None and type(saturation) not in _KNOWN_SATURATIONS:
            raise ArenaKernelUnsupported(
                f"saturation policy {self.policy.saturation!r} resolves to "
                f"{type(saturation).__name__}, which the arena kernel has "
                f"not proven bit-identical")
        self._saturation = saturation
        self._solve_roots = tuple(dict.fromkeys(root_names))
        self._refresh_saturation()
        previously_seeded: Set[str] = set()
        for root in root_names:
            mid = self._activate(root)
            if mid is None:
                continue
            self._seed_root_parameters(mid)
            if root not in previously_seeded:
                self._seeded_roots.append(root)
                previously_seeded.add(root)
        self._solve_count = 1
        self._run()
        while self._refresh_saturation():
            self._recollapse_saturated()
            self._run()
        self._solved = True

    # ------------------------------------------------------------------ #
    # Edge views
    # ------------------------------------------------------------------ #
    def _uses_of(self, fid: int) -> List[int]:
        """Current use targets: static CSR row, then solve-time additions."""
        arena = self.arena
        targets = list(arena.use_val[arena.use_ptr[fid]:arena.use_ptr[fid + 1]])
        extras = self._extra_uses.get(fid)
        if extras:
            targets.extend(extras)
        return targets

    def _degree(self, fid: int) -> int:
        """Total fan-out (use + observe + predicate edges), as the object counts it."""
        arena = self.arena
        degree = (arena.use_ptr[fid + 1] - arena.use_ptr[fid]
                  + len(self._extra_uses.get(fid, ()))
                  + arena.obs_ptr[fid + 1] - arena.obs_ptr[fid])
        if fid == 0:
            degree += len(self._pred_on_targets)
        else:
            degree += arena.ptgt_ptr[fid + 1] - arena.ptgt_ptr[fid]
        return degree

    # ------------------------------------------------------------------ #
    # Reachability
    # ------------------------------------------------------------------ #
    def _activate(self, qualified_name: str) -> Optional[int]:
        """Mirror of ``_make_reachable``: enable a method's fid range."""
        arena = self.arena
        mid = arena.mid_of(qualified_name)
        if mid is None:
            self._stub_methods.add(qualified_name)
            return None
        if self._activated[mid]:
            return mid
        self._activated[mid] = 1
        self._activated_mids.append(mid)
        self._reachable.add(qualified_name)
        # The object solver records pred_on fan-out while *building* the
        # method graph, i.e. before the enable loop below runs.
        plo = arena.method_pred_ptr[mid]
        phi = arena.method_pred_ptr[mid + 1]
        self._pred_on_targets.extend(arena.method_pred_val[plo:phi])
        lo = arena.method_flow_lo[mid]
        hi = arena.method_flow_hi[mid]
        enabled = self._enabled
        st = self._st
        if self.config.use_predicates:
            pin_ptr = arena.pin_ptr
            pin_val = arena.pin_val
            for fid in range(lo, hi):
                for predicate in pin_val[pin_ptr[fid]:pin_ptr[fid + 1]]:
                    if enabled[predicate] and not st[predicate].is_empty:
                        self._enable(fid)
                        break
        else:
            for fid in range(lo, hi):
                self._enable(fid)
        return mid

    def _signature_of(self, mid: int) -> MethodSignature:
        signature = self._signatures.get(mid)
        if signature is None:
            signature = self.arena.method_signature(mid)
            self._signatures[mid] = signature
        return signature

    def _seed_root_parameters(self, mid: int) -> None:
        arena = self.arena
        signature = self._signature_of(mid)
        lo = arena.method_param_ptr[mid]
        hi = arena.method_param_ptr[mid + 1]
        for fid in arena.method_param_val[lo:hi]:
            declared = self._declared_parameter_type(signature, fid)
            self._inject(fid, self._conservative_state(declared))

    def _declared_parameter_type(self, signature: MethodSignature,
                                 fid: int) -> Optional[str]:
        arena = self.arena
        declared = arena.opt_string(arena.flow_aux2[fid])
        if declared is not None:
            return declared
        index = arena.flow_aux1[fid]
        if not signature.is_static:
            if index == 0:
                return signature.declaring_class
            index -= 1
        if 0 <= index < len(signature.param_types):
            return signature.param_types[index]
        return None

    def _conservative_state(self, declared_type: Optional[str]) -> ValueState:
        if declared_type is None or declared_type in (INT_TYPE_NAME, "void"):
            return ValueState.any_primitive()
        if declared_type in self.hierarchy:
            types = set(self.hierarchy.instantiable_subtypes(declared_type))
            types.add(NULL_TYPE_NAME)
            return ValueState.of_types(types)
        return ValueState.any_primitive()

    # ------------------------------------------------------------------ #
    # Saturation refinement (mirrors of the object solver's loop hooks)
    # ------------------------------------------------------------------ #
    def _refresh_saturation(self) -> bool:
        refresh = getattr(self._saturation, "refresh_origins", None)
        if refresh is None:
            return False
        return refresh(
            frozenset(self._reachable),
            tuple(signature for _, signature in self._stub_links),
            self._solve_roots)

    def _iter_all_fids(self) -> Iterator[int]:
        """Fids in the object PVPG's ``all_flows()`` order: pred_on, field
        flows in creation (first-link) order, then per-method flows in
        activation order."""
        arena = self.arena
        yield 0
        yield from self._touched_fields
        for mid in self._activated_mids:
            yield from range(arena.method_flow_lo[mid],
                             arena.method_flow_hi[mid])

    def _recollapse_saturated(self) -> None:
        if self._saturation is None:
            return
        st = self._st
        for fid in self._iter_all_fids():
            if not self._saturated[fid]:
                continue
            refreshed = st[fid].join(self._sentinel_for(fid))
            if refreshed is not st[fid]:
                self._inp[fid] = refreshed
                st[fid] = refreshed
                if self._enabled[fid]:
                    self._schedule(fid)

    def _sentinel_for(self, fid: int) -> ValueState:
        """Mirror of ``SaturationPolicy.sentinel_for`` on fid payloads."""
        saturation = self._saturation
        if type(saturation) is DeclaredTypeSaturation:
            arena = self.arena
            kind = arena.flow_kind[fid]
            declared: Optional[str] = None
            if kind == schema.K_PARAMETER:
                declared = arena.opt_string(arena.flow_aux2[fid])
            elif kind == schema.K_FIELD:
                declared = arena.string(arena.field_type[arena.flow_aux1[fid]])
            top: Optional[ValueState] = None
            if declared is not None:
                top = saturation._declared_top(declared)
            elif kind in (schema.K_LOAD_FIELD, schema.K_STORE_FIELD):
                top = saturation._field_top(arena.string(arena.flow_aux1[fid]))
            return top if top is not None else saturation._closed_world_top()
        # Closed-world / allocated tops are flow-independent.
        return saturation._sentinel(None)  # type: ignore[union-attr, arg-type]

    # ------------------------------------------------------------------ #
    # Worklist machinery
    # ------------------------------------------------------------------ #
    def _schedule(self, fid: int) -> None:
        if not self._in_worklist[fid]:
            self._in_worklist[fid] = 1
            self._worklist.push(fid)

    def _schedule_link(self, fid: int) -> None:
        if not self._in_link_queue[fid]:
            self._in_link_queue[fid] = 1
            self._pending_links.append(fid)

    def _run(self) -> None:
        worklist = self._worklist
        pending = self._pending_links
        while len(worklist) or pending:
            if pending:
                fid = pending.popleft()
                self._in_link_queue[fid] = 0
                if self._enabled[fid]:
                    self._link_invoke(fid)
                self._steps += 1
                continue
            fid = worklist.pop()
            self._in_worklist[fid] = 0
            self._steps += 1
            self._process(fid)

    def _process(self, fid: int) -> None:
        if not self._enabled[fid]:
            return
        arena = self.arena
        for target in self._uses_of(fid):
            self._deliver(fid, target)
        for observer in list(
                arena.obs_val[arena.obs_ptr[fid]:arena.obs_ptr[fid + 1]]):
            self._notify(observer)
        if not self._st[fid].is_empty:
            if fid == 0:
                targets = list(self._pred_on_targets)
            else:
                targets = list(arena.ptgt_val[
                    arena.ptgt_ptr[fid]:arena.ptgt_ptr[fid + 1]])
            for target in targets:
                self._enable(target)

    def _deliver(self, source: int, target: int) -> None:
        if self._saturated[target]:
            return
        self._joins += 1
        new_input = self._inp[target].join(self._st[source])
        if new_input is not self._inp[target]:
            self._inp[target] = new_input
            self._recompute(target)

    def _inject(self, fid: int, state: ValueState) -> None:
        if self._saturated[fid]:
            return
        self._joins += 1
        new_input = self._inp[fid].join(state)
        if new_input is not self._inp[fid]:
            self._inp[fid] = new_input
            self._recompute(fid)

    def _transfer(self, fid: int) -> ValueState:
        """The per-kind transfer function (TypeCheck / Cond / PassThrough)."""
        arena = self.arena
        kind = arena.flow_kind[fid]
        if kind == schema.K_FILTER_TYPE and self.config.filter_type_checks:
            return filter_instanceof(
                self._inp[fid], self.hierarchy,
                arena.string(arena.flow_aux1[fid]),
                bool(arena.flow_aux2[fid]))
        if kind == schema.K_FILTER_COMPARE and self.config.filter_comparisons:
            observed_fid = arena.flow_aux2[fid]
            observed = self._st[observed_fid] if observed_fid >= 0 else _EMPTY
            return compare_states(
                schema.COMPARE_OPS[arena.flow_aux1[fid]],
                self._inp[fid], observed)
        return self._inp[fid]

    def _recompute(self, fid: int) -> None:
        self._transfers += 1
        output = self._transfer(fid)
        new_state = self._st[fid].join(output)
        if new_state is not self._st[fid]:
            saturation = self._saturation
            if saturation is not None:
                # Inlined ClosedWorldSaturation.collapse (inherited
                # unchanged by every _KNOWN_SATURATIONS policy).
                if len(new_state.reference_types) > saturation.threshold:
                    self._saturate(fid, new_state.join(self._sentinel_for(fid)))
                    return
            self._st[fid] = new_state
            if self._enabled[fid]:
                self._schedule(fid)

    def _saturate(self, fid: int, sentinel: ValueState) -> None:
        self._saturated_count += 1
        self._saturated[fid] = 1
        self._inp[fid] = sentinel
        self._st[fid] = sentinel
        if self._enabled[fid]:
            self._schedule(fid)

    def _notify(self, fid: int) -> None:
        kind = self.arena.flow_kind[fid]
        if kind == schema.K_INVOKE:
            if self._enabled[fid]:
                self._schedule_link(fid)
        elif kind == schema.K_LOAD_FIELD or kind == schema.K_STORE_FIELD:
            if self._enabled[fid]:
                self._link_fields(fid)
        elif kind == schema.K_FILTER_COMPARE:
            self._recompute(fid)

    def _source_state(self, fid: int) -> ValueState:
        """Mirror of ``SourceFlow.source_state`` from the constant table."""
        arena = self.arena
        row = arena.flow_aux1[fid]
        kind = arena.const_kind[row]
        if kind == _C_INT:
            if self.config.track_primitives:
                return ValueState.of_int(arena.const_int[row])
            return ValueState.any_primitive()
        if kind == _C_ANY:
            return ValueState.any_primitive()
        if kind == _C_NEW:
            return ValueState.of_type(arena.string(arena.const_type[row]))
        return ValueState.null()

    def _enable(self, fid: int) -> None:
        if self._enabled[fid]:
            return
        self._enabled[fid] = 1
        kind = self.arena.flow_kind[fid]
        st = self._st
        if kind == schema.K_SOURCE:
            st[fid] = st[fid].join(self._source_state(fid))
        # artificial_on_enable: pred_on / phi-pred carry int 1, void
        # returns carry primitive Any.
        if kind == schema.K_PHI_PRED or kind == schema.K_PRED_ON:
            st[fid] = st[fid].join(_INT_ONE)
        elif kind == schema.K_RETURN and self.arena.flow_aux1[fid]:
            st[fid] = st[fid].join(ValueState.any_primitive())
        if kind == schema.K_INVOKE:
            self._schedule_link(fid)
        if kind == schema.K_LOAD_FIELD or kind == schema.K_STORE_FIELD:
            self._link_fields(fid)
        if not st[fid].is_empty:
            self._schedule(fid)

    def _add_use_edge(self, source: int, target: int) -> None:
        seen = self._use_seen.get(source)
        if seen is None:
            arena = self.arena
            seen = set(arena.use_val[
                arena.use_ptr[source]:arena.use_ptr[source + 1]])
            self._use_seen[source] = seen
        if target in seen:
            return
        seen.add(target)
        self._extra_uses.setdefault(source, []).append(target)
        if self._enabled[source] and not self._st[source].is_empty:
            self._deliver(source, target)

    # ------------------------------------------------------------------ #
    # Field linking (Load / Store rules)
    # ------------------------------------------------------------------ #
    def _link_fields(self, fid: int) -> None:
        arena = self.arena
        field_name = arena.string(arena.flow_aux1[fid])
        receiver_state = self._st[arena.flow_aux2[fid]]
        is_load = arena.flow_kind[fid] == schema.K_LOAD_FIELD
        for type_name in receiver_state.reference_types:
            declaration = self.hierarchy.lookup_field(type_name, field_name)
            if declaration is None:
                continue
            field_fid = arena.field_fid(declaration.qualified_name)
            if field_fid is None:  # pragma: no cover — fields are all frozen
                continue
            # The object PVPG creates the FieldFlow here (lazily); record
            # the creation order for all_flows()-order mirrors.
            if field_fid not in self._touched_field_set:
                self._touched_field_set.add(field_fid)
                self._touched_fields.append(field_fid)
            if is_load:
                self._add_use_edge(field_fid, fid)
            else:
                self._add_use_edge(fid, field_fid)

    # ------------------------------------------------------------------ #
    # Invoke linking (Invoke rule)
    # ------------------------------------------------------------------ #
    def _link_invoke(self, fid: int) -> None:
        arena = self.arena
        row = arena.flow_aux1[fid]
        method_name = arena.string(arena.cs_method_name[row])
        if arena.cs_kind[row] == _CS_STATIC:
            target_class = arena.opt_string(arena.cs_target_class[row])
            signature = self._resolve_static(target_class, method_name)
            if signature is not None:
                self._link_callee(fid, signature)
            elif target_class is not None:
                self._record_unknown_callee(
                    fid, f"{target_class}.{method_name}")
            return
        receiver_state = self._st[arena.flow_aux2[fid]]
        for type_name in sorted(receiver_state.reference_types):
            signature = self.hierarchy.resolve(type_name, method_name)
            if signature is not None:
                self._link_callee(fid, signature)

    def _resolve_static(self, target_class: Optional[str], method_name: str
                        ) -> Optional[MethodSignature]:
        if target_class is None or target_class not in self.hierarchy:
            return None
        return self.hierarchy.resolve(target_class, method_name)

    def _record_unknown_callee(self, fid: int, qualified_name: str) -> None:
        callees = self._linked_callees.setdefault(fid, set())
        if qualified_name in callees:
            return
        callees.add(qualified_name)
        self._stub_methods.add(qualified_name)
        self._inject(fid, ValueState.any_primitive())

    def _link_callee(self, fid: int, signature: MethodSignature) -> None:
        qualified = signature.qualified_name
        callees = self._linked_callees.setdefault(fid, set())
        if qualified in callees:
            return
        callees.add(qualified)
        mid = self._activate(qualified)
        if mid is None:
            self._stub_links.append((fid, signature))
            self._apply_stub_effects(fid, signature)
            return
        arena = self.arena
        row = arena.flow_aux1[fid]
        arguments = arena.inv_args_val[
            arena.inv_args_ptr[row]:arena.inv_args_ptr[row + 1]]
        parameters = arena.method_param_val[
            arena.method_param_ptr[mid]:arena.method_param_ptr[mid + 1]]
        for argument, parameter in zip(arguments, parameters):
            self._add_use_edge(argument, parameter)
        for return_fid in arena.method_ret_val[
                arena.method_ret_ptr[mid]:arena.method_ret_ptr[mid + 1]]:
            self._add_use_edge(return_fid, fid)

    def _apply_stub_effects(self, fid: int, signature: MethodSignature) -> None:
        if signature.returns_reference:
            result = self._conservative_state(signature.return_type)
        else:
            result = ValueState.any_primitive()
        self._inject(fid, result)

    # ------------------------------------------------------------------ #
    # Inflation: flat tables -> the object solver's SolverState
    # ------------------------------------------------------------------ #
    def _value_of(self, name_sid: int, type_sid: int) -> Optional[Value]:
        if name_sid == schema.NONE_ID:
            return None
        arena = self.arena
        return Value(arena.string(name_sid), arena.opt_string(type_sid))

    def _const_of(self, row: int) -> ConstantExpr:
        arena = self.arena
        kind = schema.CONST_KINDS[arena.const_kind[row]]
        if kind is ConstKind.INT:
            return ConstantExpr(kind, int_value=arena.const_int[row])
        return ConstantExpr(
            kind, type_name=arena.opt_string(arena.const_type[row]))

    def _invoke_of(self, row: int) -> Invoke:
        arena = self.arena
        lo = arena.cs_args_ptr[row]
        hi = arena.cs_args_ptr[row + 1]
        arguments = tuple(
            Value(arena.string(name_sid), arena.opt_string(type_sid))
            for name_sid, type_sid in zip(
                arena.cs_args_name[lo:hi], arena.cs_args_type[lo:hi]))
        return Invoke(
            result=self._value_of(arena.cs_result_name[row],
                                  arena.cs_result_type[row]),
            method_name=arena.string(arena.cs_method_name[row]),
            arguments=arguments,
            receiver=self._value_of(arena.cs_recv_name[row],
                                    arena.cs_recv_type[row]),
            kind=schema.INVOKE_KINDS[arena.cs_kind[row]],
            target_class=arena.opt_string(arena.cs_target_class[row]),
        )

    def _construct_flow(self, fid: int, qualified_name: str) -> Flow:
        """Rebuild one flow through its real constructor (no body thaw).

        Intra-flow references (compare observed, load/store receiver, invoke
        receiver and argument flows) are wired by the caller's fixup pass,
        after every flow object exists.
        """
        arena = self.arena
        config = self.config
        kind = arena.flow_kind[fid]
        label = arena.string(arena.flow_label[fid])
        aux1 = arena.flow_aux1[fid]
        if kind == schema.K_SOURCE:
            return SourceFlow(label, qualified_name, self._const_of(aux1))
        if kind == schema.K_PARAMETER:
            return ParameterFlow(label, qualified_name, aux1,
                                 arena.opt_string(arena.flow_aux2[fid]))
        if kind == schema.K_PHI:
            return PhiFlow(label, qualified_name)
        if kind == schema.K_PHI_PRED:
            return PhiPredFlow(label, qualified_name)
        if kind == schema.K_FILTER_TYPE:
            return FilterTypeFlow(label, qualified_name,
                                  arena.string(aux1),
                                  bool(arena.flow_aux2[fid]),
                                  config.filter_type_checks)
        if kind == schema.K_FILTER_COMPARE:
            return FilterCompareFlow(label, qualified_name,
                                     schema.COMPARE_OPS[aux1],
                                     observed=None,
                                     filtering_enabled=config.filter_comparisons)
        if kind == schema.K_LOAD_FIELD:
            return LoadFieldFlow(label, qualified_name,
                                 arena.string(aux1), None)  # type: ignore[arg-type]
        if kind == schema.K_STORE_FIELD:
            return StoreFieldFlow(label, qualified_name,
                                  arena.string(aux1), None)  # type: ignore[arg-type]
        if kind == schema.K_INVOKE:
            return InvokeFlow(label, qualified_name, self._invoke_of(aux1),
                              receiver=None, argument_flows=[])
        if kind == schema.K_RETURN:
            return ReturnFlow(label, qualified_name, bool(aux1))
        raise AssertionError(
            f"fid {fid}: kind {schema.FLOW_KINDS[kind]} is not method-owned")

    def _branch_record(self, row: int,
                       flows: Dict[int, Flow]) -> BranchRecord:
        arena = self.arena
        if arena.br_is_instanceof[row]:
            condition: object = InstanceOfCondition(
                value=Value(arena.string(arena.br_val_name[row]),
                            arena.opt_string(arena.br_val_type[row])),
                type_name=arena.string(arena.br_type_name[row]),
                negated=bool(arena.br_negated[row]))
        else:
            condition = Condition(
                op=schema.COMPARE_OPS[arena.br_op[row]],
                left=Value(arena.string(arena.br_left_name[row]),
                           arena.opt_string(arena.br_left_type[row])),
                right=Value(arena.string(arena.br_right_name[row]),
                            arena.opt_string(arena.br_right_type[row])))
        instruction = If(condition,
                         arena.string(arena.br_then_label[row]),
                         arena.string(arena.br_else_label[row]))
        return BranchRecord(
            instruction=instruction,
            kind=schema.BRANCH_KINDS[arena.br_kind[row]],
            then_predicate=flows[arena.br_then[row]],
            else_predicate=flows[arena.br_else[row]],
            block_predicate=flows[arena.br_block[row]])

    def _inflate(self) -> SolverState:
        """Materialize the fixpoint as a real :class:`SolverState`.

        The inflated PVPG is structurally identical to what the object
        solver builds: same flows (value-equal payloads, fresh uids), same
        edge lists in the same order, same scalar bits, the method-graph
        map in activation order and the field flows in creation order.  The
        only documented divergence is each flow's incoming ``predicates``
        list order, which the snapshot codec already treats as semantically
        inert.  Method bodies stay frozen: flows are rebuilt from columns.
        """
        arena = self.arena
        hierarchy = self.hierarchy
        pvpg = ProgramPVPG()
        flows: Dict[int, Flow] = {0: pvpg.pred_on}
        for field_fid in self._touched_fields:
            row = field_fid - 1
            cls = hierarchy.get(arena.string(arena.field_class[row]))
            declaration = cls.fields[arena.string(arena.field_name[row])]
            flows[field_fid] = pvpg.field_flow(declaration)
        for mid in self._activated_mids:
            qualified_name = arena.qualified_name(mid)
            graph = MethodPVPG(method=self.program.methods[qualified_name])
            for fid in range(arena.method_flow_lo[mid],
                             arena.method_flow_hi[mid]):
                flow = self._construct_flow(fid, qualified_name)
                flows[fid] = flow
                graph.register(flow)
            graph.parameter_flows = [
                flows[fid] for fid in arena.method_param_val[
                    arena.method_param_ptr[mid]:arena.method_param_ptr[mid + 1]]]
            graph.return_flows = [
                flows[fid] for fid in arena.method_ret_val[
                    arena.method_ret_ptr[mid]:arena.method_ret_ptr[mid + 1]]]
            graph.invoke_flows = [
                flows[fid] for fid in arena.method_inv_val[
                    arena.method_inv_ptr[mid]:arena.method_inv_ptr[mid + 1]]]
            graph.branch_records = [
                self._branch_record(row, flows)
                for row in range(arena.method_br_ptr[mid],
                                 arena.method_br_ptr[mid + 1])]
            pvpg.add_method_graph(graph)

        # Wiring: static CSR edges first (build order), then the solve-time
        # additions in addition order — exactly how the object lists grew.
        for fid, flow in flows.items():
            for target in arena.use_val[
                    arena.use_ptr[fid]:arena.use_ptr[fid + 1]]:
                flow.add_use(flows[target])
            for target in self._extra_uses.get(fid, ()):
                flow.add_use(flows[target])
            for observer in arena.obs_val[
                    arena.obs_ptr[fid]:arena.obs_ptr[fid + 1]]:
                flow.add_observer(flows[observer])
            if fid == 0:
                for target in self._pred_on_targets:
                    flow.add_predicate_target(flows[target])
            else:
                for target in arena.ptgt_val[
                        arena.ptgt_ptr[fid]:arena.ptgt_ptr[fid + 1]]:
                    flow.add_predicate_target(flows[target])

        # Kind fixups: intra-method flow references and linked callees.
        for fid, flow in flows.items():
            if isinstance(flow, FilterCompareFlow):
                observed_fid = arena.flow_aux2[fid]
                flow.observed = (flows[observed_fid]
                                 if observed_fid >= 0 else None)
            elif isinstance(flow, (LoadFieldFlow, StoreFieldFlow)):
                flow.receiver = flows[arena.flow_aux2[fid]]
            elif isinstance(flow, InvokeFlow):
                receiver_fid = arena.flow_aux2[fid]
                flow.receiver = (flows[receiver_fid]
                                 if receiver_fid >= 0 else None)
                row = arena.flow_aux1[fid]
                flow.argument_flows = [
                    flows[argument] for argument in arena.inv_args_val[
                        arena.inv_args_ptr[row]:arena.inv_args_ptr[row + 1]]]
                callees = self._linked_callees.get(fid)
                if callees:
                    flow.linked_callees = set(callees)

        # Scalars: value states, enabled/saturated bits (worklist bits are
        # all clear at a fixpoint).
        for fid, flow in flows.items():
            flow.state = self._st[fid]
            flow.input_state = self._inp[fid]
            flow.enabled = bool(self._enabled[fid])
            flow.saturated = bool(self._saturated[fid])

        state = SolverState(self.config)
        state.pvpg = pvpg
        state.reachable = self._reachable
        state.stub_methods = self._stub_methods
        state.steps = self._steps
        state.joins = self._joins
        state.transfers = self._transfers
        state.saturated_flows = self._saturated_count
        state.seeded_roots = list(self._seeded_roots)
        state.stub_links = [
            (flows[fid], signature) for fid, signature in self._stub_links]
        state.solve_count = self._solve_count
        return state


__all__ = ["ArenaKernelSolver", "ArenaKernelUnsupported"]
