"""The :class:`SolverPolicy`: one value naming a complete solver-kernel setup.

A policy bundles the three knobs the pluggable kernel exposes — the
worklist's :mod:`scheduling <repro.core.kernel.scheduling>` policy, the
megamorphic-flow :mod:`saturation <repro.core.kernel.saturation>` policy,
and the saturation threshold — so that one hashable value can travel
through :class:`~repro.core.analysis.AnalysisConfig`, the
:mod:`repro.api` session (``session.run(name, policy=...)``), the benchmark
engine's config hashing, and the CLI.

Validation happens at construction: policy names must be registered and the
saturation half must be coherent (``off`` means no threshold, any other
cutoff needs one), so a typo fails where the policy is written down rather
than deep inside a solve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.kernel.saturation import OFF, available_saturation_policies
from repro.core.kernel.scheduling import available_scheduling_policies


@dataclass(frozen=True)
class SolverPolicy:
    """A complete, validated solver-kernel configuration.

    ``scheduling``
        Name of the worklist policy (``fifo``, ``lifo``, ``degree``,
        ``rpo``, or anything registered since).  Every scheduling policy
        reaches the same fixed point; only the solver-effort counters
        (steps, joins, transfers) differ.
    ``saturation`` / ``saturation_threshold``
        Name of the cutoff policy and the type-set width that triggers it.
        ``("off", None)`` — the default — is the paper's exact semantics;
        any other policy requires a threshold of at least 1.
    """

    scheduling: str = "fifo"
    saturation: str = OFF
    saturation_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        schedulings = available_scheduling_policies()
        if self.scheduling not in schedulings:
            raise ValueError(
                f"unknown scheduling policy {self.scheduling!r}; available: "
                f"{', '.join(schedulings)}")
        saturations = available_saturation_policies()
        if self.saturation not in saturations:
            raise ValueError(
                f"unknown saturation policy {self.saturation!r}; available: "
                f"{', '.join(saturations)}")
        if self.saturation == OFF:
            if self.saturation_threshold is not None:
                raise ValueError(
                    f"saturation policy {OFF!r} takes no threshold, got "
                    f"{self.saturation_threshold}")
        else:
            if self.saturation_threshold is None:
                raise ValueError(
                    f"saturation policy {self.saturation!r} needs a "
                    f"saturation_threshold")
            if self.saturation_threshold < 1:
                raise ValueError(
                    f"saturation threshold must be >= 1, got "
                    f"{self.saturation_threshold}")

    @property
    def is_default(self) -> bool:
        """Whether this is the bit-identical seed setup (``fifo`` + ``off``)."""
        return self == DEFAULT_POLICY

    @property
    def label(self) -> str:
        """A compact display name, e.g. ``fifo/off`` or ``rpo/declared-type@16``."""
        if self.saturation == OFF:
            return f"{self.scheduling}/{OFF}"
        return f"{self.scheduling}/{self.saturation}@{self.saturation_threshold}"

    def with_scheduling(self, scheduling: str) -> "SolverPolicy":
        return replace(self, scheduling=scheduling)

    def with_saturation(self, saturation: str,
                        threshold: Optional[int] = None) -> "SolverPolicy":
        """This policy with a different cutoff; ``off`` drops the threshold."""
        if saturation == OFF:
            return replace(self, saturation=OFF, saturation_threshold=None)
        return replace(
            self, saturation=saturation,
            saturation_threshold=(threshold if threshold is not None
                                  else self.saturation_threshold))


#: The seed-identical kernel setup every configuration starts from.
DEFAULT_POLICY = SolverPolicy()
