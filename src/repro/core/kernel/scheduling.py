"""Scheduling policies: who owns the solver's worklist, and in what order.

The fixed-point iteration of :class:`~repro.core.solver.SkipFlowSolver` is
correct under *any* fair schedule: value states only move up the lattice and
the transfer functions are monotone, so the Kleene iteration converges to
the same least fixed point no matter which pending flow is processed next
(the classic chaotic-iteration result).  What the schedule *does* change is
the amount of work spent getting there — how often a flow is re-processed
before its inputs have settled — which is exactly what the solver's
machine-independent ``steps``/``joins`` counters measure.

A :class:`SchedulingPolicy` owns the container behind the worklist.  The
solver keeps the intrusive ``in_worklist`` de-duplication bit on each flow
(a flow is pushed at most once until popped), so policies only decide
*order*; they never see duplicates.  The fairness contract is that every
pushed flow is eventually popped — all built-ins drain their containers
completely, which trivially satisfies it and preserves the termination
argument (see :mod:`repro.core.kernel`).

Built-ins:

``fifo``
    A plain double-ended queue, popped oldest-first.  This is the seed
    solver's schedule and the default everywhere: with it, results are
    bit-identical to the seed down to solver step counts.
``lifo``
    A stack, popped newest-first.  Tends to chase one propagation chain to
    quiescence before returning to older work.
``degree``
    A max-priority queue on the flow's out-degree (use + observe +
    predicate edges) *at push time*, ties broken by push order.  Hub flows
    — fields feeding many loads, parameters fanning into many uses — are
    processed first, so their dependents see a settled state earlier.
``rpo``
    Reverse-postorder batching: pushes accumulate into a pending batch;
    when the current batch drains, the pending flows are ordered by a
    depth-first reverse postorder over the use edges *among themselves*
    (producers before consumers, as far as the batch's subgraph is acyclic)
    and become the next batch.  This approximates the round-robin
    topological schedule of classic dataflow solvers on a graph that is
    still growing while it is being solved.
``hybrid``
    ``degree`` priority inside ``rpo`` batches: pending flows still gather
    into rounds, but within a round hub flows pop first (ties broken by the
    round's reverse-postorder rank).  Priorities are computed when the
    round *forms*, not when a flow is pushed, so edges the linker added
    while the flow waited are reflected — the "priority refresh on edge
    addition" that push-time keying (``degree``) cannot afford per edge.

New policies plug in with :func:`register_scheduling_policy`; the CLI, the
engine, and :class:`~repro.core.kernel.policy.SolverPolicy` validation all
resolve names through this registry.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Protocol, Tuple, runtime_checkable

from repro.core.flows import Flow


@runtime_checkable
class SchedulingPolicy(Protocol):
    """What the solver's worklist must support.

    ``push`` is called at most once per flow until that flow is popped (the
    solver's ``in_worklist`` bit guarantees it), ``pop`` must return some
    previously pushed flow, and ``__len__`` reports how many flows are
    pending.  A policy instance belongs to exactly one solve.
    """

    name: str

    def push(self, flow: Flow) -> None: ...

    def pop(self) -> Flow: ...

    def __len__(self) -> int: ...


class FifoScheduling:
    """The seed schedule: a queue popped oldest-first (bit-identical default)."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: Deque[Flow] = deque()

    def push(self, flow: Flow) -> None:
        self._queue.append(flow)

    def pop(self) -> Flow:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class LifoScheduling:
    """A stack popped newest-first: depth-first chasing of propagation chains."""

    name = "lifo"

    def __init__(self) -> None:
        self._stack: List[Flow] = []

    def push(self, flow: Flow) -> None:
        self._stack.append(flow)

    def pop(self) -> Flow:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class DegreeScheduling:
    """Highest out-degree first: settle hub flows before their dependents.

    The priority is the flow's total fan-out (use, observe, and predicate
    edges) at push time; linking can grow a flow's fan-out afterwards, but
    re-keying on every edge addition would cost more than the stale priority
    ever loses.  Ties break by push order, which keeps the schedule fully
    deterministic (flows themselves are never compared).
    """

    name = "degree"

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Flow]] = []
        self._pushes = 0

    @staticmethod
    def _degree(flow: Flow) -> int:
        return len(flow.uses) + len(flow.observers) + len(flow.predicate_targets)

    def push(self, flow: Flow) -> None:
        self._pushes += 1
        heapq.heappush(self._heap, (-self._degree(flow), self._pushes, flow))

    def pop(self) -> Flow:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class RpoScheduling:
    """Reverse-postorder batching over the PVPG's use edges.

    Pushes collect into a *pending* batch while the current batch drains.
    When the current batch is exhausted, the pending flows are reordered by
    a DFS reverse postorder restricted to the batch (producers before their
    consumers wherever the batch subgraph is acyclic; back edges of loops
    fall where DFS leaves them) and become the next batch.  Each batch is
    one "round" of the classic round-robin iteration.
    """

    name = "rpo"

    def __init__(self) -> None:
        self._pending: List[Flow] = []
        #: The current batch in *postorder* (reverse postorder popped from the end).
        self._batch: List[Flow] = []

    def push(self, flow: Flow) -> None:
        self._pending.append(flow)

    def pop(self) -> Flow:
        if not self._batch:
            self._batch = _postorder(self._pending)
            self._pending = []
        return self._batch.pop()

    def __len__(self) -> int:
        return len(self._pending) + len(self._batch)


class HybridScheduling:
    """Degree priority within reverse-postorder batches, refreshed per round.

    Each round is the set of flows pushed while the previous round drained
    (exactly :class:`RpoScheduling`'s batching).  When a round forms, every
    member's fan-out is measured *at that moment* and the round is popped
    highest-degree first, with the round's reverse-postorder rank breaking
    ties deterministically.  Measuring at round formation is the priority
    refresh: a flow that gained edges while pending is promoted, where
    ``degree`` would still pop it at its stale push-time priority.
    """

    name = "hybrid"

    def __init__(self) -> None:
        self._pending: List[Flow] = []
        #: The current round, ordered so ``list.pop()`` yields highest
        #: degree first (reverse of the desired pop order).
        self._batch: List[Flow] = []

    def push(self, flow: Flow) -> None:
        self._pending.append(flow)

    def pop(self) -> Flow:
        if not self._batch:
            postorder = _postorder(self._pending)
            rank = {flow.uid: position
                    for position, flow in enumerate(reversed(postorder))}
            ordered = sorted(
                postorder,
                key=lambda flow: (-DegreeScheduling._degree(flow),
                                  rank[flow.uid]))
            ordered.reverse()
            self._batch = ordered
            self._pending = []
        return self._batch.pop()

    def __len__(self) -> int:
        return len(self._pending) + len(self._batch)


def _postorder(flows: List[Flow]) -> List[Flow]:
    """DFS postorder of ``flows`` over use edges restricted to ``flows``.

    Popping the returned list from the end yields reverse postorder.  Roots
    are visited in push order and edge iterators are the flows' own use
    lists, so the order is deterministic.
    """
    members = {flow.uid for flow in flows}
    visited: set = set()
    postorder: List[Flow] = []
    for root in flows:
        if root.uid in visited:
            continue
        visited.add(root.uid)
        stack = [(root, iter(root.uses))]
        while stack:
            flow, edges = stack[-1]
            descended = False
            for target in edges:
                if target.uid in members and target.uid not in visited:
                    visited.add(target.uid)
                    stack.append((target, iter(target.uses)))
                    descended = True
                    break
            if not descended:
                postorder.append(flow)
                stack.pop()
    return postorder


# ---------------------------------------------------------------------- #
# The registry
# ---------------------------------------------------------------------- #
_SCHEDULING_POLICIES: Dict[str, Callable[[], SchedulingPolicy]] = {}


def register_scheduling_policy(name: str,
                               factory: Callable[[], SchedulingPolicy],
                               *, replace: bool = False) -> None:
    """Register a worklist policy under ``name`` (one fresh instance per solve)."""
    key = name.strip().lower()
    if not replace and key in _SCHEDULING_POLICIES:
        raise ValueError(f"scheduling policy {key!r} is already registered; "
                         f"pass replace=True to override it")
    _SCHEDULING_POLICIES[key] = factory


def make_scheduling_policy(name: str) -> SchedulingPolicy:
    """A fresh worklist for one solve, looked up by (case-insensitive) name."""
    try:
        factory = _SCHEDULING_POLICIES[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; available: "
            f"{', '.join(available_scheduling_policies())}") from None
    return factory()


def available_scheduling_policies() -> Tuple[str, ...]:
    """Registered scheduling-policy names, the bit-identical default first."""
    names = sorted(_SCHEDULING_POLICIES)
    if "fifo" in names:
        names.remove("fifo")
        names.insert(0, "fifo")
    return tuple(names)


register_scheduling_policy("fifo", FifoScheduling)
register_scheduling_policy("lifo", LifoScheduling)
register_scheduling_policy("degree", DegreeScheduling)
register_scheduling_policy("rpo", RpoScheduling)
register_scheduling_policy("hybrid", HybridScheduling)
