"""Static diagnostics: IR lint passes and post-solve fixpoint audits.

The dynamic fuzz oracle (:mod:`repro.fuzz`) is the expensive way to catch
an unsound result; this package is the cheap, always-on way.  Two check
families share one framework — a :class:`Check` registry mirroring the
analyzer registry, :class:`Diagnostic` records with stable ids (``IR0xx``
lint, ``AUD0xx`` audit), entity-anchored locations, text/JSON renderers,
and a suppression :class:`Baseline`:

* **lint** (:mod:`repro.checks.lint`) inspects the input program before
  any solve: dead blocks and methods, write-only/read-only fields,
  undispatchable virtual calls, roots naming nothing, non-monotone-risk
  edit scripts;
* **audit** (:mod:`repro.checks.audit`) statically verifies the artifacts
  a solve produced: fixpoint stability under one extra sweep, call-graph
  and field-link closure, saturation-sentinel consistency, snapshot
  integrity, warm-barrier monotonicity.

Surfaces: ``repro check`` and ``repro analyze --audit`` (CLI), the
daemon's ``/v1/check`` endpoint and audit-on-analyze option, an audit
phase in ``benchmarks/ci_smoke.py``, and the fuzz oracle running
:func:`audit_state` on every case.  Catalog and soundness argument:
``docs/checks.md``.
"""

from repro.checks.audit import (
    AUDIT_CHECKS,
    audit_result,
    audit_snapshot,
    audit_state,
)
from repro.checks.diagnostics import (
    BASELINE_VERSION,
    Baseline,
    BaselineError,
    Diagnostic,
    Location,
    Severity,
    diagnostics_to_dict,
    has_errors,
    render_text,
    sort_diagnostics,
)
from repro.checks.lint import LINT_CHECKS, lint_program
from repro.checks.registry import (
    CHECK_KINDS,
    Check,
    CheckContext,
    UnknownCheckError,
    available_checks,
    get_check,
    register_check,
    run_checks,
    unregister_check,
)

__all__ = [
    "AUDIT_CHECKS",
    "BASELINE_VERSION",
    "Baseline",
    "BaselineError",
    "CHECK_KINDS",
    "Check",
    "CheckContext",
    "Diagnostic",
    "LINT_CHECKS",
    "Location",
    "Severity",
    "UnknownCheckError",
    "audit_result",
    "audit_snapshot",
    "audit_state",
    "available_checks",
    "diagnostics_to_dict",
    "get_check",
    "has_errors",
    "lint_program",
    "register_check",
    "render_text",
    "run_checks",
    "sort_diagnostics",
    "unregister_check",
]
