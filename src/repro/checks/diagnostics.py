"""Diagnostic records: what every check reports, and how it is rendered.

A :class:`Diagnostic` is one finding of one check: a *stable id* (``IR0xx``
for lint findings over the input program, ``AUD0xx`` for post-solve audit
findings over analysis artifacts), a :class:`Severity`, an entity-anchored
:class:`Location` (method / block / flow / field), and a human-readable
message.  Stable ids are the contract: tests assert on them, baselines
suppress by them, and renaming a check never renames its ids.

Two renderers ship with the framework — :func:`render_text` for terminals
and :func:`diagnostics_to_dict` for the JSON surfaces (``repro check
--json``, the daemon's ``/v1/check`` endpoint) — plus a suppression
:class:`Baseline`: a JSON file listing diagnostic keys (a bare id, or
``id@anchor`` for one occurrence) that are expected and should not fail a
gate.  See ``docs/checks.md`` for the catalog and the file format.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union


class Severity(enum.IntEnum):
    """How bad a finding is; ordered so gates can threshold on it.

    ``ERROR`` findings mean an artifact is *wrong* (a non-fixpoint state, a
    dropped call edge, a forged snapshot) and fail gates by default;
    ``WARNING`` findings mean the input program is *suspicious* (dead
    blocks, write-only fields) and are advisory unless a caller opts into
    strictness; ``INFO`` is purely informational.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Location:
    """Where a finding is anchored: the entity it is *about*.

    All fields are optional — a program-wide finding has none; a finding
    about one flow names its method, its uid, and the flow class.  The
    :meth:`anchor` string is the stable rendering used in messages and in
    suppression keys.
    """

    method: Optional[str] = None
    block: Optional[str] = None
    flow: Optional[int] = None
    flow_kind: Optional[str] = None
    field: Optional[str] = None

    def anchor(self) -> str:
        parts: List[str] = []
        if self.method is not None:
            parts.append(f"method:{self.method}")
        if self.block is not None:
            parts.append(f"block:{self.block}")
        if self.field is not None:
            parts.append(f"field:{self.field}")
        if self.flow is not None:
            kind = f"({self.flow_kind})" if self.flow_kind else ""
            parts.append(f"flow:{self.flow}{kind}")
        return "/".join(parts)

    def to_dict(self) -> dict:
        return {key: value for key, value in (
            ("method", self.method), ("block", self.block),
            ("field", self.field), ("flow", self.flow),
            ("flow_kind", self.flow_kind)) if value is not None}


#: Anchor of a finding with no location at all (program-wide findings).
PROGRAM_ANCHOR = "program"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one check (see the module docstring)."""

    id: str
    severity: Severity
    message: str
    check: str
    location: Location = Location()

    @property
    def key(self) -> str:
        """The suppression key: ``id@anchor`` (or the bare id program-wide)."""
        anchor = self.location.anchor()
        return f"{self.id}@{anchor}" if anchor else self.id

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "severity": self.severity.label,
            "check": self.check,
            "message": self.message,
            "location": self.location.to_dict(),
        }

    def render(self) -> str:
        anchor = self.location.anchor() or PROGRAM_ANCHOR
        return (f"{self.id} {self.severity.label} [{self.check}] "
                f"{anchor}: {self.message}")


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Deterministic report order: severity first (worst leading), then id."""
    return sorted(diagnostics,
                  key=lambda d: (-int(d.severity), d.id, d.location, d.message))


def render_text(diagnostics: Sequence[Diagnostic],
                title: Optional[str] = None) -> str:
    """The terminal rendering: one line per finding plus a count footer."""
    lines: List[str] = []
    if title:
        lines.append(title)
    ordered = sort_diagnostics(diagnostics)
    lines.extend(diag.render() for diag in ordered)
    errors = sum(1 for diag in ordered if diag.severity >= Severity.ERROR)
    warnings = sum(1 for diag in ordered if diag.severity == Severity.WARNING)
    lines.append(f"{len(ordered)} finding(s): {errors} error(s), "
                 f"{warnings} warning(s)")
    return "\n".join(lines)


def diagnostics_to_dict(diagnostics: Sequence[Diagnostic]) -> dict:
    """The JSON shape shared by ``repro check --json`` and the daemon."""
    ordered = sort_diagnostics(diagnostics)
    return {
        "diagnostics": [diag.to_dict() for diag in ordered],
        "counts": {
            "error": sum(1 for d in ordered if d.severity >= Severity.ERROR),
            "warning": sum(1 for d in ordered
                           if d.severity == Severity.WARNING),
            "info": sum(1 for d in ordered if d.severity == Severity.INFO),
        },
    }


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(diag.severity >= Severity.ERROR for diag in diagnostics)


class BaselineError(Exception):
    """Raised for a malformed suppression/baseline file."""


#: Version of the baseline file format (see :class:`Baseline`).
BASELINE_VERSION = 1


class Baseline:
    """A set of expected findings that should not fail a gate.

    Entries are diagnostic keys: a bare id (``"IR003"``) suppresses every
    occurrence of that check id; a full key (``"IR003@field:Config.mode"``)
    suppresses exactly one anchored occurrence.  The on-disk shape is
    deliberately tiny::

        {"version": 1, "suppress": ["IR003", "AUD005@flow:12(FieldFlow)"]}
    """

    def __init__(self, entries: Iterable[str] = ()) -> None:
        self.entries = frozenset(entries)

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise BaselineError(f"baseline is not JSON: {error}") from error
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline must be an object with version {BASELINE_VERSION}")
        entries = data.get("suppress", [])
        if (not isinstance(entries, list)
                or not all(isinstance(entry, str) for entry in entries)):
            raise BaselineError("baseline 'suppress' must be a list of keys")
        return cls(entries)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "Baseline":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def to_json(self) -> str:
        return json.dumps({"version": BASELINE_VERSION,
                           "suppress": sorted(self.entries)}, indent=2)

    def suppresses(self, diagnostic: Diagnostic) -> bool:
        return (diagnostic.id in self.entries
                or diagnostic.key in self.entries)

    def apply(self, diagnostics: Iterable[Diagnostic]
              ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """Split into (kept, suppressed) while preserving order."""
        kept: List[Diagnostic] = []
        suppressed: List[Diagnostic] = []
        for diag in diagnostics:
            (suppressed if self.suppresses(diag) else kept).append(diag)
        return kept, suppressed
