"""The check registry: named, discoverable diagnostics passes.

Mirrors the analyzer registry (:mod:`repro.api.registry`): checks are
registered under normalized names, looked up with a helpful error listing
what *is* available, and enumerated in a deterministic order.  Two kinds
exist:

* ``lint`` checks inspect the input **program** (and optionally a pending
  :class:`~repro.ir.delta.ProgramDelta`) — they need no analysis result;
* ``audit`` checks inspect **analysis artifacts** — the final
  :class:`~repro.core.state.SolverState` of a solve, its snapshot codec
  round-trip, and its relation to the owning session's warm barrier.

Both kinds consume one :class:`CheckContext` and return
:class:`~repro.checks.diagnostics.Diagnostic` lists; a check whose inputs
are absent from the context (e.g. an audit with no solver state) returns
no findings rather than failing, so ``run_checks`` can always run the
whole registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.checks.diagnostics import Baseline, Diagnostic, sort_diagnostics

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids import cycles
    from repro.core.state import SolverState
    from repro.ir.delta import ProgramDelta
    from repro.ir.program import Program


class UnknownCheckError(KeyError):
    """Raised when a check name is not registered."""


#: The two check kinds (see the module docstring).
CHECK_KINDS = ("lint", "audit")


@dataclass
class CheckContext:
    """Everything a check may inspect; fields are optional by kind.

    ``program`` is always required.  ``roots`` are the analysis roots the
    lint reachability pass starts from (defaults to the program's entry
    points).  ``state`` is the post-solve artifact audits verify;
    ``snapshot`` optionally carries serialized snapshot bytes to verify
    instead of round-tripping ``state`` in memory (the rehydration path).
    ``warm_barrier`` is the owning session's barrier generation for the
    warm-monotonicity audit.  ``delta`` is a pending edit script for the
    delta-risk lint.
    """

    program: "Program"
    roots: Tuple[str, ...] = ()
    state: Optional["SolverState"] = None
    snapshot: Optional[bytes] = None
    warm_barrier: int = 0
    delta: Optional["ProgramDelta"] = None


@dataclass(frozen=True)
class Check:
    """One registered diagnostics pass.

    ``ids`` lists every stable diagnostic id the pass can emit — the
    catalog in ``docs/checks.md`` is generated from exactly this field, so
    a check that grows a new finding must declare its id here.
    """

    name: str
    kind: str
    ids: Tuple[str, ...]
    description: str
    run: Callable[[CheckContext], List[Diagnostic]] = field(compare=False)

    def __post_init__(self) -> None:
        if self.kind not in CHECK_KINDS:
            raise ValueError(
                f"check {self.name!r} has unknown kind {self.kind!r}; "
                f"expected one of {CHECK_KINDS}")


_REGISTRY: Dict[str, Check] = {}


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_check(check: Check, *, replace: bool = False) -> Check:
    """Register a check under its normalized name.

    Re-registering an existing name raises unless ``replace`` is given —
    the same contract as :func:`repro.api.registry.register_analyzer`.
    """
    key = _normalize(check.name)
    if not replace and key in _REGISTRY:
        raise ValueError(
            f"check {check.name!r} is already registered; "
            f"pass replace=True to override")
    _REGISTRY[key] = check
    return check


def unregister_check(name: str) -> None:
    key = _normalize(name)
    if key not in _REGISTRY:
        raise UnknownCheckError(name)
    del _REGISTRY[key]


def get_check(name: str) -> Check:
    """Look up one check by name; the error lists what is available."""
    key = _normalize(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        available = ", ".join(check.name for check in available_checks())
        raise UnknownCheckError(
            f"unknown check {name!r}; available: {available}") from None


def available_checks(kind: Optional[str] = None) -> List[Check]:
    """Registered checks, lint first then audit, each name-sorted."""
    checks = [check for check in _REGISTRY.values()
              if kind is None or check.kind == kind]
    return sorted(checks, key=lambda check: (CHECK_KINDS.index(check.kind),
                                             check.name))


def run_checks(context: CheckContext, *,
               names: Optional[Sequence[str]] = None,
               kind: Optional[str] = None,
               baseline: Optional[Baseline] = None) -> List[Diagnostic]:
    """Run checks over one context and collect their findings.

    ``names`` selects specific checks (any kind); otherwise every
    registered check of ``kind`` (or all of them) runs.  With a
    ``baseline``, suppressed findings are dropped.  The result is in the
    deterministic report order of :func:`sort_diagnostics`.
    """
    if names is not None:
        selected = [get_check(name) for name in names]
        if kind is not None:
            selected = [check for check in selected if check.kind == kind]
    else:
        selected = available_checks(kind)
    diagnostics: List[Diagnostic] = []
    for check in selected:
        diagnostics.extend(check.run(context))
    if baseline is not None:
        diagnostics, _ = baseline.apply(diagnostics)
    return sort_diagnostics(diagnostics)
