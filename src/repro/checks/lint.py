"""IR lint passes: suspicious-but-legal patterns in the input program.

:mod:`repro.ir.validate` rejects programs that are *malformed* — dangling
jump targets, phi/merge arity mismatches, unknown entry points.  The lint
passes here accept well-formed programs and flag what is merely
*suspicious*: code no root can reach, fields only ever written (or only
ever read), virtual call sites no instantiable receiver could dispatch,
and edit scripts that would break warm resumption.  Every finding is a
:class:`~repro.checks.diagnostics.Diagnostic` with a stable ``IR0xx`` id
at ``WARNING`` severity (``ERROR`` for roots naming nothing — analyzing
such a program fails anyway, the lint just says so earlier and by name).

The reachability pass (``IR002``) is deliberately a *name-based*
over-approximation — a static call adds its resolved target, a virtual
call adds every program method with a matching simple name — so it only
flags methods that not even the coarsest call graph could reach.  Precise
unreachability is the analyzers' job; the lint's job is catching dead
weight and typos cheaply, before any solve.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.checks.diagnostics import Diagnostic, Location, Severity
from repro.checks.registry import Check, CheckContext, register_check
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import Invoke, InvokeKind, LoadField, StoreField
from repro.ir.program import Program

#: The conventional fallback root (mirrors repro.api.session).
_DEFAULT_ROOT = "Main.main"


def _lint_roots(context: CheckContext) -> Tuple[str, ...]:
    """The roots the reachability lint starts from (no errors: best effort)."""
    if context.roots:
        return tuple(context.roots)
    program = context.program
    if program.entry_points:
        return tuple(program.entry_points)
    if program.has_method(_DEFAULT_ROOT):
        return (_DEFAULT_ROOT,)
    return ()


# --------------------------------------------------------------------------- #
# IR001 — unreachable basic blocks
# --------------------------------------------------------------------------- #
def _check_dead_blocks(context: CheckContext) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for name, method in sorted(context.program.methods.items()):
        try:
            cfg = ControlFlowGraph(method)
        except KeyError:
            continue  # Malformed CFG: ir.validate's jurisdiction, not ours.
        for block in sorted(cfg.unreachable_blocks()):
            diagnostics.append(Diagnostic(
                id="IR001", severity=Severity.WARNING, check="dead-blocks",
                message=f"block {block!r} is unreachable from the entry "
                        f"block of {name}",
                location=Location(method=name, block=block)))
    return diagnostics


# --------------------------------------------------------------------------- #
# IR002 — methods unreachable from any root (name-based closure)
# --------------------------------------------------------------------------- #
def _name_reachable(program: Program, roots: Tuple[str, ...]) -> Set[str]:
    by_name: Dict[str, List[str]] = {}
    for qualified, method in program.methods.items():
        by_name.setdefault(method.signature.name, []).append(qualified)
    hierarchy = program.hierarchy
    reached: Set[str] = set()
    worklist = [root for root in roots if program.has_method(root)]
    while worklist:
        current = worklist.pop()
        if current in reached:
            continue
        reached.add(current)
        for invoke in program.methods[current].iter_invokes():
            if invoke.kind is InvokeKind.STATIC:
                if (invoke.target_class is None
                        or invoke.target_class not in hierarchy):
                    continue
                signature = hierarchy.resolve(invoke.target_class,
                                              invoke.method_name)
                if (signature is not None
                        and program.has_method(signature.qualified_name)):
                    worklist.append(signature.qualified_name)
            else:
                worklist.extend(by_name.get(invoke.method_name, ()))
    return reached


def _check_dead_methods(context: CheckContext) -> List[Diagnostic]:
    roots = _lint_roots(context)
    if not roots:
        return []
    reached = _name_reachable(context.program, roots)
    return [
        Diagnostic(
            id="IR002", severity=Severity.WARNING, check="dead-methods",
            message=f"method {name} is unreachable from every root even "
                    f"under name-based dispatch (roots: {', '.join(roots)})",
            location=Location(method=name))
        for name in sorted(set(context.program.methods) - reached)
    ]


# --------------------------------------------------------------------------- #
# IR003 / IR004 — write-only and read-only fields
# --------------------------------------------------------------------------- #
def _field_accesses(program: Program) -> Tuple[Set[str], Set[str]]:
    """(stored names, loaded names) across every method body.

    Receivers are SSA values whose classes are unknown statically, so the
    match is by field *name*: a store to ``mode`` marks every declared
    field called ``mode`` as stored.  That over-approximation only ever
    silences findings, never invents them.
    """
    stored: Set[str] = set()
    loaded: Set[str] = set()
    for method in program.methods.values():
        for statement in method.iter_statements():
            if isinstance(statement, StoreField):
                stored.add(statement.field_name)
            elif isinstance(statement, LoadField):
                loaded.add(statement.field_name)
    return stored, loaded


def _check_field_usage(context: CheckContext) -> List[Diagnostic]:
    stored, loaded = _field_accesses(context.program)
    diagnostics: List[Diagnostic] = []
    for class_type in sorted(context.program.hierarchy,
                             key=lambda cls: cls.name):
        for field_name, declaration in sorted(class_type.fields.items()):
            qualified = declaration.qualified_name
            if field_name in stored and field_name not in loaded:
                diagnostics.append(Diagnostic(
                    id="IR003", severity=Severity.WARNING,
                    check="field-usage",
                    message=f"field {qualified} is stored but never loaded "
                            f"(write-only)",
                    location=Location(field=qualified)))
            elif field_name in loaded and field_name not in stored:
                diagnostics.append(Diagnostic(
                    id="IR004", severity=Severity.WARNING,
                    check="field-usage",
                    message=f"field {qualified} is loaded but never stored "
                            f"(reads only see null)",
                    location=Location(field=qualified)))
    return diagnostics


# --------------------------------------------------------------------------- #
# IR005 — virtual call sites no instantiable receiver could dispatch
# --------------------------------------------------------------------------- #
def _check_undispatchable_calls(context: CheckContext) -> List[Diagnostic]:
    program = context.program
    hierarchy = program.hierarchy
    instantiable = [cls.name for cls in hierarchy
                    if not cls.is_interface and not cls.is_abstract]
    dispatchable: Dict[str, bool] = {}

    def any_receiver(method_name: str) -> bool:
        cached = dispatchable.get(method_name)
        if cached is None:
            cached = any(
                hierarchy.resolve(class_name, method_name) is not None
                for class_name in instantiable)
            dispatchable[method_name] = cached
        return cached

    diagnostics: List[Diagnostic] = []
    for name, method in sorted(program.methods.items()):
        for invoke in method.iter_invokes():
            if invoke.kind is InvokeKind.STATIC:
                continue
            if not any_receiver(invoke.method_name):
                diagnostics.append(Diagnostic(
                    id="IR005", severity=Severity.WARNING,
                    check="undispatchable-calls",
                    message=f"virtual call to {invoke.method_name!r} in "
                            f"{name}: no instantiable class resolves it",
                    location=Location(method=name)))
    return diagnostics


# --------------------------------------------------------------------------- #
# IR006 — roots (entry points, explicit roots) naming unknown methods
# --------------------------------------------------------------------------- #
def _check_roots(context: CheckContext) -> List[Diagnostic]:
    program = context.program
    named: List[Tuple[str, str]] = [
        (entry, "entry point") for entry in program.entry_points]
    named.extend((root, "analysis root") for root in context.roots)
    seen: Set[str] = set()
    diagnostics: List[Diagnostic] = []
    for name, origin in named:
        if name in seen or program.has_method(name):
            continue
        seen.add(name)
        diagnostics.append(Diagnostic(
            id="IR006", severity=Severity.ERROR, check="roots",
            message=f"{origin} {name!r} names no method of the program",
            location=Location(method=name)))
    return diagnostics


# --------------------------------------------------------------------------- #
# IR007 — non-monotone-risk patterns in a pending edit script
# --------------------------------------------------------------------------- #
def _check_delta_risk(context: CheckContext) -> List[Diagnostic]:
    if context.delta is None:
        return []
    return [
        Diagnostic(
            id="IR007", severity=Severity.WARNING, check="delta-risk",
            message=f"edit script {context.delta.name!r} is non-monotone "
                    f"for this program: {reason}")
        for reason in context.delta.non_monotone_reasons(context.program)
    ]


def _make(name: str, ids: Tuple[str, ...], description: str, fn) -> Check:
    return register_check(Check(name=name, kind="lint", ids=ids,
                                description=description, run=fn))


LINT_CHECKS: Tuple[Check, ...] = (
    _make("dead-blocks", ("IR001",),
          "basic blocks unreachable from their method's entry block",
          _check_dead_blocks),
    _make("dead-methods", ("IR002",),
          "methods unreachable from every root under name-based dispatch",
          _check_dead_methods),
    _make("field-usage", ("IR003", "IR004"),
          "fields that are write-only or read-only across the whole program",
          _check_field_usage),
    _make("undispatchable-calls", ("IR005",),
          "virtual call sites no instantiable receiver type resolves",
          _check_undispatchable_calls),
    _make("roots", ("IR006",),
          "entry points and analysis roots naming unknown methods",
          _check_roots),
    _make("delta-risk", ("IR007",),
          "non-monotone-risk patterns in a pending ProgramDelta",
          _check_delta_risk),
)


def lint_program(program: Program, *, roots: Tuple[str, ...] = (),
                 delta: Optional[object] = None) -> List[Diagnostic]:
    """Run every lint pass over one program (convenience wrapper)."""
    from repro.checks.registry import run_checks

    context = CheckContext(program=program, roots=tuple(roots), delta=delta)
    return run_checks(context, kind="lint")
