"""Post-solve audit passes: machine-checked invariants of analysis artifacts.

The solver's result is trusted by everything downstream — the image
builder, the service layer's warm resumes, the evaluation tables.  These
passes re-verify that trust *statically*, by replaying the solver's own
monotone operations over the final :class:`~repro.core.state.SolverState`
and asserting that nothing changes:

* **AUD001 — residue**: a finished solve leaves no worklist or link-queue
  bits set; pending work means the state is mid-solve, not a fixpoint.
* **AUD002 — stability**: one extra sweep is a no-op.  Every flow's state
  already dominates its transfer output; every enabled flow's state is
  already contained in each unsaturated use target's input; the recorded
  conservative injections (root parameter seeds, stub-callee effects)
  re-play as identity joins.  Joins are checked with the hash-consing
  identity contract — ``x.join(y) is x`` iff ``y`` adds nothing — so the
  sweep costs one pass, no lattice comparisons.
* **AUD003 — enablement**: every enabled non-empty flow has enabled all
  its predicate targets, and enabled flows dominate the states enabling
  grants them (source constants, artificial-on-enable values).
* **AUD004 — link closure**: the call graph is closed.  Every enabled
  invoke flow has linked every callee its receiver states resolve through
  the hierarchy (and its static target, known or stub); linked callees
  are reachable or recorded stubs; reachable methods and built graphs
  agree; enabled field accesses are edge-linked to each receiver type's
  field flow.
* **AUD005 — saturation**: the configured policy's sentinels are honored.
  With saturation off no flow is saturated; otherwise every saturated
  flow's state dominates the policy's current sentinel for it (dominance,
  not equality: declared-type sentinels carry documented residue).
* **AUD006 — snapshot**: the state round-trips through the snapshot codec,
  the restored state accepts the program (fingerprint check) and
  re-audits clean.  With :attr:`CheckContext.snapshot` bytes, those bytes
  are verified instead — the rehydration path, which is how a forged or
  stale snapshot file is caught.
* **AUD007 — warm barrier**: a state stamped with a session generation
  older than the session's warm barrier must not be offered for resume; a
  non-monotone edit happened after it was produced.

The per-flow passes (AUD001–AUD005) share one fused sweep, memoized on
the context: auditing is on the hot path of every analyze/serve/fuzz
request, so the state is walked once, not once per check.  The soundness
argument is the contrapositive of the solver's: the solver stops only
when the worklist drains, and every rule application is one of the
monotone operations replayed here.  If all replays are identity, the
state is a fixpoint of exactly the rules the solver implements; any
corruption — a shrunk value state, a dropped edge, a forged snapshot —
breaks at least one replay.  See ``docs/checks.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.checks.diagnostics import Diagnostic, Location, Severity
from repro.checks.registry import Check, CheckContext, register_check
from repro.core.flows import (
    FilterCompareFlow,
    FilterTypeFlow,
    Flow,
    InvokeFlow,
    LoadFieldFlow,
    ParameterFlow,
    SourceFlow,
    StoreFieldFlow,
)
from repro.core.kernel.saturation import make_saturation_policy
from repro.core.state import SolverState, SolverStateError
from repro.ir.instructions import InvokeKind
from repro.ir.program import Program
from repro.ir.types import INT_TYPE_NAME, NULL_TYPE_NAME, MethodSignature
from repro.ir.values import ConstKind
from repro.lattice.value_state import ValueState

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.results import AnalysisResult


def _location(flow: Flow) -> Location:
    return Location(method=flow.method, flow=flow.uid,
                    flow_kind=type(flow).__name__)


def _diag(id: str, check: str, message: str,
          location: Location = Location()) -> Diagnostic:
    return Diagnostic(id=id, severity=Severity.ERROR, message=message,
                      check=check, location=location)


# --------------------------------------------------------------------------- #
# Mirrors of the solver's conservative-state computations
# --------------------------------------------------------------------------- #
def _conservative_state(program: Program,
                        declared_type: Optional[str]) -> ValueState:
    """Mirror of ``SkipFlowSolver._conservative_state`` (kept in lockstep)."""
    if declared_type is None or declared_type in (INT_TYPE_NAME, "void"):
        return ValueState.any_primitive()
    if declared_type in program.hierarchy:
        types = set(program.hierarchy.instantiable_subtypes(declared_type))
        types.add(NULL_TYPE_NAME)
        return ValueState.of_types(types)
    return ValueState.any_primitive()


def _declared_parameter_type(signature: MethodSignature,
                             flow: ParameterFlow) -> Optional[str]:
    """Mirror of ``SkipFlowSolver._declared_parameter_type``."""
    if flow.declared_type is not None:
        return flow.declared_type
    index = flow.index
    if not signature.is_static:
        if index == 0:
            return signature.declaring_class
        index -= 1
    if 0 <= index < len(signature.param_types):
        return signature.param_types[index]
    return None


def _stub_effect(program: Program, signature: MethodSignature) -> ValueState:
    """Mirror of ``SkipFlowSolver._apply_stub_effects``."""
    if signature.returns_reference:
        return _conservative_state(program, signature.return_type)
    return ValueState.any_primitive()


# --------------------------------------------------------------------------- #
# The fused sweep behind AUD001–AUD005
# --------------------------------------------------------------------------- #
_SWEEP_ATTR = "_audit_sweep_cache"

#: Check names whose findings the fused sweep produces.
_SWEEP_CHECKS = ("residue", "stability", "enablement", "link-closure",
                 "saturation")


def _sweep(context: CheckContext) -> Dict[str, List[Diagnostic]]:
    """One pass over every flow, computing AUD001–AUD005 findings together.

    Memoized on the context object: the registry runs five per-flow checks
    over the same state, and walking a large PVPG five times would blow
    the audit's latency budget (< 10% of the cold solve).
    """
    cached = getattr(context, _SWEEP_ATTR, None)
    if cached is not None:
        return cached
    findings: Dict[str, List[Diagnostic]] = {
        name: [] for name in _SWEEP_CHECKS}
    setattr(context, _SWEEP_ATTR, findings)
    state = context.state
    if state is None:
        return findings
    program = context.program
    hierarchy = program.hierarchy
    config = state.config
    track_primitives = getattr(config, "track_primitives", True)

    # Saturation policy, rebuilt from the state's own configuration.
    policy_bundle = getattr(config, "solver_policy", None)
    policy = None
    if policy_bundle is not None:
        policy = make_saturation_policy(
            policy_bundle.saturation, hierarchy,
            policy_bundle.saturation_threshold,
            program=program, roots=tuple(state.seeded_roots))
        if policy is None and state.saturated_flows != 0:
            findings["saturation"].append(_diag(
                "AUD005", "saturation",
                f"saturated-flow counter is {state.saturated_flows} although "
                f"the configured saturation policy is off"))
        refresh = getattr(policy, "refresh_origins", None)
        if refresh is not None:
            refresh(frozenset(state.reachable),
                    tuple(signature for _, signature in state.stub_links),
                    tuple(state.seeded_roots))

    # Reachability bookkeeping agreement (graphs are built exactly for the
    # methods marked reachable).
    built = set(state.pvpg.methods)
    for name in sorted(state.reachable - built):
        findings["link-closure"].append(_diag(
            "AUD004", "link-closure",
            f"method {name} is marked reachable but has no built graph",
            Location(method=name)))
    for name in sorted(built - state.reachable):
        findings["link-closure"].append(_diag(
            "AUD004", "link-closure",
            f"method {name} has a built graph but is not marked reachable",
            Location(method=name)))

    known = state.reachable | state.stub_methods
    passthrough = Flow.transfer
    # Per-class facts, computed once per flow class instead of once per flow:
    # whether transfer is overridden, and which sweep branch the class takes.
    _OTHER, _INVOKE, _SOURCE, _LOAD, _STORE = range(5)
    class_info: Dict[type, Tuple[bool, int, bool]] = {}
    resolve = hierarchy.resolve
    resolve_cache: Dict[Tuple[str, str], Optional[MethodSignature]] = {}
    # Virtual-call targets are a pure function of (receiver type set, method
    # name), and receiver type sets are shared frozensets whose hashes Python
    # caches — so megamorphic call sites with identical receivers resolve once.
    expected_cache: Dict[Tuple[frozenset, str], Tuple[str, ...]] = {}
    field_cache: Dict[Tuple[str, str], object] = {}
    source_cache: Dict[Tuple[ConstKind, object], ValueState] = {}
    # Filter transfers are pure functions of their (interned, hashable)
    # operand states plus frozen per-flow fields, and guard patterns repeat
    # heavily, so replaying each distinct filter once is enough.  Exact-class
    # checks keep hypothetical subclasses on the uncached generic path.
    transfer_cache: Dict[tuple, ValueState] = {}
    residue = findings["residue"]
    stability = findings["stability"]
    enablement = findings["enablement"]
    link_closure = findings["link-closure"]
    saturation = findings["saturation"]

    for flow in state.pvpg.all_flows():
        cls = type(flow)
        info = class_info.get(cls)
        if info is None:
            if issubclass(cls, InvokeFlow):
                branch = _INVOKE
            elif issubclass(cls, SourceFlow):
                branch = _SOURCE
            elif issubclass(cls, LoadFieldFlow):
                branch = _LOAD
            elif issubclass(cls, StoreFieldFlow):
                branch = _STORE
            else:
                branch = _OTHER
            # ``artificial_on_enable`` is a class attribute (``None``) except
            # for the pred-on/phi-pred constants and the one class carrying
            # it as an instance slot — whose slot descriptor is truthy here,
            # keeping the per-instance read for exactly that class.
            info = (cls.transfer is not passthrough, branch,
                    getattr(cls, "artificial_on_enable", None) is not None)
            class_info[cls] = info
        overridden, branch, may_artificial = info
        is_invoke = branch == _INVOKE
        if flow.in_worklist:
            residue.append(_diag(
                "AUD001", "residue",
                "flow still carries its worklist bit: the state is "
                "mid-solve, not a fixpoint", _location(flow)))
        if is_invoke and flow.in_link_queue:
            residue.append(_diag(
                "AUD001", "residue",
                "invoke flow still queued for linking: the state is "
                "mid-solve, not a fixpoint", _location(flow)))

        flow_state = flow.state
        # The default transfer is the identity on the input state, so flows
        # whose state and input are the same interned object are trivially
        # stable — no call, no join.
        if overridden or flow_state is not flow.input_state:
            if cls is FilterTypeFlow:
                transfer_key = (1, flow.type_name, flow.negated,
                                flow.filtering_enabled, flow.input_state)
            elif cls is FilterCompareFlow:
                observed = flow.observed
                transfer_key = (2, flow.op, flow.filtering_enabled,
                                flow.input_state,
                                None if observed is None else observed.state)
            else:
                transfer_key = None
            if transfer_key is not None:
                output = transfer_cache.get(transfer_key)
                if output is None:
                    output = flow.transfer(hierarchy)
                    transfer_cache[transfer_key] = output
            else:
                output = flow.transfer(hierarchy)
            if flow_state.join(output) is not flow_state:
                stability.append(_diag(
                    "AUD002", "stability",
                    "transfer output is not contained in the flow's state: "
                    "one more recompute would change the result",
                    _location(flow)))

        if flow.saturated and policy is not None:
            sentinel = policy.sentinel_for(flow)
            if flow_state.join(sentinel) is not flow_state:
                saturation.append(_diag(
                    "AUD005", "saturation",
                    f"saturated flow does not dominate the "
                    f"{policy_bundle.saturation!r} sentinel: joins skipped "
                    f"into it may have been lost", _location(flow)))
        elif flow.saturated and policy_bundle is not None:
            saturation.append(_diag(
                "AUD005", "saturation",
                "flow is saturated although the configured saturation "
                "policy is off", _location(flow)))

        if not flow.enabled:
            continue

        # ``not flow_state.is_empty``, inlined: the property costs a call per
        # flow and this is the sweep's hottest line.
        if flow_state._types or flow_state._primitive is not None:
            for target in flow.uses:
                if target.saturated or target.input_state is flow_state:
                    continue
                if target.input_state.join(flow_state) is not target.input_state:
                    stability.append(_diag(
                        "AUD002", "stability",
                        f"state of flow #{flow.uid} is not contained in the "
                        f"input of its use target #{target.uid}: one more "
                        f"delivery would change the result",
                        _location(target)))
            for target in flow.predicate_targets:
                if not target.enabled:
                    enablement.append(_diag(
                        "AUD003", "enablement",
                        f"flow #{flow.uid} is enabled and non-empty but its "
                        f"predicate target #{target.uid} is still disabled",
                        _location(target)))

        if branch == _SOURCE:
            # source_state is a pure function of (expr kind, payload,
            # track_primitives); the cache key mirrors exactly the fields
            # SourceFlow.source_state reads.
            expr = flow.expr
            expr_kind = expr.kind
            if expr_kind is ConstKind.INT:
                source_key = (expr_kind, expr.int_value)
            elif expr_kind is ConstKind.NEW:
                source_key = (expr_kind, expr.type_name)
            else:
                source_key = (expr_kind, None)
            produced = source_cache.get(source_key)
            if produced is None:
                produced = flow.source_state(track_primitives)
                source_cache[source_key] = produced
            if flow_state.join(produced) is not flow_state:
                enablement.append(_diag(
                    "AUD003", "enablement",
                    "enabled source flow does not dominate its produced "
                    "constant", _location(flow)))
        if may_artificial:
            artificial = flow.artificial_on_enable
            if (artificial is not None
                    and flow_state.join(artificial) is not flow_state):
                enablement.append(_diag(
                    "AUD003", "enablement",
                    "enabled flow does not dominate its artificial-on-enable "
                    "state", _location(flow)))

        if is_invoke:
            invoke = flow.invoke
            expected: List[str] = []
            if invoke.kind is InvokeKind.STATIC:
                if invoke.target_class is not None:
                    if invoke.target_class in hierarchy:
                        signature = resolve(invoke.target_class,
                                            invoke.method_name)
                    else:
                        signature = None
                    if signature is not None:
                        expected.append(signature.qualified_name)
                    else:
                        expected.append(
                            f"{invoke.target_class}.{invoke.method_name}")
            elif flow.receiver is not None:
                method_name = invoke.method_name
                receiver_types = flow.receiver.state.reference_types
                cached_expected = expected_cache.get(
                    (receiver_types, method_name))
                if cached_expected is not None:
                    expected.extend(cached_expected)
                else:
                    for type_name in receiver_types:
                        key = (type_name, method_name)
                        if key in resolve_cache:
                            signature = resolve_cache[key]
                        else:
                            signature = resolve(type_name, method_name)
                            resolve_cache[key] = signature
                        if signature is not None:
                            expected.append(signature.qualified_name)
                    expected_cache[(receiver_types, method_name)] = tuple(
                        expected)
            linked = flow.linked_callees
            for callee in expected:
                if callee not in linked:
                    link_closure.append(_diag(
                        "AUD004", "link-closure",
                        f"call edge to {callee} is missing: the receiver "
                        f"state resolves it but the invoke flow never "
                        f"linked it", _location(flow)))
            for callee in sorted(linked):
                if callee not in known:
                    link_closure.append(_diag(
                        "AUD004", "link-closure",
                        f"linked callee {callee} is neither reachable nor "
                        f"a recorded stub", _location(flow)))
        elif branch == _LOAD or branch == _STORE:
            is_load = branch == _LOAD
            field_flows = state.pvpg.field_flows
            field_name = flow.field_name
            for type_name in flow.receiver.state.reference_types:
                key = (type_name, field_name)
                if key in field_cache:
                    declaration = field_cache[key]
                else:
                    declaration = hierarchy.lookup_field(type_name,
                                                         field_name)
                    field_cache[key] = declaration
                if declaration is None:
                    continue
                field_flow = field_flows.get(declaration.qualified_name)
                edge_ok = (field_flow is not None
                           and (field_flow.has_use(flow) if is_load
                                else flow.has_use(field_flow)))
                if not edge_ok:
                    kind = "load" if is_load else "store"
                    link_closure.append(_diag(
                        "AUD004", "link-closure",
                        f"{kind} of {declaration.qualified_name} reached by "
                        f"receiver type {type_name} has no edge to the "
                        f"field flow", _location(flow)))

    # Conservative-injection replay (roots + stub callees) → stability.
    seed_cache: Dict[Optional[str], ValueState] = {}
    for root in state.seeded_roots:
        graph = state.pvpg.method_graph(root)
        if graph is None:
            continue
        signature = graph.method.signature
        for flow in graph.parameter_flows:
            if flow.saturated:
                continue
            declared = _declared_parameter_type(signature, flow)
            seed = seed_cache.get(declared)
            if seed is None:
                seed = _conservative_state(program, declared)
                seed_cache[declared] = seed
            if flow.input_state.join(seed) is not flow.input_state:
                stability.append(_diag(
                    "AUD002", "stability",
                    f"root {root} parameter seed is not contained in the "
                    f"parameter's input: re-seeding would change the result",
                    _location(flow)))
    for invoke_flow, signature in state.stub_links:
        if invoke_flow.saturated:
            continue
        effect = _stub_effect(program, signature)
        if invoke_flow.input_state.join(effect) is not invoke_flow.input_state:
            stability.append(_diag(
                "AUD002", "stability",
                f"conservative effect of stub callee "
                f"{signature.qualified_name} is not contained in the invoke "
                f"flow's input: re-playing it would change the result",
                _location(invoke_flow)))
    return findings


def _sweep_check(name: str):
    def run(context: CheckContext) -> List[Diagnostic]:
        return list(_sweep(context)[name])
    return run


# --------------------------------------------------------------------------- #
# AUD006 — snapshot integrity
# --------------------------------------------------------------------------- #
def _check_snapshot(context: CheckContext) -> List[Diagnostic]:
    state = context.state
    if state is None and context.snapshot is None:
        return []
    program = context.program
    try:
        blob = context.snapshot
        if blob is None:
            assert state is not None
            blob = state.to_bytes(program)
        restored = SolverState.from_bytes(blob)
        restored.validate_resume(program)
    except SolverStateError as error:
        return [_diag(
            "AUD006", "snapshot",
            f"snapshot does not restore cleanly against this program: "
            f"{error}")]
    if state is not None and context.snapshot is None:
        if restored.counters() != state.counters():
            return [_diag(
                "AUD006", "snapshot",
                f"snapshot round-trip changed the effort counters: "
                f"{state.counters()} became {restored.counters()}")]
        if (restored.reachable != state.reachable
                or restored.stub_methods != state.stub_methods):
            return [_diag(
                "AUD006", "snapshot",
                "snapshot round-trip changed the reachable or stub sets")]
    inner_context = CheckContext(program=program, state=restored)
    inner = [finding for name in _SWEEP_CHECKS
             for finding in _sweep(inner_context)[name]]
    return [_diag(
        "AUD006", "snapshot",
        f"restored snapshot does not re-audit clean: {finding.id} "
        f"{finding.message}", finding.location)
        for finding in inner]


# --------------------------------------------------------------------------- #
# AUD007 — warm-barrier monotonicity
# --------------------------------------------------------------------------- #
def _check_warm_barrier(context: CheckContext) -> List[Diagnostic]:
    state = context.state
    if state is None or context.warm_barrier <= 0:
        return []
    generation = getattr(state, "session_generation", None)
    if generation is not None and generation < context.warm_barrier:
        return [_diag(
            "AUD007", "warm-barrier",
            f"state was produced at session generation {generation}, before "
            f"the warm barrier at generation {context.warm_barrier}: a "
            f"non-monotone edit happened since, so resuming it would be "
            f"unsound")]
    return []


def _make(name: str, ids: Tuple[str, ...], description: str, fn) -> Check:
    return register_check(Check(name=name, kind="audit", ids=ids,
                                description=description, run=fn))


AUDIT_CHECKS: Tuple[Check, ...] = (
    _make("residue", ("AUD001",),
          "no worklist or link-queue bits survive a finished solve",
          _sweep_check("residue")),
    _make("stability", ("AUD002",),
          "one extra solver sweep (transfers, deliveries, injections) is a "
          "no-op", _sweep_check("stability")),
    _make("enablement", ("AUD003",),
          "predicate targets of non-empty flows are enabled; enabled flows "
          "dominate their enabling states", _sweep_check("enablement")),
    _make("link-closure", ("AUD004",),
          "call and field edges are closed under receiver states and the "
          "hierarchy", _sweep_check("link-closure")),
    _make("saturation", ("AUD005",),
          "saturated flows dominate the configured policy's sentinels",
          _sweep_check("saturation")),
    _make("snapshot", ("AUD006",),
          "the state survives the snapshot codec and re-audits clean",
          _check_snapshot),
    _make("warm-barrier", ("AUD007",),
          "resumable states do not predate the session's warm barrier",
          _check_warm_barrier),
)


# --------------------------------------------------------------------------- #
# Convenience wrappers
# --------------------------------------------------------------------------- #
def audit_state(state: SolverState, program: Program, *,
                warm_barrier: int = 0,
                snapshot: bool = True) -> List[Diagnostic]:
    """Run the audit passes over one solver state.

    ``snapshot=False`` skips the codec round-trip (``AUD006``) — the other
    passes are one fused sweep over the live state, which is what latency-
    sensitive callers (the fuzz oracle's per-combo hook, audit-on-analyze)
    want.
    """
    from repro.checks.registry import run_checks

    names = [check.name for check in AUDIT_CHECKS
             if snapshot or check.name != "snapshot"]
    return run_checks(
        CheckContext(program=program, state=state, warm_barrier=warm_barrier),
        names=names)


def audit_result(result: "AnalysisResult", *,
                 warm_barrier: int = 0,
                 snapshot: bool = True) -> List[Diagnostic]:
    """Run the audit passes over an engine analysis result.

    Results without a solver state (the CHA/RTA call-graph baselines have
    none) audit trivially clean: the audits verify *solver* artifacts, and
    there is no solver artifact to verify.
    """
    state = getattr(result, "solver_state", None)
    if state is None:
        return []
    return audit_state(state, result.program, warm_barrier=warm_barrier,
                       snapshot=snapshot)


def audit_snapshot(blob: bytes, program: Program) -> List[Diagnostic]:
    """Verify serialized snapshot bytes against a program (rehydration path)."""
    from repro.checks.registry import run_checks

    return run_checks(CheckContext(program=program, snapshot=blob),
                      names=("snapshot",))
