"""SkipFlow reproduction: predicated, primitive-aware points-to analysis.

This package reproduces the system described in "SkipFlow: Improving the
Precision of Points-to Analysis using Primitive Values and Predicate Edges"
(CGO 2025): an interprocedural points-to analysis that tracks both objects
(by type) and primitive constants, and that uses *predicate edges* to prune
branches whose conditions can never hold.

Typical usage — the session API runs any registered analysis by name and
compares several in one call::

    from repro import AnalysisSession

    session = AnalysisSession.from_source(JAVA_LIKE_SOURCE)
    skipflow = session.run("skipflow")
    ladder = session.compare(["cha", "rta", "pta", "skipflow"])
    print(skipflow.reachable_method_count, ladder.reachable_counts())

The lower-level configuration API remains available (and is what the
session's engine-backed analyzers run)::

    from repro import AnalysisConfig, SkipFlowAnalysis
    from repro.lang import compile_source

    program = compile_source(JAVA_LIKE_SOURCE, entry_points=["Main.main"])
    skipflow = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
"""

from repro.api import (
    AnalysisReport,
    AnalysisSession,
    NoEntryPointError,
    SessionComparison,
    available_analyzers,
    get_analyzer,
    register_analyzer,
)
from repro.core.analysis import (
    AnalysisConfig,
    SkipFlowAnalysis,
    run_baseline,
    run_skipflow,
)
from repro.core.results import AnalysisResult
from repro.ir.builder import MethodBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.ir.types import TypeHierarchy
from repro.lattice.value_state import ValueState

__version__ = "1.1.0"

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "AnalysisResult",
    "AnalysisSession",
    "MethodBuilder",
    "NoEntryPointError",
    "Program",
    "ProgramBuilder",
    "SessionComparison",
    "SkipFlowAnalysis",
    "TypeHierarchy",
    "ValueState",
    "available_analyzers",
    "get_analyzer",
    "register_analyzer",
    "run_baseline",
    "run_skipflow",
    "__version__",
]
