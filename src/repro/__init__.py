"""SkipFlow reproduction: predicated, primitive-aware points-to analysis.

This package reproduces the system described in "SkipFlow: Improving the
Precision of Points-to Analysis using Primitive Values and Predicate Edges"
(CGO 2025): an interprocedural points-to analysis that tracks both objects
(by type) and primitive constants, and that uses *predicate edges* to prune
branches whose conditions can never hold.

Typical usage — the session API runs any registered analysis by name and
compares several in one call::

    from repro import AnalysisSession

    session = AnalysisSession.from_source(JAVA_LIKE_SOURCE)
    skipflow = session.run("skipflow")
    ladder = session.compare(["cha", "rta", "pta", "skipflow"])
    print(skipflow.reachable_method_count, ladder.reachable_counts())

The lower-level configuration API remains available (and is what the
session's engine-backed analyzers run)::

    from repro import AnalysisConfig, SkipFlowAnalysis
    from repro.lang import compile_source

    program = compile_source(JAVA_LIKE_SOURCE, entry_points=["Main.main"])
    skipflow = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
"""

import warnings

from repro.api import (
    AnalysisReport,
    AnalysisSession,
    NoEntryPointError,
    SessionComparison,
    available_analyzers,
    get_analyzer,
    register_analyzer,
)
from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.results import AnalysisResult
from repro.ir.builder import MethodBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.ir.types import TypeHierarchy
from repro.lattice.value_state import ValueState

__version__ = "1.2.0"

#: Deprecated top-level re-exports, kept as import-time shims.  Accessing
#: ``repro.run_skipflow`` / ``repro.run_baseline`` / ``repro.run_pta`` warns
#: once per call site and forwards to the original function; new code should
#: run analyses by name through :mod:`repro.api` instead.
_DEPRECATED_RUNNERS = {
    "run_skipflow": ("repro.core.analysis", 'AnalysisSession.run("skipflow")'),
    "run_baseline": ("repro.core.analysis", 'AnalysisSession.run("pta")'),
    "run_pta": ("repro.baselines.pta", 'AnalysisSession.run("pta")'),
}


def __getattr__(name: str):
    try:
        module_name, replacement = _DEPRECATED_RUNNERS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    warnings.warn(
        f"repro.{name} is deprecated; use the repro.api session API instead "
        f"({replacement} — see docs/api.md for the migration table)",
        DeprecationWarning, stacklevel=2)
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "AnalysisResult",
    "AnalysisSession",
    "MethodBuilder",
    "NoEntryPointError",
    "Program",
    "ProgramBuilder",
    "SessionComparison",
    "SkipFlowAnalysis",
    "TypeHierarchy",
    "ValueState",
    "available_analyzers",
    "get_analyzer",
    "register_analyzer",
    "run_baseline",
    "run_pta",
    "run_skipflow",
    "__version__",
]
