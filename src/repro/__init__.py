"""SkipFlow reproduction: predicated, primitive-aware points-to analysis.

This package reproduces the system described in "SkipFlow: Improving the
Precision of Points-to Analysis using Primitive Values and Predicate Edges"
(CGO 2025): an interprocedural points-to analysis that tracks both objects
(by type) and primitive constants, and that uses *predicate edges* to prune
branches whose conditions can never hold.

Typical usage::

    from repro import AnalysisConfig, SkipFlowAnalysis
    from repro.lang import compile_source

    program = compile_source(JAVA_LIKE_SOURCE, entry_points=["Main.main"])
    skipflow = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
    baseline = SkipFlowAnalysis(program, AnalysisConfig.baseline_pta()).run()
    print(skipflow.reachable_method_count, baseline.reachable_method_count)
"""

from repro.core.analysis import (
    AnalysisConfig,
    SkipFlowAnalysis,
    run_baseline,
    run_skipflow,
)
from repro.core.results import AnalysisResult
from repro.ir.builder import MethodBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.ir.types import TypeHierarchy
from repro.lattice.value_state import ValueState

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "MethodBuilder",
    "Program",
    "ProgramBuilder",
    "SkipFlowAnalysis",
    "TypeHierarchy",
    "ValueState",
    "run_baseline",
    "run_skipflow",
    "__version__",
]
