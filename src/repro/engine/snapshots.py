"""On-disk store of solver-state snapshots for warm re-analysis.

The third persistence layer of the engine, next to the result cache (JSON
payloads per configuration half) and the program store (pickled IR per
spec): a :class:`SnapshotStore` keeps the serialized
:class:`~repro.core.state.SolverState` of a solved (spec, configuration)
pair, so a later process can *resume* the fixpoint after a monotone program
edit instead of re-deriving it — the warm path of
``benchmarks/run_incremental_study.py`` and the CI incremental phase.

Keying mirrors the result cache exactly, because a snapshot is valid under
exactly the same circumstances as the result it accompanies::

    key = sha256("state/" + spec_hash / config_hash / code_version)

``spec`` is any dataclass :func:`~repro.engine.cache.hash_dataclass` can
digest — a plain :class:`~repro.workloads.generator.BenchmarkSpec` for base
programs, or an :class:`~repro.workloads.edits.EditScriptSpec` prefix for a
program-plus-edits state, which is how every step of an edit sequence gets
its own addressable snapshot.  Entries are versioned twice over: the
snapshot payload itself carries ``SNAPSHOT_VERSION`` (refused on mismatch by
:meth:`SolverState.from_bytes`), and filenames carry the code-version prefix
so :meth:`SnapshotStore.gc` — wired into ``repro bench --gc`` — can drop
snapshots written by other code versions without deserializing anything.
Writes are atomic (temp file + rename) and unreadable or mismatched blobs
are misses, matching the crash-safety story of the sibling stores.

Snapshots are *self-validating* on top of the keying: :meth:`store` stamps
the program fingerprint into the state, so even a snapshot loaded against
the wrong (non-monotone) program refuses to resume at solve time rather
than producing a stale fixpoint.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional

from repro.core.state import SolverState, SolverStateError
from repro.engine.cache import compute_code_version, hash_dataclass
from repro.ir.program import Program

_KEY_ABBREV = 32


class SnapshotStore:
    """A directory of solver-state snapshots, one per (spec, config) pair.

    ``hits`` counts successful :meth:`load` calls and ``misses`` the
    missing/corrupt ones, mirroring the result cache's counters so smoke
    tests can assert "the second run resumed from the stored snapshot".
    """

    def __init__(self, directory, code_version: Optional[str] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version or compute_code_version()
        self.hits = 0
        self.misses = 0
        #: Bytes reclaimed by the most recent :meth:`gc` / :meth:`clear`
        #: (``repro bench --gc`` reports it).
        self.last_gc_bytes = 0

    # ------------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------------ #
    def key(self, spec, config) -> str:
        """The snapshot key for one (spec, configuration) solver state."""
        text = "/".join((
            hash_dataclass(spec),
            hash_dataclass(config),
            self.code_version,
        ))
        return hashlib.sha256(
            ("state/" + text).encode("utf-8")).hexdigest()[:_KEY_ABBREV]

    def path_for(self, spec, config) -> Path:
        # The code-version filename prefix mirrors the result cache and the
        # program store: gc() can spot foreign-version snapshots by name.
        return self.directory / f"{self.code_version}-{self.key(spec, config)}.state"

    # ------------------------------------------------------------------ #
    # Blobs
    # ------------------------------------------------------------------ #
    def contains(self, spec, config) -> bool:
        """Whether a snapshot exists, without touching the hit/miss counters."""
        return self.path_for(spec, config).is_file()

    def load(self, spec, config) -> Optional[SolverState]:
        """The stored state, or ``None`` on a missing/corrupt/stale blob."""
        try:
            blob = self.path_for(spec, config).read_bytes()
            state = SolverState.from_bytes(blob)
        except (OSError, SolverStateError):
            self.misses += 1
            return None
        self.hits += 1
        return state

    def store(self, spec, config, state: SolverState,
              program: Optional[Program] = None) -> None:
        """Atomically persist ``state``; with ``program``, stamp the snapshot.

        Stamping records the program's fingerprint inside the serialized
        snapshot (the live ``state`` is untouched), so any later resume
        against a non-monotone program fails loudly at solve time even if
        the cache keying were somehow bypassed.
        """
        target = self.path_for(spec, config)
        temp = target.with_name(target.name + f".tmp{os.getpid()}")
        temp.write_bytes(state.to_bytes(program))
        os.replace(temp, target)

    def clear(self) -> int:
        """Delete every snapshot; returns the number of files removed.

        ``last_gc_bytes`` records how many bytes the deletions reclaimed.
        """
        removed = 0
        freed = 0
        for path in self.directory.glob("*.state"):
            freed += self._size_of(path)
            path.unlink()
            removed += 1
        self.last_gc_bytes = freed
        return removed

    def gc(self) -> int:
        """Drop snapshots written by other code versions; returns files removed.

        Mirrors :meth:`repro.engine.cache.ResultCache.gc`: filenames are
        prefixed with the code version that wrote them, so mismatched blobs
        are stale by construction, as are ``.tmp`` files orphaned by
        crashed writers of other versions.  ``last_gc_bytes`` records the
        bytes reclaimed.
        """
        prefix = f"{self.code_version}-"
        removed = 0
        freed = 0
        for pattern in ("*.state", "*.state.tmp*"):
            for path in self.directory.glob(pattern):
                if not path.name.startswith(prefix):
                    freed += self._size_of(path)
                    path.unlink()
                    removed += 1
        self.last_gc_bytes = freed
        return removed

    @staticmethod
    def _size_of(path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0
