"""Cost-aware ordering of benchmark specs for the process pool.

Solve time grows superlinearly with program size (more methods mean more
flows *and* larger type sets per flow), so submitting specs to the pool in
arbitrary order can leave one worker grinding through the largest benchmark
long after the others went idle.  Submitting largest-first — the classic
longest-processing-time heuristic — keeps the tail short without needing
real runtime measurements.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.generator import BenchmarkSpec

#: Exponent of the size-to-cost model.  Slightly superlinear matches the
#: observed scaling of the solver on the synthetic suites; the exact value
#: only matters for tie-breaking between similarly sized specs.
_COST_EXPONENT = 1.2


def estimated_cost(spec: BenchmarkSpec) -> float:
    """A unitless solve-cost estimate for one spec (higher = slower)."""
    return float(spec.expected_total_methods) ** _COST_EXPONENT


def order_by_cost(specs: Sequence[BenchmarkSpec]) -> List[int]:
    """Indices into ``specs``, most expensive first (stable for equal costs)."""
    return sorted(range(len(specs)), key=lambda i: (-estimated_cost(specs[i]), i))
