"""Shared read-only store of built benchmark IR.

Generating a benchmark program from its :class:`~repro.workloads.generator.
BenchmarkSpec` is deterministic but not free: every worker process used to
rebuild (and re-lower) the same IR from scratch, once per configuration it
analyzed.  The :class:`ProgramStore` removes that cost by pickling the built
:class:`~repro.ir.program.Program` into the cache directory the first time a
spec is seen; every later solve — another configuration of the same spec, a
worker in another process, or a whole later run — unpickles the blob instead.

Blobs are written *before* any analysis runs over the program, so the stored
IR is pristine; unpickling hands every solve its own fresh object graph, which
preserves the engine's isolation guarantee (two configurations never share a
mutable program).  Analysis results obtained from an unpickled program are
bit-identical to results from a freshly generated one (covered by
``tests/engine/test_program_store.py``).

Store entries are keyed by ``(spec hash, code version)`` — the same
``code_version`` used by :class:`~repro.engine.cache.ResultCache` — so any
change to the generator or the IR invalidates every blob.  Writes are atomic
(temp file + rename) and unreadable blobs are treated as misses, mirroring the
result cache's crash-safety story.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Optional, Tuple

from repro.engine.cache import compute_code_version, hash_dataclass
from repro.ir.program import Program
from repro.workloads.generator import BenchmarkSpec, generate_benchmark

_KEY_ABBREV = 32


class ProgramStore:
    """A directory of pickled benchmark programs, one blob per spec.

    ``hits`` counts blob loads and ``misses`` counts generate-and-store
    fallbacks; both are in-process counters (workers on a pool keep their
    own), so tests that assert on them should run the engine serially or use
    the per-payload ``program_from_store`` flag instead.
    """

    def __init__(self, directory, code_version: Optional[str] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version or compute_code_version()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------------ #
    def key(self, spec: BenchmarkSpec) -> str:
        """The store key for one spec (spec hash + code version)."""
        text = f"program/{hash_dataclass(spec)}/{self.code_version}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_KEY_ABBREV]

    def path_for(self, spec: BenchmarkSpec) -> Path:
        # The code-version prefix mirrors the result cache's filename scheme:
        # it lets gc() spot blobs from other code versions without having to
        # unpickle anything (the key itself is an opaque hash).
        return self.directory / f"{self.code_version}-{self.key(spec)}.pickle"

    # ------------------------------------------------------------------ #
    # Blobs
    # ------------------------------------------------------------------ #
    def contains(self, spec: BenchmarkSpec) -> bool:
        """Whether a blob exists, without touching the hit/miss counters."""
        return self.path_for(spec).is_file()

    def load(self, spec: BenchmarkSpec) -> Optional[Program]:
        """Unpickle the stored program, or ``None`` on a missing/corrupt blob."""
        try:
            blob = self.path_for(spec).read_bytes()
            return pickle.loads(blob)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, KeyError, TypeError, ValueError):
            # pickle.loads raises a wide range of exceptions on truncated or
            # corrupt input (e.g. plain ValueError for an unknown protocol).
            return None

    def store(self, spec: BenchmarkSpec, program: Program) -> None:
        """Atomically pickle ``program`` as the blob for ``spec``."""
        target = self.path_for(spec)
        temp = target.with_name(target.name + f".tmp{os.getpid()}")
        temp.write_bytes(pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(temp, target)

    def load_or_build(self, spec: BenchmarkSpec) -> Tuple[Program, bool]:
        """The program for ``spec`` plus whether it came from the store.

        On a miss the program is generated, stored (pre-analysis, so the blob
        stays pristine), and returned; the build itself then runs on the
        freshly generated object, while every later solve of the same spec
        gets its own unpickled copy.
        """
        program = self.load(spec)
        if program is not None:
            self.hits += 1
            return program, True
        self.misses += 1
        program = generate_benchmark(spec)
        self.store(spec, program)
        return program, False

    def clear(self) -> int:
        """Delete every blob; returns the number of files removed."""
        removed = 0
        for path in self.directory.glob("*.pickle"):
            path.unlink()
            removed += 1
        return removed

    def gc(self) -> int:
        """Drop blobs written by other code versions; returns files removed.

        Mirrors :meth:`repro.engine.cache.ResultCache.gc`: blob filenames are
        prefixed with the code version that wrote them, so mismatched (and
        pre-versioning flat-named) blobs are stale by construction, as are
        ``.tmp`` files orphaned by crashed writers of other versions.
        """
        prefix = f"{self.code_version}-"
        removed = 0
        for pattern in ("*.pickle", "*.pickle.tmp*"):
            for path in self.directory.glob(pattern):
                if not path.name.startswith(prefix):
                    path.unlink()
                    removed += 1
        return removed
