"""Shared read-only store of built benchmark IR.

Generating a benchmark program from its :class:`~repro.workloads.generator.
BenchmarkSpec` is deterministic but not free: every worker process used to
rebuild (and re-lower) the same IR from scratch, once per configuration it
analyzed.  The :class:`ProgramStore` removes that cost by pickling the built
:class:`~repro.ir.program.Program` into the cache directory the first time a
spec is seen; every later solve — another configuration of the same spec, a
worker in another process, or a whole later run — unpickles the blob instead.

Blobs are written *before* any analysis runs over the program, so the stored
IR is pristine; unpickling hands every solve its own fresh object graph, which
preserves the engine's isolation guarantee (two configurations never share a
mutable program).  Analysis results obtained from an unpickled program are
bit-identical to results from a freshly generated one (covered by
``tests/engine/test_program_store.py``).

Next to every pickle the store also writes the program's **arena blob** — the
flat struct-of-arrays encoding of :mod:`repro.ir.arena`.  :meth:`ProgramStore.
attach` maps that blob read-only (``mmap``) and hands back an
:class:`~repro.ir.arena.ArenaProgram` with *zero* per-worker decode: no
unpickling, no object graph, method bodies materialize lazily if anything
asks.  The arena kernel solves straight on the mapped buffer, which is what
eliminates the worker warm-up that unpickling used to cost;
:meth:`ProgramStore.attach_or_build` is the worker-facing entry
(:func:`repro.engine.runner._program_for` uses it for arena-kernel configs).

Store entries are keyed by ``(spec hash, code version)`` — the same
``code_version`` used by :class:`~repro.engine.cache.ResultCache` — so any
change to the generator or the IR invalidates every blob.  Writes are atomic
(temp file + rename) and unreadable blobs are treated as misses, mirroring the
result cache's crash-safety story.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import pickle
import struct
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.engine.cache import compute_code_version, hash_dataclass
from repro.ir.arena import ArenaFormatError, ArenaProgram, freeze, open_program
from repro.ir.program import Program
from repro.workloads.generator import BenchmarkSpec, generate_benchmark

_KEY_ABBREV = 32


class ProgramStore:
    """A directory of pickled benchmark programs, one blob per spec.

    ``hits`` counts blob loads and ``misses`` counts generate-and-store
    fallbacks; both are in-process counters (workers on a pool keep their
    own), so tests that assert on them should run the engine serially or use
    the per-payload ``program_from_store`` flag instead.
    """

    def __init__(self, directory, code_version: Optional[str] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version or compute_code_version()
        self.hits = 0
        self.misses = 0
        #: Bytes reclaimed by the most recent :meth:`gc` / :meth:`clear`
        #: (``repro bench --gc`` reports it).
        self.last_gc_bytes = 0

    # ------------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------------ #
    def key(self, spec: BenchmarkSpec) -> str:
        """The store key for one spec (spec hash + code version)."""
        text = f"program/{hash_dataclass(spec)}/{self.code_version}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_KEY_ABBREV]

    def path_for(self, spec: BenchmarkSpec) -> Path:
        # The code-version prefix mirrors the result cache's filename scheme:
        # it lets gc() spot blobs from other code versions without having to
        # unpickle anything (the key itself is an opaque hash).
        return self.directory / f"{self.code_version}-{self.key(spec)}.pickle"

    def arena_path_for(self, spec: BenchmarkSpec) -> Path:
        """The sibling arena blob of :meth:`path_for` (same key, ``.arena``)."""
        return self.directory / f"{self.code_version}-{self.key(spec)}.arena"

    # ------------------------------------------------------------------ #
    # Blobs
    # ------------------------------------------------------------------ #
    def contains(self, spec: BenchmarkSpec) -> bool:
        """Whether a blob exists, without touching the hit/miss counters."""
        return self.path_for(spec).is_file()

    def has_arena(self, spec: BenchmarkSpec) -> bool:
        """Whether the sibling ``.arena`` buffer exists for this spec.

        Pickles written before the arena encoding (or with arena writing
        disabled) have no sibling; ``repro bench`` surfaces these backfill
        gaps so a store can be migrated deliberately instead of silently
        falling back to the object kernel's unpickle path.
        """
        return self.arena_path_for(spec).is_file()

    def load(self, spec: BenchmarkSpec) -> Optional[Program]:
        """Unpickle the stored program, or ``None`` on a missing/corrupt blob."""
        try:
            blob = self.path_for(spec).read_bytes()
            return pickle.loads(blob)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, KeyError, TypeError, ValueError):
            # pickle.loads raises a wide range of exceptions on truncated or
            # corrupt input (e.g. plain ValueError for an unknown protocol).
            return None

    def store(self, spec: BenchmarkSpec, program: Program) -> None:
        """Atomically persist ``program`` for ``spec``: pickle plus arena blob.

        The two writes are individually atomic but not joint — a crash can
        leave one without the other; both read paths treat a missing sibling
        as an ordinary miss (:meth:`attach_or_build` backfills the arena).

        An already-attached :class:`~repro.ir.arena.ArenaProgram` is written
        back as its own buffer only (no pickle: an mmap-backed program does
        not pickle, and re-serializing the buffer is exact and free).
        """
        if isinstance(program, ArenaProgram):
            self._write_atomic(self.arena_path_for(spec),
                               program.arena.to_bytes())
            return
        self._write_atomic(self.path_for(spec),
                           pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL))
        self._write_atomic(self.arena_path_for(spec), freeze(program))

    def _write_atomic(self, target: Path, blob: bytes) -> None:
        temp = target.with_name(target.name + f".tmp{os.getpid()}")
        temp.write_bytes(blob)
        os.replace(temp, target)

    # ------------------------------------------------------------------ #
    # Arena attach (the zero-decode worker path)
    # ------------------------------------------------------------------ #
    def attach(self, spec: BenchmarkSpec) -> Optional[ArenaProgram]:
        """Map the arena blob read-only and attach it; ``None`` on a miss.

        The returned :class:`~repro.ir.arena.ArenaProgram` reads straight
        from the page cache — nothing is decoded up front, and several
        worker processes attaching the same blob share its physical pages.
        Corrupt or truncated blobs (bad magic, foreign format version, short
        sections) are misses, like an unreadable pickle.
        """
        try:
            with open(self.arena_path_for(spec), "rb") as handle:
                buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            return open_program(buffer)
        except (OSError, ArenaFormatError, struct.error, ValueError,
                IndexError, KeyError):
            # mmap raises ValueError on an empty file; a truncated buffer
            # surfaces as struct/index errors while binding the sections.
            return None

    def attach_or_build(self, spec: BenchmarkSpec) -> Tuple[Union[Program, ArenaProgram], bool]:
        """The program for ``spec`` as an attached arena whenever possible.

        Priority: attach the arena blob (zero decode); otherwise fall back
        to :meth:`load_or_build` and backfill the missing arena blob from
        the loaded program (store directories written before arena blobs
        existed heal on first touch), re-attaching if the backfill
        succeeded.  The boolean matches :meth:`load_or_build`: whether
        program *generation* was skipped.
        """
        attached = self.attach(spec)
        if attached is not None:
            self.hits += 1
            return attached, True
        program, from_store = self.load_or_build(spec)
        if not self.arena_path_for(spec).is_file():
            self._write_atomic(self.arena_path_for(spec), freeze(program))
        attached = self.attach(spec)
        if attached is not None:
            return attached, from_store
        return program, from_store

    def load_or_build(self, spec: BenchmarkSpec) -> Tuple[Program, bool]:
        """The program for ``spec`` plus whether it came from the store.

        On a miss the program is generated, stored (pre-analysis, so the blob
        stays pristine), and returned; the build itself then runs on the
        freshly generated object, while every later solve of the same spec
        gets its own unpickled copy.
        """
        program = self.load(spec)
        if program is not None:
            self.hits += 1
            return program, True
        self.misses += 1
        program = generate_benchmark(spec)
        self.store(spec, program)
        return program, False

    def clear(self) -> int:
        """Delete every blob (pickles and arenas); returns files removed.

        ``last_gc_bytes`` records how many bytes the deletions reclaimed.
        """
        removed = 0
        freed = 0
        for pattern in ("*.pickle", "*.arena"):
            for path in self.directory.glob(pattern):
                freed += self._size_of(path)
                path.unlink()
                removed += 1
        self.last_gc_bytes = freed
        return removed

    def gc(self) -> int:
        """Drop blobs written by other code versions; returns files removed.

        Mirrors :meth:`repro.engine.cache.ResultCache.gc`: blob filenames are
        prefixed with the code version that wrote them, so mismatched (and
        pre-versioning flat-named) blobs are stale by construction, as are
        ``.tmp`` files orphaned by crashed writers of other versions.  Arena
        blobs are collected by the same rule — an orphaned arena (foreign
        code version, or a ``.tmp`` from a crashed freeze) can never be
        attached again.  ``last_gc_bytes`` records the bytes reclaimed.
        """
        prefix = f"{self.code_version}-"
        removed = 0
        freed = 0
        for pattern in ("*.pickle", "*.pickle.tmp*", "*.arena", "*.arena.tmp*"):
            for path in self.directory.glob(pattern):
                if not path.name.startswith(prefix):
                    freed += self._size_of(path)
                    path.unlink()
                    removed += 1
        self.last_gc_bytes = freed
        return removed

    @staticmethod
    def _size_of(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0
