"""Parallel benchmark runner producing per-configuration, cacheable results.

The runner's unit of work is one *half* of a comparison: a single
:class:`~repro.workloads.generator.BenchmarkSpec` analyzed under a single
:class:`~repro.core.analysis.AnalysisConfig`.  A worker (possibly in another
process) solves one half and returns a plain JSON-serializable *payload*; the
parent composes N halves — freshly computed or loaded independently from
the :class:`~repro.engine.cache.ResultCache` — into result rows.

:func:`run_config_matrix` is the general driver: it takes a *list of named
configurations* and produces one :class:`MatrixRow` per spec with one
:class:`ConfigRunView` column per configuration, enabling arbitrary N-way
comparisons (e.g. PTA vs SkipFlow vs SkipFlow+saturation).
:func:`run_specs` is the two-column specialization that the Table 1 /
Figure 9 drivers use; it composes the matrix columns into a
:class:`ComparisonResult` that mirrors the read API of
:class:`~repro.reporting.records.BenchmarkComparison`, so the existing
formatters work on either unchanged.

Caching halves instead of whole comparisons is what makes ablation sweeps
and N-way matrices cheap: five runs that vary only the SkipFlow
configuration (say, saturation thresholds 2/4/8/16/off) share one cached
baseline half per spec, so the unsaturated baseline is analyzed exactly
once, and an N-way matrix reuses every half any previous run cached.
Halves also multiply the available parallelism — the N configuration solves
of the same spec run on different pool workers.

Workers obtain their program from the shared
:class:`~repro.engine.program_store.ProgramStore` when one is available
(derived automatically from the result cache directory): the first solve of a
spec pickles the built IR, every later solve — including the other half of
the same comparison — unpickles it instead of regenerating and re-lowering
the program.  Halves solved under the **arena kernel** skip even the
unpickle: the store's sibling ``.arena`` blob is mapped read-only and
attached as an :class:`~repro.ir.arena.ArenaProgram` with zero per-worker
decode, and the kernel propagates directly on the mapped buffer.  On top of
the store, each worker *process* memoizes the
unpickled programs it has already loaded (:func:`_program_for`), so an
N-configuration matrix over one spec deserializes the IR once per process,
not once per half — safe because the analysis treats programs as read-only
(the solver builds its PVPG beside the IR, never into it) and the engine
never applies reflection mutations.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import AnalysisConfig
from repro.engine.cache import ResultCache
from repro.engine.program_store import ProgramStore
from repro.engine.scheduler import order_by_cost
from repro.image.builder import ImageBuildReport, NativeImageBuilder
from repro.ir.program import Program
from repro.reporting.records import METRIC_NAMES
from repro.workloads.generator import BenchmarkSpec, generate_benchmark

#: Payload schema version; bump when the payload layout changes so stale
#: cache entries (same code version would normally prevent this, but cache
#: directories can outlive wheels) are treated as misses.  Version 2 switched
#: from whole-comparison payloads to per-configuration halves.
PAYLOAD_VERSION = 2



@dataclass(frozen=True)
class MetricsView:
    """The counter metrics of one configuration, detached from the solver."""

    reachable_methods: int
    type_checks: int
    null_checks: int
    primitive_checks: int
    poly_calls: int


@dataclass(frozen=True)
class ReportView:
    """The serializable slice of an ``ImageBuildReport`` the reporting uses."""

    configuration: str
    metrics: MetricsView
    binary_size_bytes: int
    analysis_time_seconds: float
    total_time_seconds: float
    solver_steps: int
    solver_joins: int
    solver_transfers: int
    saturated_flows: int

    @property
    def reachable_methods(self) -> int:
        return self.metrics.reachable_methods

    @property
    def binary_size_megabytes(self) -> float:
        return self.binary_size_bytes / 1_000_000.0


def _metric_value(report: ReportView, metric: str) -> float:
    if metric == "analysis_time":
        return report.analysis_time_seconds
    if metric == "total_time":
        return report.total_time_seconds
    if metric == "reachable_methods":
        return float(report.metrics.reachable_methods)
    if metric == "type_checks":
        return float(report.metrics.type_checks)
    if metric == "null_checks":
        return float(report.metrics.null_checks)
    if metric == "prim_checks":
        return float(report.metrics.primitive_checks)
    if metric == "poly_calls":
        return float(report.metrics.poly_calls)
    if metric == "binary_size":
        return float(report.binary_size_bytes)
    raise KeyError(f"unknown metric {metric!r}")


@dataclass(frozen=True)
class ComparisonResult:
    """One benchmark's baseline-vs-SkipFlow result, reporting-API compatible.

    Composed from two independently cached configuration halves;
    ``baseline_from_cache`` / ``skipflow_from_cache`` record the provenance of
    each half and ``from_cache`` is true only when *both* halves were served
    from the cache (i.e. no solver ran for this result at all).
    """

    benchmark: str
    suite: str
    baseline: ReportView
    skipflow: ReportView
    elapsed_seconds: float
    baseline_from_cache: bool = False
    skipflow_from_cache: bool = False

    @property
    def from_cache(self) -> bool:
        return self.baseline_from_cache and self.skipflow_from_cache

    def metric(self, name: str, configuration: str = "skipflow") -> float:
        report = self.skipflow if configuration == "skipflow" else self.baseline
        return _metric_value(report, name)

    def normalized(self, name: str) -> float:
        """SkipFlow metric normalized to the baseline (< 1.0 is an improvement)."""
        base = _metric_value(self.baseline, name)
        if base == 0:
            return 1.0
        return _metric_value(self.skipflow, name) / base

    def reduction_percent(self, name: str) -> float:
        return (1.0 - self.normalized(name)) * 100.0

    @property
    def reachable_method_reduction_percent(self) -> float:
        return self.reduction_percent("reachable_methods")

    def as_dict(self) -> Dict[str, float]:
        row: Dict[str, Any] = {"benchmark": self.benchmark, "suite": self.suite}
        for metric in METRIC_NAMES:
            row[f"pta_{metric}"] = _metric_value(self.baseline, metric)
            row[f"skipflow_{metric}"] = _metric_value(self.skipflow, metric)
            row[f"reduction_{metric}_percent"] = self.reduction_percent(metric)
        return row


# ---------------------------------------------------------------------- #
# Payloads (what workers return and the cache stores, one per half)
# ---------------------------------------------------------------------- #
def _report_payload(report: ImageBuildReport) -> Dict[str, Any]:
    stats = report.result.stats
    return {
        "configuration": report.configuration,
        "reachable_methods": report.metrics.reachable_methods,
        "type_checks": report.metrics.type_checks,
        "null_checks": report.metrics.null_checks,
        "primitive_checks": report.metrics.primitive_checks,
        "poly_calls": report.metrics.poly_calls,
        "binary_size_bytes": report.binary_size_bytes,
        "analysis_time_seconds": report.analysis_time_seconds,
        "total_time_seconds": report.total_time_seconds,
        "solver_steps": report.result.steps,
        "solver_joins": stats.joins if stats is not None else 0,
        "solver_transfers": stats.transfers if stats is not None else 0,
        "saturated_flows": stats.saturated_flows if stats is not None else 0,
    }


def _view_from_payload(payload: Dict[str, Any]) -> ReportView:
    return ReportView(
        configuration=payload["configuration"],
        metrics=MetricsView(
            reachable_methods=payload["reachable_methods"],
            type_checks=payload["type_checks"],
            null_checks=payload["null_checks"],
            primitive_checks=payload["primitive_checks"],
            poly_calls=payload["poly_calls"],
        ),
        binary_size_bytes=payload["binary_size_bytes"],
        analysis_time_seconds=payload["analysis_time_seconds"],
        total_time_seconds=payload["total_time_seconds"],
        solver_steps=payload["solver_steps"],
        solver_joins=payload["solver_joins"],
        solver_transfers=payload["solver_transfers"],
        saturated_flows=payload["saturated_flows"],
    )


def view_from_half(payload: Dict[str, Any]) -> ReportView:
    """Validate one per-configuration payload and extract its report view."""
    if payload.get("payload_version") != PAYLOAD_VERSION:
        raise ValueError(
            f"unsupported payload version {payload.get('payload_version')!r}")
    return _view_from_payload(payload["report"])


def result_from_halves(baseline_payload: Dict[str, Any],
                       skipflow_payload: Dict[str, Any],
                       baseline_from_cache: bool = False,
                       skipflow_from_cache: bool = False) -> ComparisonResult:
    """Compose two per-configuration payloads into one ``ComparisonResult``."""
    if baseline_payload["benchmark"] != skipflow_payload["benchmark"]:
        raise ValueError(
            f"cannot compose halves of different benchmarks: "
            f"{baseline_payload['benchmark']!r} vs {skipflow_payload['benchmark']!r}")
    return ComparisonResult(
        benchmark=baseline_payload["benchmark"],
        suite=baseline_payload["suite"],
        baseline=view_from_half(baseline_payload),
        skipflow=view_from_half(skipflow_payload),
        elapsed_seconds=(baseline_payload["elapsed_seconds"]
                         + skipflow_payload["elapsed_seconds"]),
        baseline_from_cache=baseline_from_cache,
        skipflow_from_cache=skipflow_from_cache,
    )


#: Per-process memo of programs already obtained from a store, keyed by the
#: store blob path (which embeds the spec hash *and* the code version, so a
#: stale entry is unreachable by construction).  Worker processes on a pool
#: each hold their own copy; an N-configuration matrix over one spec
#: therefore unpickles the IR once per process instead of once per half.
#: Sharing one ``Program`` object across solves is safe because every
#: registered analyzer treats the program as read-only and the engine never
#: applies reflection mutations (callers that do must bypass the engine).
_WORKER_PROGRAMS: Dict[str, Program] = {}

#: Memo capacity: oldest entries are evicted beyond this, so a long-lived
#: process sweeping many specs holds a handful of programs, not all of them.
#: Serial runs solve a spec's halves adjacently and pool tasks are submitted
#: column-major over at most ``jobs`` in-flight specs per worker, so a small
#: window captures effectively all of the reuse.
_WORKER_PROGRAM_CAPACITY = 8


def _program_for(spec: BenchmarkSpec,
                 store: Optional[ProgramStore],
                 arena: bool = False) -> Tuple[Program, bool]:
    """The program for one half, via the process memo and the store.

    Returns the program plus whether it came from shared storage (the memo
    or the store's blob).  Memo hits count as store hits so the store's
    counters keep meaning "solves that skipped program generation".

    With ``arena`` (arena-kernel halves) the store's ``.arena`` blob is
    mapped and attached instead of unpickling — zero per-worker decode; the
    attached program is memoized under the arena blob path, so the same
    process can hold both representations of a spec without confusion.
    """
    if store is None:
        return generate_benchmark(spec), False
    memo_key = str(store.arena_path_for(spec) if arena else store.path_for(spec))
    program = _WORKER_PROGRAMS.get(memo_key)
    if program is not None:
        store.hits += 1
        return program, True
    if arena:
        program, from_store = store.attach_or_build(spec)
    else:
        program, from_store = store.load_or_build(spec)
    _WORKER_PROGRAMS[memo_key] = program
    while len(_WORKER_PROGRAMS) > _WORKER_PROGRAM_CAPACITY:
        _WORKER_PROGRAMS.pop(next(iter(_WORKER_PROGRAMS)))
    return program, from_store


def _set_parallel_core_budget(budget: int) -> None:
    """Pool-worker initializer: export this worker's intra-solve core slice.

    :mod:`repro.core.kernel.parallel_kernel` reads the variable when sizing
    its process-worker tier, so ``jobs`` pool workers × per-solve partitions
    never exceeds the machine.
    """
    from repro.core.kernel.parallel_kernel import ENV_CORE_BUDGET
    os.environ[ENV_CORE_BUDGET] = str(budget)


def solve_config(spec: BenchmarkSpec,
                 config: AnalysisConfig,
                 store: Optional[ProgramStore] = None) -> Dict[str, Any]:
    """Worker entry point: analyze one (spec, configuration) pair.

    Must stay a module-level function so ``ProcessPoolExecutor`` can pickle
    it; specs, configs, and the program store all pickle cleanly.  When a
    store is provided the program is loaded from the per-process memo, the
    on-disk blob, or freshly generated (and pickled), in that order;
    ``program_from_store`` records whether generation was skipped.
    """
    started = time.perf_counter()
    arena = getattr(config, "kernel", "object") in ("arena", "parallel")
    program, from_store = _program_for(spec, store, arena=arena)
    report = NativeImageBuilder(program, config, benchmark_name=spec.name).build()
    return {
        "payload_version": PAYLOAD_VERSION,
        "benchmark": spec.name,
        "suite": spec.suite,
        "config_name": config.name,
        "program_from_store": from_store,
        "report": _report_payload(report),
        "elapsed_seconds": time.perf_counter() - started,
    }


# ---------------------------------------------------------------------- #
# N-way matrix rows
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ConfigRunView:
    """One column of a matrix row: a named configuration's result for a spec."""

    name: str
    report: ReportView
    from_cache: bool
    elapsed_seconds: float


@dataclass(frozen=True)
class MatrixRow:
    """One benchmark's results under N named configurations.

    Columns keep the order of the ``configs`` passed to
    :func:`run_config_matrix`; by convention the first column is the
    reference that :meth:`normalized` / :meth:`reduction_percent` compare
    against (matching :class:`ComparisonResult`, whose reference is the
    baseline half).
    """

    benchmark: str
    suite: str
    runs: Tuple[ConfigRunView, ...]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(run.name for run in self.runs)

    def run(self, name: str) -> ConfigRunView:
        for run in self.runs:
            if run.name == name:
                return run
        raise KeyError(f"no configuration {name!r} in this row; "
                       f"available: {', '.join(self.names)}")

    def report(self, name: str) -> ReportView:
        return self.run(name).report

    def metric(self, metric: str, name: str) -> float:
        return _metric_value(self.run(name).report, metric)

    def normalized(self, metric: str, name: str) -> float:
        """A column's metric normalized to the first (reference) column."""
        reference = _metric_value(self.runs[0].report, metric)
        if reference == 0:
            return 1.0
        return self.metric(metric, name) / reference

    def reduction_percent(self, metric: str, name: str) -> float:
        return (1.0 - self.normalized(metric, name)) * 100.0

    @property
    def from_cache(self) -> bool:
        """True only when every column was served from the cache."""
        return all(run.from_cache for run in self.runs)

    @property
    def elapsed_seconds(self) -> float:
        return sum(run.elapsed_seconds for run in self.runs)

    def as_dict(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {"benchmark": self.benchmark, "suite": self.suite}
        for run in self.runs:
            for metric in METRIC_NAMES:
                row[f"{run.name}_{metric}"] = _metric_value(run.report, metric)
        return row


# ---------------------------------------------------------------------- #
# The drivers
# ---------------------------------------------------------------------- #
ProgressCallback = Callable[[BenchmarkSpec, ComparisonResult], None]
MatrixProgressCallback = Callable[[BenchmarkSpec, MatrixRow], None]


def run_config_matrix(
    specs: Sequence[BenchmarkSpec],
    configs: Sequence[AnalysisConfig],
    *,
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[MatrixProgressCallback] = None,
    program_store: Optional[ProgramStore] = None,
) -> List[MatrixRow]:
    """Run every spec under every named configuration; rows follow input order.

    Each (spec, configuration) half is looked up in the cache independently,
    so a matrix whose columns were already computed by earlier runs — in any
    combination — recomputes nothing.  The remaining halves run serially
    (``jobs == 1``, each spec's halves adjacent so rows complete — and report
    progress — incrementally) or on a process pool (column-major, first
    column's halves first with the largest specs leading, so program blobs
    are usually stored before the sibling halves start).  ``progress`` is
    invoked once per *completed row* (all columns available), in completion
    order.

    ``names`` labels the columns (defaults to each config's ``name``) and
    must be unique — a saturation sweep over otherwise same-named SkipFlow
    configs needs explicit labels.

    When ``program_store`` is omitted but a ``cache`` is given, a store is
    derived automatically under ``<cache dir>/programs`` so result entries
    and IR blobs share one directory tree (and one code version).
    """
    configs = list(configs)
    if not configs:
        raise ValueError("run_config_matrix needs at least one configuration")
    column_names = list(names) if names is not None else [c.name for c in configs]
    if len(column_names) != len(configs):
        raise ValueError(f"{len(configs)} configs but {len(column_names)} names")
    if len(set(column_names)) != len(column_names):
        raise ValueError(f"column names must be unique, got {column_names}")
    if program_store is None and cache is not None:
        program_store = ProgramStore(cache.directory / "programs",
                                     code_version=cache.code_version)
    sides = range(len(configs))

    # halves[index][side] is the payload once available; cached[index][side]
    # records whether it came from the result cache.
    halves: List[List[Optional[Dict[str, Any]]]] = [
        [None] * len(configs) for _ in specs]
    cached: List[List[bool]] = [[False] * len(configs) for _ in specs]
    results: List[Optional[MatrixRow]] = [None] * len(specs)
    pending: List[Tuple[int, int]] = []

    for index, spec in enumerate(specs):
        for side in sides:
            payload = None
            if cache is not None:
                payload = cache.get(cache.config_key(spec, configs[side]))
                if payload is not None:
                    try:
                        view_from_half(payload)
                    except (KeyError, TypeError, ValueError):
                        # Stale layout: recompute, and reclassify the lookup
                        # as a miss so the counters match what actually ran.
                        payload = None
                        cache.hits -= 1
                        cache.misses += 1
            if payload is None:
                pending.append((index, side))
            else:
                halves[index][side] = payload
                cached[index][side] = True

    def _maybe_assemble(index: int) -> None:
        if any(half is None for half in halves[index]) or results[index] is not None:
            return
        results[index] = MatrixRow(
            benchmark=specs[index].name,
            suite=specs[index].suite,
            runs=tuple(
                ConfigRunView(
                    name=column_names[side],
                    report=view_from_half(halves[index][side]),
                    from_cache=cached[index][side],
                    elapsed_seconds=halves[index][side]["elapsed_seconds"],
                )
                for side in sides
            ),
        )
        if progress is not None:
            progress(specs[index], results[index])

    def finish(index: int, side: int, payload: Dict[str, Any]) -> None:
        if cache is not None:
            cache.put(cache.config_key(specs[index], configs[side]), payload)
        halves[index][side] = payload
        cached[index][side] = False
        _maybe_assemble(index)

    # Fully cached rows are assembled (and reported) first.
    for index in range(len(specs)):
        _maybe_assemble(index)

    pending_indices = sorted({index for index, _ in pending})
    spec_rank = {index: rank for rank, index in enumerate(
        pending_indices[i] for i in order_by_cost([specs[i] for i in pending_indices]))}
    parallel = jobs > 1 and len(pending) > 1
    if parallel:
        # Column-major: all first-column halves first (expensive specs
        # leading), then the next column, and so on — a spec's program then
        # usually lands in the store before its sibling halves start.  (When
        # workers outnumber the pending first-column halves a sibling can
        # still race on a cold store; results stay correct — generation is
        # deterministic and blob writes atomic — the race only duplicates
        # generation work.)
        submission_order = sorted(
            pending, key=lambda item: (item[1], spec_rank[item[0]]))
    else:
        # Serially there is no race: keep a spec's halves adjacent (first
        # column first) so each row completes — and reports progress —
        # before the next spec starts.
        submission_order = sorted(
            pending, key=lambda item: (spec_rank[item[0]], item[1]))

    if parallel:
        # Matrix-level pool workers and intra-solve parallel-kernel
        # partitions share one core budget: each pool worker gets an even
        # slice of the machine, so a `kernel="parallel"` half never
        # oversubscribes (on a slice below two cores its auto mode falls
        # back to the serial arena kernel).
        max_workers = min(jobs, len(submission_order))
        budget = max(1, (os.cpu_count() or 1) // max_workers)
        with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_set_parallel_core_budget,
                initargs=(budget,)) as pool:
            futures = {
                pool.submit(solve_config, specs[index], configs[side],
                            program_store): (index, side)
                for index, side in submission_order
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index, side = futures[future]
                    finish(index, side, future.result())
    else:
        for index, side in submission_order:
            finish(index, side, solve_config(specs[index], configs[side],
                                             program_store))

    return [result for result in results if result is not None]


def _comparison_from_row(row: MatrixRow) -> ComparisonResult:
    baseline, skipflow = row.runs
    return ComparisonResult(
        benchmark=row.benchmark,
        suite=row.suite,
        baseline=baseline.report,
        skipflow=skipflow.report,
        elapsed_seconds=baseline.elapsed_seconds + skipflow.elapsed_seconds,
        baseline_from_cache=baseline.from_cache,
        skipflow_from_cache=skipflow.from_cache,
    )


def run_specs(
    specs: Sequence[BenchmarkSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    baseline_config: Optional[AnalysisConfig] = None,
    skipflow_config: Optional[AnalysisConfig] = None,
    progress: Optional[ProgressCallback] = None,
    program_store: Optional[ProgramStore] = None,
) -> List[ComparisonResult]:
    """Run every spec under both configurations; results follow input order.

    The two-column specialization of :func:`run_config_matrix` (see there for
    the caching, ordering, and progress semantics): the baseline config is
    the reference column, and each row is folded into a
    :class:`ComparisonResult` for the Table 1 / Figure 9 reporting API.
    """
    baseline_config = baseline_config or AnalysisConfig.baseline_pta()
    skipflow_config = skipflow_config or AnalysisConfig.skipflow()
    adapter: Optional[MatrixProgressCallback] = None
    if progress is not None:
        adapter = lambda spec, row: progress(spec, _comparison_from_row(row))  # noqa: E731
    rows = run_config_matrix(
        specs, [baseline_config, skipflow_config],
        names=("baseline", "skipflow"), jobs=jobs, cache=cache,
        progress=adapter, program_store=program_store,
    )
    return [_comparison_from_row(row) for row in rows]
