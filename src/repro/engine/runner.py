"""Parallel benchmark runner producing cacheable comparison results.

The runner's unit of work is one :class:`~repro.workloads.generator.
BenchmarkSpec` compared under the baseline and SkipFlow configurations.  A
worker (possibly in another process) runs the comparison and returns a plain
JSON-serializable *payload*; the parent wraps payloads — freshly computed or
loaded from the :class:`~repro.engine.cache.ResultCache` — into
:class:`ComparisonResult` objects that mirror the read API of
:class:`~repro.reporting.records.BenchmarkComparison`, so the existing
Table 1 / Figure 9 formatters work on either unchanged.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.analysis import AnalysisConfig
from repro.engine.cache import ResultCache
from repro.engine.scheduler import order_by_cost
from repro.image.builder import ImageBuildReport
from repro.reporting.records import METRIC_NAMES, compare_configurations
from repro.workloads.generator import BenchmarkSpec

#: Payload schema version; bump when the payload layout changes so stale
#: cache entries (same code version would normally prevent this, but cache
#: directories can outlive wheels) are treated as misses.
PAYLOAD_VERSION = 1


@dataclass(frozen=True)
class MetricsView:
    """The counter metrics of one configuration, detached from the solver."""

    reachable_methods: int
    type_checks: int
    null_checks: int
    primitive_checks: int
    poly_calls: int


@dataclass(frozen=True)
class ReportView:
    """The serializable slice of an ``ImageBuildReport`` the reporting uses."""

    configuration: str
    metrics: MetricsView
    binary_size_bytes: int
    analysis_time_seconds: float
    total_time_seconds: float
    solver_steps: int
    saturated_flows: int

    @property
    def reachable_methods(self) -> int:
        return self.metrics.reachable_methods

    @property
    def binary_size_megabytes(self) -> float:
        return self.binary_size_bytes / 1_000_000.0


def _metric_value(report: ReportView, metric: str) -> float:
    if metric == "analysis_time":
        return report.analysis_time_seconds
    if metric == "total_time":
        return report.total_time_seconds
    if metric == "reachable_methods":
        return float(report.metrics.reachable_methods)
    if metric == "type_checks":
        return float(report.metrics.type_checks)
    if metric == "null_checks":
        return float(report.metrics.null_checks)
    if metric == "prim_checks":
        return float(report.metrics.primitive_checks)
    if metric == "poly_calls":
        return float(report.metrics.poly_calls)
    if metric == "binary_size":
        return float(report.binary_size_bytes)
    raise KeyError(f"unknown metric {metric!r}")


@dataclass(frozen=True)
class ComparisonResult:
    """One benchmark's baseline-vs-SkipFlow result, reporting-API compatible."""

    benchmark: str
    suite: str
    baseline: ReportView
    skipflow: ReportView
    elapsed_seconds: float
    from_cache: bool = False

    def metric(self, name: str, configuration: str = "skipflow") -> float:
        report = self.skipflow if configuration == "skipflow" else self.baseline
        return _metric_value(report, name)

    def normalized(self, name: str) -> float:
        """SkipFlow metric normalized to the baseline (< 1.0 is an improvement)."""
        base = _metric_value(self.baseline, name)
        if base == 0:
            return 1.0
        return _metric_value(self.skipflow, name) / base

    def reduction_percent(self, name: str) -> float:
        return (1.0 - self.normalized(name)) * 100.0

    @property
    def reachable_method_reduction_percent(self) -> float:
        return self.reduction_percent("reachable_methods")

    def as_dict(self) -> Dict[str, float]:
        row: Dict[str, Any] = {"benchmark": self.benchmark, "suite": self.suite}
        for metric in METRIC_NAMES:
            row[f"pta_{metric}"] = _metric_value(self.baseline, metric)
            row[f"skipflow_{metric}"] = _metric_value(self.skipflow, metric)
            row[f"reduction_{metric}_percent"] = self.reduction_percent(metric)
        return row


# ---------------------------------------------------------------------- #
# Payloads (what workers return and the cache stores)
# ---------------------------------------------------------------------- #
def _report_payload(report: ImageBuildReport) -> Dict[str, Any]:
    stats = report.result.stats
    return {
        "configuration": report.configuration,
        "reachable_methods": report.metrics.reachable_methods,
        "type_checks": report.metrics.type_checks,
        "null_checks": report.metrics.null_checks,
        "primitive_checks": report.metrics.primitive_checks,
        "poly_calls": report.metrics.poly_calls,
        "binary_size_bytes": report.binary_size_bytes,
        "analysis_time_seconds": report.analysis_time_seconds,
        "total_time_seconds": report.total_time_seconds,
        "solver_steps": report.result.steps,
        "saturated_flows": stats.saturated_flows if stats is not None else 0,
    }


def _view_from_payload(payload: Dict[str, Any]) -> ReportView:
    return ReportView(
        configuration=payload["configuration"],
        metrics=MetricsView(
            reachable_methods=payload["reachable_methods"],
            type_checks=payload["type_checks"],
            null_checks=payload["null_checks"],
            primitive_checks=payload["primitive_checks"],
            poly_calls=payload["poly_calls"],
        ),
        binary_size_bytes=payload["binary_size_bytes"],
        analysis_time_seconds=payload["analysis_time_seconds"],
        total_time_seconds=payload["total_time_seconds"],
        solver_steps=payload["solver_steps"],
        saturated_flows=payload["saturated_flows"],
    )


def result_from_payload(payload: Dict[str, Any], from_cache: bool = False) -> ComparisonResult:
    if payload.get("payload_version") != PAYLOAD_VERSION:
        raise ValueError(
            f"unsupported payload version {payload.get('payload_version')!r}")
    return ComparisonResult(
        benchmark=payload["benchmark"],
        suite=payload["suite"],
        baseline=_view_from_payload(payload["baseline"]),
        skipflow=_view_from_payload(payload["skipflow"]),
        elapsed_seconds=payload["elapsed_seconds"],
        from_cache=from_cache,
    )


def solve_spec(spec: BenchmarkSpec,
               baseline_config: AnalysisConfig,
               skipflow_config: AnalysisConfig) -> Dict[str, Any]:
    """Worker entry point: run one comparison, return its payload.

    Must stay a module-level function so ``ProcessPoolExecutor`` can pickle
    it; specs and configs are frozen dataclasses and pickle cleanly.
    """
    started = time.perf_counter()
    comparison = compare_configurations(
        spec, baseline_config=baseline_config, skipflow_config=skipflow_config)
    return {
        "payload_version": PAYLOAD_VERSION,
        "benchmark": spec.name,
        "suite": spec.suite,
        "baseline": _report_payload(comparison.baseline),
        "skipflow": _report_payload(comparison.skipflow),
        "elapsed_seconds": time.perf_counter() - started,
    }


# ---------------------------------------------------------------------- #
# The driver
# ---------------------------------------------------------------------- #
ProgressCallback = Callable[[BenchmarkSpec, ComparisonResult], None]


def run_specs(
    specs: Sequence[BenchmarkSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    baseline_config: Optional[AnalysisConfig] = None,
    skipflow_config: Optional[AnalysisConfig] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[ComparisonResult]:
    """Run every spec under both configurations; results follow input order.

    Cached comparisons are returned without re-solving; the remaining specs
    run serially (``jobs == 1``) or on a process pool, submitted
    largest-first.  ``progress`` is invoked once per finished spec, in
    completion order.
    """
    baseline_config = baseline_config or AnalysisConfig.baseline_pta()
    skipflow_config = skipflow_config or AnalysisConfig.skipflow()

    results: List[Optional[ComparisonResult]] = [None] * len(specs)
    pending: List[int] = []
    for index, spec in enumerate(specs):
        payload = None
        if cache is not None:
            payload = cache.get(cache.key(spec, baseline_config, skipflow_config))
            if payload is not None:
                try:
                    results[index] = result_from_payload(payload, from_cache=True)
                except (KeyError, ValueError):
                    payload = None  # stale layout: recompute
        if payload is None:
            pending.append(index)
        elif progress is not None:
            progress(spec, results[index])

    def finish(index: int, payload: Dict[str, Any]) -> None:
        if cache is not None:
            cache.put(cache.key(specs[index], baseline_config, skipflow_config),
                      payload)
        results[index] = result_from_payload(payload)
        if progress is not None:
            progress(specs[index], results[index])

    submission_order = [pending[i] for i in order_by_cost([specs[i] for i in pending])]
    if jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(solve_spec, specs[index], baseline_config,
                            skipflow_config): index
                for index in submission_order
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    finish(futures[future], future.result())
    else:
        for index in submission_order:
            finish(index, solve_spec(specs[index], baseline_config, skipflow_config))

    return [result for result in results if result is not None]
