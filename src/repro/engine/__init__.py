"""The benchmark engine: parallel execution with an on-disk result cache.

The engine decouples *what* the evaluation drivers ask for (a list of
:class:`~repro.workloads.generator.BenchmarkSpec`, each compared under the
PTA baseline and SkipFlow) from *how* the comparisons are produced:

* :mod:`repro.engine.runner` fans specs out to a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs > 1``) or runs them
  serially (``jobs == 1``); both paths return identical results because
  benchmark generation and the solver are fully deterministic.
* :mod:`repro.engine.scheduler` orders the pending specs largest-first
  (longest-processing-time heuristic) so the pool stays balanced.
* :mod:`repro.engine.cache` persists every comparison as one JSON file.

Cache key scheme
----------------
A cache entry is keyed by the SHA-256 of three components::

    key = sha256(spec_hash / config_hash / code_version)

``spec_hash``
    Canonical JSON of the full ``BenchmarkSpec`` dataclass (name, suite,
    module sizes, guard patterns).  Any change to the generated program
    changes the key.
``config_hash``
    Canonical JSON of *both* ``AnalysisConfig`` dataclasses (baseline and
    SkipFlow), including ``saturation_threshold``.  Flipping any analysis
    switch invalidates the entry.
``code_version``
    SHA-256 over every ``*.py`` source file of the ``repro`` package, so any
    code change — a solver fix, a new metric — invalidates *all* entries.
    Results are therefore never stale; at worst the cache is cold.

Saturation and the paper's monotonicity argument
------------------------------------------------
The solver's termination proof (Appendix C) rests on monotonicity: value
states only grow in the lattice ``L``, flows only switch from disabled to
enabled, and edges are only added.  The saturation cutoff
(``AnalysisConfig.saturation_threshold``) preserves exactly that argument:
saturating a flow *jumps* its state to the top element of ``L`` restricted
to the closed world (every instantiable type, ``null``, primitive ``Any``),
which is still a move up the lattice, and subsequently skipped joins into
the flow are no-ops by definition of top.  The fixed point is reached sooner
and is a sound over-approximation of the paper's result; with the cutoff
disabled (the default everywhere) results are bit-identical to the exact
semantics.  Because the threshold is part of ``config_hash``, cached exact
and saturated results never mix.
"""

from repro.engine.cache import ResultCache, compute_code_version
from repro.engine.runner import ComparisonResult, run_specs
from repro.engine.scheduler import order_by_cost

__all__ = [
    "ComparisonResult",
    "ResultCache",
    "compute_code_version",
    "order_by_cost",
    "run_specs",
]
