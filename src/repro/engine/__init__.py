"""The benchmark engine: parallel execution with per-configuration caching.

The engine decouples *what* the evaluation drivers ask for (a list of
:class:`~repro.workloads.generator.BenchmarkSpec`, each analyzed under a
list of named configurations — the classic PTA-vs-SkipFlow pair or an
arbitrary N-way matrix) from *how* the results are produced:

* :mod:`repro.engine.runner` fans *halves* — one (spec, configuration)
  analysis each — out to a ``concurrent.futures.ProcessPoolExecutor``
  (``jobs > 1``) or runs them serially (``jobs == 1``); both paths return
  identical results because benchmark generation and the solver are fully
  deterministic.  :func:`~repro.engine.runner.run_config_matrix` is the
  general N-configuration driver; :func:`~repro.engine.runner.run_specs`
  is its two-column specialization for the Table 1 / Figure 9 reporting.
* :mod:`repro.engine.scheduler` orders the pending specs largest-first
  (longest-processing-time heuristic) so the pool stays balanced.
* :mod:`repro.engine.cache` persists every configuration half as one JSON
  file, so comparisons compose from independently cached halves.
* :mod:`repro.engine.program_store` shares built IR between halves, workers,
  and runs: the first solve of a spec pickles the generated program into the
  cache directory and every later solve unpickles the blob instead of
  regenerating and re-lowering it.
* :mod:`repro.engine.snapshots` persists *solver-state* snapshots — the
  resumable fixpoint of one (spec, configuration) solve — keyed exactly
  like result halves, so warm re-analysis after a monotone program edit
  survives process boundaries (``benchmarks/run_incremental_study.py``).

Invariant: with both configurations at their defaults the engine's numbers
are bit-identical to running :class:`~repro.image.builder.NativeImageBuilder`
directly on a freshly generated program, whether a result was computed
serially, on a pool, loaded from the cache, or solved over a program from
the store (verified down to solver step counts by the engine tests).

Cache key scheme
----------------
A *result* entry holds one configuration half and is keyed by the SHA-256 of
three components::

    key = sha256("result/" + spec_hash / config_hash / code_version)

``spec_hash``
    Canonical JSON of the full ``BenchmarkSpec`` dataclass (name, suite,
    module sizes, guard patterns, wide-hierarchy shapes).  Any change to the
    generated program changes the key.
``config_hash``
    Canonical JSON of *one* ``AnalysisConfig`` dataclass, including
    ``saturation_threshold``.  Flipping any analysis switch invalidates the
    entry — but only for that configuration: an ablation sweep over
    SkipFlow variants keeps hitting the shared baseline half, which is what
    lets a 5-point saturation sweep analyze the unsaturated baseline exactly
    once.
``code_version``
    SHA-256 over every ``*.py`` source file of the ``repro`` package, so any
    code change — a solver fix, a new metric — invalidates *all* entries.
    Results are therefore never stale; at worst the cache is cold.
    Invalidated entries linger on disk (their keys are simply never looked
    up again) until ``repro bench --gc`` — backed by ``ResultCache.gc`` and
    ``ProgramStore.gc`` — deletes every file whose code-version filename
    prefix does not match the running code.

A *program store* entry holds the pickled IR of one spec under
``<cache dir>/programs`` and is keyed by ``(spec_hash, code_version)`` only:
the program depends on the generator but not on any analysis configuration,
which is exactly why both halves of a comparison (and every sweep point) can
share one blob.

Saturation and the paper's monotonicity argument
------------------------------------------------
The solver's termination proof (Appendix C) rests on monotonicity: value
states only grow in the lattice ``L``, flows only switch from disabled to
enabled, and edges are only added.  The saturation cutoff
(``AnalysisConfig.saturation_threshold``) preserves exactly that argument:
saturating a flow *jumps* its state to the top element of ``L`` restricted
to the closed world (every instantiable type, ``null``, primitive ``Any``),
which is still a move up the lattice, and subsequently skipped joins into
the flow are no-ops by definition of top.  The fixed point is reached sooner
and is a sound over-approximation of the paper's result; with the cutoff
disabled (the default everywhere) results are bit-identical to the exact
semantics.  Because the threshold is part of ``config_hash``, cached exact
and saturated results never mix.  ``docs/architecture.md`` spells the
argument out in full; ``benchmarks/run_saturation_study.py`` measures the
precision/cost trade-off on the wide-hierarchy workload family.
"""

from repro.engine.cache import ResultCache, compute_code_version
from repro.engine.program_store import ProgramStore
from repro.engine.runner import (
    ComparisonResult,
    ConfigRunView,
    MatrixRow,
    run_config_matrix,
    run_specs,
)
from repro.engine.scheduler import order_by_cost
from repro.engine.snapshots import SnapshotStore

__all__ = [
    "ComparisonResult",
    "ConfigRunView",
    "MatrixRow",
    "ProgramStore",
    "ResultCache",
    "SnapshotStore",
    "compute_code_version",
    "order_by_cost",
    "run_config_matrix",
    "run_specs",
]
