"""On-disk JSON cache for per-configuration analysis results.

One cache entry per ``(spec, configuration, code version)`` triple — one
*half* of an N-way comparison; see the package docstring
(:mod:`repro.engine`) for the key scheme and why halves (rather than whole
comparisons) are the cache unit.  Entries are single JSON files written
atomically (temp file + rename), so a cache directory can be shared between
concurrent runs and an interrupted run never leaves a corrupt entry behind —
unreadable files are simply treated as misses.

Entry filenames are prefixed with the code version
(``<code_version>-<key>.json``).  The key already embeds the code version,
so the prefix adds no correctness — it exists so that :meth:`ResultCache.gc`
can identify entries written by *other* code versions from the filename
alone and drop them (``repro bench --gc``); without it stale entries would
accumulate forever, since a key is an opaque hash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

_HASH_ABBREV = 16


def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def hash_dataclass(instance: Any) -> str:
    """Stable hash of a (possibly nested) dataclass instance."""
    return _sha256(_canonical_json(dataclasses.asdict(instance)))[:_HASH_ABBREV]


_code_version_cache: Optional[str] = None


def compute_code_version() -> str:
    """Hash every ``*.py`` file of the ``repro`` package (memoized).

    Including relative paths in the digest means renames invalidate too, not
    just content edits.
    """
    global _code_version_cache
    if _code_version_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()[:_HASH_ABBREV]
    return _code_version_cache


class ResultCache:
    """A directory of cached per-configuration payloads, keyed as described above.

    ``hits``/``misses`` count :meth:`get` outcomes on this instance; a
    comparison served entirely from the cache therefore scores one hit per
    configuration half, which is what lets tests assert that an ablation
    sweep recomputed the shared baseline exactly once.
    """

    def __init__(self, directory, code_version: Optional[str] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version or compute_code_version()
        self.hits = 0
        self.misses = 0
        #: Bytes reclaimed by the most recent :meth:`gc` / :meth:`clear`
        #: (``repro bench --gc`` reports it).
        self.last_gc_bytes = 0

    # ------------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------------ #
    def config_key(self, spec, config) -> str:
        """The cache key for one (spec, configuration) analysis result."""
        parts = "/".join((
            hash_dataclass(spec),
            hash_dataclass(config),
            self.code_version,
        ))
        return _sha256("result/" + parts)[:2 * _HASH_ABBREV]

    def path_for(self, key: str) -> Path:
        return self.directory / f"{self.code_version}-{key}.json"

    # ------------------------------------------------------------------ #
    # Entries
    # ------------------------------------------------------------------ #
    def contains(self, key: str) -> bool:
        """Whether an entry exists, without touching the hit/miss counters."""
        return self.path_for(key).is_file()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        target = self.path_for(key)
        temp = target.with_name(target.name + f".tmp{os.getpid()}")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
        os.replace(temp, target)

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed.

        ``last_gc_bytes`` records how many bytes the deletions reclaimed.
        """
        removed = 0
        freed = 0
        for path in self.directory.glob("*.json"):
            freed += _size_of(path)
            path.unlink()
            removed += 1
        self.last_gc_bytes = freed
        return removed

    def gc(self) -> int:
        """Drop entries written by other code versions; returns files removed.

        An entry's filename starts with the code version that wrote it, so
        anything not matching this cache's version — including pre-versioning
        flat-named entries, which can never be read again either — is stale
        by construction and safe to delete.  The same rule reclaims ``.tmp``
        files orphaned by crashed writers; entries and in-flight ``.tmp``
        files of the *current* version are left alone (a concurrent run may
        be mid-write).
        """
        prefix = f"{self.code_version}-"
        removed = 0
        freed = 0
        for pattern in ("*.json", "*.json.tmp*"):
            for path in self.directory.glob(pattern):
                if not path.name.startswith(prefix):
                    freed += _size_of(path)
                    path.unlink()
                    removed += 1
        self.last_gc_bytes = freed
        return removed


def _size_of(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:
        return 0
