"""Command-line interface: analyze surface-language source files.

Usage::

    python -m repro analyze app.java --config skipflow --entry Main.main
    python -m repro analyze app.java --compare               # PTA vs SkipFlow
    python -m repro callgraph app.java --output graph.dot
    python -m repro pvpg app.java --method Scene.render
    python -m repro bench --scale 1.0 --cache-dir .bench-cache

The input is a file in the Java-like surface language of :mod:`repro.lang`;
``bench`` instead lists the synthetic benchmark specs of the evaluation and
the benchmark engine's cache status for each.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.image.builder import NativeImageBuilder
from repro.image.optimizations import collect_optimizations
from repro.image.reflection import ReflectionConfig
from repro.lang import compile_source
from repro.reporting.graphviz import call_graph_to_dot, pvpg_to_dot

_CONFIGS = {
    "skipflow": AnalysisConfig.skipflow,
    "pta": AnalysisConfig.baseline_pta,
    "predicates-only": AnalysisConfig.predicates_only,
    "primitives-only": AnalysisConfig.primitives_only,
}


def _load_program(args):
    source = Path(args.source).read_text()
    entry_points = args.entry or None
    program = compile_source(source, entry_points=entry_points)
    if args.reflection_config:
        reflection = ReflectionConfig.from_file(Path(args.reflection_config))
        reflection.apply_to(program)
    return program


def _selected_config(args) -> AnalysisConfig:
    config = _CONFIGS[args.config]()
    if args.saturation_threshold is not None:
        config = config.with_saturation_threshold(args.saturation_threshold)
    return config


def _write_output(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text)
    else:
        print(text)


def _cmd_analyze(args) -> int:
    program = _load_program(args)
    if args.compare:
        configs = [AnalysisConfig.baseline_pta(), AnalysisConfig.skipflow()]
        if args.saturation_threshold is not None:
            configs = [c.with_saturation_threshold(args.saturation_threshold)
                       for c in configs]
    else:
        configs = [_selected_config(args)]
    for config in configs:
        report = NativeImageBuilder(program, config, benchmark_name=args.source).build()
        metrics = report.metrics
        print(f"[{config.name}]")
        print(f"  reachable methods:  {metrics.reachable_methods}")
        print(f"  type checks:        {metrics.type_checks}")
        print(f"  null checks:        {metrics.null_checks}")
        print(f"  primitive checks:   {metrics.primitive_checks}")
        print(f"  poly calls:         {metrics.poly_calls}")
        print(f"  binary size:        {report.binary_size_megabytes:.2f} MB")
        print(f"  analysis time:      {report.analysis_time_seconds * 1000:.1f} ms")
        if args.optimizations:
            summary = collect_optimizations(report.result).summary()
            print(f"  optimization opportunities: {summary}")
        if args.list_unreachable:
            analyzed = set(report.result.reachable_methods)
            dead = sorted(set(program.methods) - analyzed)
            print(f"  unreachable methods ({len(dead)}):")
            for name in dead:
                print(f"    {name}")
    return 0


def _cmd_callgraph(args) -> int:
    program = _load_program(args)
    result = SkipFlowAnalysis(program, _selected_config(args)).run()
    _write_output(call_graph_to_dot(result), args.output)
    return 0


def _cmd_pvpg(args) -> int:
    program = _load_program(args)
    result = SkipFlowAnalysis(program, _selected_config(args)).run()
    methods = args.method or None
    _write_output(pvpg_to_dot(result, methods), args.output)
    return 0


def _cmd_bench(args) -> int:
    """List the benchmark specs of the evaluation with engine cache status.

    The cache column reflects the engine's per-configuration entries: ``hit``
    means both halves of the comparison (baseline and SkipFlow) are cached,
    ``base``/``skip`` that only that half is, ``miss`` that neither is.  The
    ``ir`` column reports whether the spec's program blob is in the shared
    program store under the cache directory.
    """
    from repro.engine import ProgramStore, ResultCache
    from repro.engine.scheduler import estimated_cost
    from repro.workloads.suites import extended_suites, suite_by_name

    if args.suite:
        try:
            suites = {args.suite: suite_by_name(args.suite, scale=args.scale)}
        except KeyError as error:
            print(f"repro bench: {error.args[0]}", file=sys.stderr)
            return 2
    else:
        suites = extended_suites(scale=args.scale)

    baseline = AnalysisConfig.baseline_pta()
    skipflow = AnalysisConfig.skipflow()
    if args.saturation_threshold is not None:
        baseline = baseline.with_saturation_threshold(args.saturation_threshold)
        skipflow = skipflow.with_saturation_threshold(args.saturation_threshold)
    cache = store = None
    if args.cache_dir:
        cache = ResultCache(args.cache_dir)
        store = ProgramStore(cache.directory / "programs",
                             code_version=cache.code_version)

    header = (f"{'suite':<14} {'benchmark':<28} {'methods':>7} {'guarded':>7} "
              f"{'cost':>8}  {'cache':<5} ir")
    print(header)
    print("-" * len(header))
    cached = total = 0
    for suite_name, specs in suites.items():
        for spec in specs:
            total += 1
            if cache is None:
                status, ir_status = "-", "-"
            else:
                base_half = cache.contains(cache.config_key(spec, baseline))
                skip_half = cache.contains(cache.config_key(spec, skipflow))
                if base_half and skip_half:
                    status = "hit"
                    cached += 1
                elif base_half:
                    status = "base"
                elif skip_half:
                    status = "skip"
                else:
                    status = "miss"
                ir_status = "yes" if store.contains(spec) else "no"
            print(f"{suite_name:<14} {spec.name:<28} "
                  f"{spec.expected_total_methods:>7} {spec.guarded_methods:>7} "
                  f"{estimated_cost(spec):>8.0f}  {status:<5} {ir_status}")
    if cache is not None:
        print(f"\n{cached}/{total} specs fully cached in {cache.directory} "
              f"(code version {cache.code_version})")
    else:
        print(f"\n{total} specs; pass --cache-dir to check cache status")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub):
        sub.add_argument("source", help="surface-language source file")
        sub.add_argument("--entry", action="append",
                         help="entry point (Class.method); may be repeated")
        sub.add_argument("--config", choices=sorted(_CONFIGS), default="skipflow")
        sub.add_argument("--reflection-config",
                         help="JSON reflection configuration file")
        sub.add_argument("--saturation-threshold", type=int, default=None,
                         help="saturate flows whose type set exceeds this size "
                              "(default: off, exact paper semantics)")

    analyze = subparsers.add_parser("analyze", help="run the analysis and print metrics")
    add_common(analyze)
    analyze.add_argument("--compare", action="store_true",
                         help="run both the PTA baseline and SkipFlow")
    analyze.add_argument("--optimizations", action="store_true",
                         help="print optimization opportunities")
    analyze.add_argument("--list-unreachable", action="store_true",
                         help="list methods proven unreachable")
    analyze.set_defaults(func=_cmd_analyze)

    callgraph = subparsers.add_parser("callgraph", help="export the call graph as DOT")
    add_common(callgraph)
    callgraph.add_argument("--output", help="write DOT to this file")
    callgraph.set_defaults(func=_cmd_callgraph)

    pvpg = subparsers.add_parser("pvpg", help="export predicated value propagation graphs as DOT")
    add_common(pvpg)
    pvpg.add_argument("--method", action="append",
                      help="restrict to this method (may be repeated)")
    pvpg.add_argument("--output", help="write DOT to this file")
    pvpg.set_defaults(func=_cmd_pvpg)

    bench = subparsers.add_parser(
        "bench", help="list benchmark specs and engine cache status")
    bench.add_argument("--scale", type=float, default=2.0,
                       help="synthetic methods per thousand paper-reported methods")
    bench.add_argument("--suite", type=str, default=None,
                       help="restrict to one suite (DaCapo, Microservices, "
                            "Renaissance, WideHierarchy)")
    bench.add_argument("--cache-dir", type=str, default=None,
                       help="benchmark engine cache directory to inspect")
    bench.add_argument("--saturation-threshold", type=int, default=None,
                       help="cache status for configs with this saturation threshold")
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
