"""Command-line interface: analyze surface-language source files.

Usage::

    python -m repro analyze app.java --analysis skipflow --entry Main.main
    python -m repro analyze app.java --compare               # PTA vs SkipFlow
    python -m repro analyze app.java --scheduling degree \
                                     --saturation-policy declared-type \
                                     --saturation-threshold 16
    python -m repro analyze app.java --save-state app.state  # snapshot the solve
    python -m repro analyze app2.java --resume-from app.state  # warm re-analysis
    python -m repro compare app.java cha rta pta skipflow    # N-way ladder
    python -m repro delta app.java app2.java                 # diff + monotone check
    python -m repro callgraph app.java --output graph.dot
    python -m repro pvpg app.java --method Scene.render
    python -m repro bench --scale 1.0 --cache-dir .bench-cache [--gc]
    python -m repro fuzz --seed 7 --cases 50 --out fuzz-artifacts
    python -m repro fuzz --budget 600 --profile deep   # nightly, time-boxed
    python -m repro fuzz --replay fuzz-artifacts/repro-7-3.json
    python -m repro fuzz --smoke                       # oracle self-check

The input is a file in the Java-like surface language of :mod:`repro.lang`;
``bench`` instead lists the synthetic benchmark specs of the evaluation and
the benchmark engine's cache status for each.  Analyses are resolved by name
through the :mod:`repro.api` registry, so newly registered analyzers appear
in ``--analysis`` and ``compare`` without CLI changes.  ``--save-state`` /
``--resume-from`` persist and warm-start solver-state snapshots: resuming
against a program that is not a monotone extension of the snapshotted one
falls back to a cold solve with a warning on stderr (``repro delta`` shows
the diff and the monotonicity verdict ahead of time; it exits 1 when the
edit is non-monotone).
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path
from typing import List, Optional

from repro.api import (
    AnalysisSession,
    NoEntryPointError,
    ResumeFallbackWarning,
    available_analyzers,
    available_saturation_policies,
    available_scheduling_policies,
    config_backed_analyzers,
    get_analyzer,
    has_engine_config,
    require_config_analyzer,
)
from repro.api.errors import EXIT_CHECK, exit_code_for
from repro.core.analysis import KERNELS, AnalysisConfig
from repro.core.state import SolverState
from repro.image.builder import NativeImageBuilder
from repro.image.optimizations import collect_optimizations
from repro.image.reflection import ReflectionConfig
from repro.ir.delta import DeltaError, diff_programs
from repro.ir.program import ProgramError
from repro.ir.validate import ValidationError
from repro.lang.api import compile_source
from repro.lang.errors import LangError
from repro.reporting.graphviz import call_graph_to_dot, pvpg_to_dot


def _load_session(args) -> AnalysisSession:
    source = Path(args.source).read_text()
    reflection = None
    if args.reflection_config:
        reflection = ReflectionConfig.from_file(Path(args.reflection_config))
    # --entry names become session default roots (validated by
    # resolve_roots, so a misspelling is a clean NoEntryPointError / exit 3)
    # rather than compiled-in entry points (where it would surface as a
    # ProgramError during compilation).
    return AnalysisSession.from_source(
        source, roots=args.entry or None, reflection=reflection,
        name=args.source)


def _selected_analysis(args) -> str:
    """The requested analyzer name (``--analysis``, legacy ``--config``)."""
    if args.analysis and args.config and args.analysis != args.config:
        raise ValueError(
            f"conflicting flags: --analysis {args.analysis} and --config "
            f"{args.config}; --config is a deprecated alias of --analysis, "
            f"pass only one")
    return args.analysis or args.config or "skipflow"


def _policy_options(args) -> dict:
    """The solver-kernel options of the shared CLI flags (set flags only)."""
    options = {}
    if args.saturation_threshold is not None:
        options["saturation_threshold"] = args.saturation_threshold
    if args.saturation_policy is not None:
        options["saturation_policy"] = args.saturation_policy
    if args.scheduling is not None:
        options["scheduling"] = args.scheduling
    if getattr(args, "kernel", None) is not None:
        options["kernel"] = args.kernel
    if getattr(args, "partitions", None) is not None:
        options["partitions"] = args.partitions
    return options


def _engine_result(session: AnalysisSession, args, purpose: str):
    """Run the selected config-backed analysis; returns the AnalysisResult."""
    name = _selected_analysis(args)
    require_config_analyzer(name, purpose=purpose)
    report = session.run(name, **_policy_options(args))
    return report.raw


def _write_output(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text)
    else:
        print(text)


def _print_build_report(session: AnalysisSession, config: AnalysisConfig,
                        args) -> None:
    report = NativeImageBuilder(session.program, config,
                                benchmark_name=args.source).build(
                                    session.resolve_roots())
    metrics = report.metrics
    print(f"[{config.name}]")
    print(f"  reachable methods:  {metrics.reachable_methods}")
    print(f"  type checks:        {metrics.type_checks}")
    print(f"  null checks:        {metrics.null_checks}")
    print(f"  primitive checks:   {metrics.primitive_checks}")
    print(f"  poly calls:         {metrics.poly_calls}")
    print(f"  binary size:        {report.binary_size_megabytes:.2f} MB")
    print(f"  analysis time:      {report.analysis_time_seconds * 1000:.1f} ms")
    if args.optimizations:
        summary = collect_optimizations(report.result).summary()
        print(f"  optimization opportunities: {summary}")
    if args.list_unreachable:
        analyzed = set(report.result.reachable_methods)
        dead = sorted(set(session.program.methods) - analyzed)
        print(f"  unreachable methods ({len(dead)}):")
        for name in dead:
            print(f"    {name}")


def _print_audit(result, *, warm_barrier: int = 0) -> int:
    """Audit an analysis result and print the findings; the gate exit code.

    Returns 0 when the audits are clean (or merely advisory) and
    ``EXIT_CHECK`` when any error-severity finding survives — an artifact
    that failed its own audit must not exit 0.
    """
    from repro.checks import audit_result, has_errors, render_text

    diagnostics = audit_result(result, warm_barrier=warm_barrier)
    if not diagnostics:
        print("  audit:              clean (all post-solve audits passed)")
        return 0
    print(render_text(diagnostics, title="  audit findings:"))
    return EXIT_CHECK if has_errors(diagnostics) else 0


def _print_call_graph_report(session: AnalysisSession, name: str,
                             args, report=None) -> None:
    # Passing set kernel flags through (even for CHA/RTA) means an
    # unsupported sweep errors out loudly instead of printing unchanged
    # numbers.
    if report is None:
        report = session.run(name, **_policy_options(args))
    print(f"[{report.analyzer}]")
    print(f"  reachable methods:  {report.reachable_method_count}")
    print(f"  call edges:         {report.call_edge_count}")
    print(f"  stub methods:       {len(report.stub_methods)}")
    print(f"  analysis time:      {report.analysis_time_seconds * 1000:.1f} ms")
    if args.list_unreachable:
        dead = sorted(set(session.program.methods) - set(report.reachable_methods))
        print(f"  unreachable methods ({len(dead)}):")
        for method in dead:
            print(f"    {method}")


def _analyze_with_state(session: AnalysisSession, args) -> int:
    """``analyze --resume-from/--save-state``: warm runs over snapshots.

    Runs through the session (not the image builder): the point of a
    snapshot is the solver state, so the output is the call-graph report
    plus the cumulative solver counters, and the mode line says whether the
    solve actually resumed or fell back cold (the fallback reasons go to
    stderr either way).
    """
    name = _selected_analysis(args)
    require_config_analyzer(name, purpose="solver-state snapshots")
    resume_state = None
    if args.resume_from:
        resume_state = SolverState.from_bytes(
            Path(args.resume_from).read_bytes())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", ResumeFallbackWarning)
        report = session.run(name, resume=resume_state,
                             **_policy_options(args))
    fallbacks = [str(entry.message) for entry in caught
                 if issubclass(entry.category, ResumeFallbackWarning)]
    for message in fallbacks:
        print(f"repro analyze: {message}", file=sys.stderr)
    if args.resume_from:
        mode = "cold (resume fell back)" if fallbacks else "warm (resumed)"
    else:
        mode = "cold"
    stats = report.solver_stats
    print(f"[{report.analyzer}]")
    print(f"  mode:               {mode}")
    print(f"  reachable methods:  {report.reachable_method_count}")
    print(f"  call edges:         {report.call_edge_count}")
    print(f"  solver steps:       {stats.steps} (cumulative across resumes)")
    print(f"  solver joins:       {stats.joins}")
    print(f"  analysis time:      {report.analysis_time_seconds * 1000:.1f} ms")
    if args.save_state:
        state = report.raw.solver_state
        Path(args.save_state).write_bytes(state.to_bytes(session.program))
        print(f"  saved state:        {args.save_state}")
    if args.audit:
        return _print_audit(report.raw, warm_barrier=session.warm_barrier)
    return 0


def _cmd_analyze(args) -> int:
    session = _load_session(args)
    if args.audit and (args.json or args.compare or args.optimizations):
        raise ValueError(
            "--audit cannot be combined with --json/--compare/"
            "--optimizations; use `repro check --audit` for machine-readable "
            "diagnostics")
    if args.json:
        incompatible = next(
            (flag for flag, value in (
                ("--compare", args.compare),
                ("--optimizations", args.optimizations),
                ("--list-unreachable", args.list_unreachable),
                ("--save-state", args.save_state),
                ("--resume-from", args.resume_from))
             if value), None)
        if incompatible:
            raise ValueError(
                f"--json cannot be combined with {incompatible}")
        # The same versioned serializer the analysis daemon answers with:
        # one wire format for the CLI, the engine, and the service.
        report = session.run(_selected_analysis(args), **_policy_options(args))
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    if args.resume_from or args.save_state:
        if args.compare:
            raise ValueError(
                "--compare cannot be combined with --resume-from/--save-state "
                "(one snapshot backs one configuration)")
        return _analyze_with_state(session, args)
    if args.audit:
        # --audit runs through the session: the audits verify the solver
        # state, which the image-builder path does not expose.  The output
        # is the call-graph report plus the audit verdict.
        name = _selected_analysis(args)
        report = session.run(name, **_policy_options(args))
        _print_call_graph_report(session, name, args, report=report)
        return _print_audit(report.raw)
    if args.compare:
        # ConfigAnalyzer.config is the one place that applies kernel knobs
        # to an engine configuration; the CLI only collects the flags.
        for name in ("pta", "skipflow"):
            config = get_analyzer(name).config(**_policy_options(args))
            _print_build_report(session, config, args)
        return 0
    name = _selected_analysis(args)
    analyzer = get_analyzer(name)
    if not has_engine_config(analyzer):
        if args.optimizations:
            raise ValueError(
                f"--optimizations needs a propagation-engine analysis, not "
                f"{analyzer.name!r}; use one of: "
                f"{', '.join(config_backed_analyzers())}")
        _print_call_graph_report(session, name, args)
        return 0
    config = analyzer.config(**_policy_options(args))
    _print_build_report(session, config, args)
    return 0


def _cmd_compare(args) -> int:
    session = _load_session(args)
    # Routed per analyzer by the session: engine-backed columns get the
    # kernel knobs, CHA/RTA columns (which have no engine) are unaffected.
    comparison = session.compare(args.analyses, **_policy_options(args))
    print(comparison.table())
    if not comparison.is_monotone_precision_ladder():
        print("note: reachable methods are not monotone in the given order "
              "(columns are not a precision ladder)", file=sys.stderr)
    return 0


def _cmd_delta(args) -> int:
    """Diff two source files structurally and report monotonicity.

    Exit code 0 means the new program is a monotone extension of the old
    one (a snapshot of the old program can be warm-resumed over the new);
    exit code 1 means it is not, and the violations say why.
    """
    old_program = compile_source(Path(args.old).read_text())
    new_program = compile_source(Path(args.new).read_text())
    delta = diff_programs(old_program, new_program)
    introduced = []
    if args.check:
        # Lint both sides and report only what the edit *introduced*: a
        # finding whose key (id@anchor) already existed in the old program
        # is pre-existing noise, not a regression of this edit.
        from repro.checks import lint_program, sort_diagnostics

        old_keys = {diag.key for diag in lint_program(old_program)}
        introduced = sort_diagnostics(
            diag for diag in lint_program(new_program)
            if diag.key not in old_keys)
    if args.json:
        payload = {
            "monotone": delta.is_monotone,
            "added_classes": list(delta.added_classes),
            "added_methods": list(delta.added_methods),
            "added_fields": list(delta.added_fields),
            "added_entry_points": list(delta.added_entry_points),
            "violations": list(delta.violations),
        }
        if args.check:
            payload["new_diagnostics"] = [diag.to_dict()
                                          for diag in introduced]
        print(json.dumps(payload, indent=2))
        return 0 if delta.is_monotone else 1
    print(f"delta {args.old} -> {args.new}: {delta.summary()}")
    for label, names in (("classes", delta.added_classes),
                         ("methods", delta.added_methods),
                         ("fields", delta.added_fields),
                         ("entry points", delta.added_entry_points)):
        if names:
            print(f"  added {label}:")
            for name in names:
                print(f"    + {name}")
    if delta.violations:
        print("  violations (warm resume would be unsound):")
        for violation in delta.violations:
            print(f"    ! {violation}")
    if args.check:
        if introduced:
            print(f"  new diagnostics introduced by the edit "
                  f"({len(introduced)}):")
            for diag in introduced:
                print(f"    * {diag.render()}")
        else:
            print("  new diagnostics introduced by the edit: none")
    return 0 if delta.is_monotone else 1


def _cmd_check(args) -> int:
    """Static diagnostics (``repro check``): lint passes, optional audit.

    The lint passes run over the compiled program; with ``--audit`` the
    selected analysis also runs and its artifacts go through the post-solve
    audits (including the snapshot round-trip).  Exit code 0 when no
    error-severity finding survives the baseline; with ``--strict``, any
    surviving finding fails the gate (exit ``EXIT_CHECK``).
    """
    from repro.checks import (
        Baseline,
        CheckContext,
        audit_result,
        available_checks,
        diagnostics_to_dict,
        has_errors,
        render_text,
        run_checks,
        sort_diagnostics,
    )

    if args.list:
        for check in available_checks():
            ids = ", ".join(check.ids)
            print(f"{check.kind:<6} {check.name:<22} {ids:<14} "
                  f"{check.description}")
        return 0
    if not args.source:
        raise ValueError("a source file is required unless --list is given")
    session = _load_session(args)
    baseline = Baseline.from_file(args.baseline) if args.baseline else None
    try:
        roots = tuple(session.resolve_roots())
    except NoEntryPointError:
        # Unresolvable roots are a finding here, not a crash: hand the raw
        # names to the roots lint so it reports them by id.
        roots = tuple(args.entry or ())
    diagnostics = run_checks(
        CheckContext(program=session.program, roots=roots),
        kind="lint", baseline=baseline)
    if args.audit:
        report = session.run(_selected_analysis(args),
                             **_policy_options(args))
        audits = audit_result(report.raw)
        if baseline is not None:
            audits, _ = baseline.apply(audits)
        diagnostics = sort_diagnostics(list(diagnostics) + list(audits))
    if args.json:
        print(json.dumps(diagnostics_to_dict(diagnostics), indent=2,
                         sort_keys=True))
    else:
        print(render_text(diagnostics, title=f"repro check: {args.source}"))
    if has_errors(diagnostics) or (args.strict and diagnostics):
        return EXIT_CHECK
    return 0


def _cmd_callgraph(args) -> int:
    session = _load_session(args)
    result = _engine_result(session, args, purpose="the call-graph export")
    _write_output(call_graph_to_dot(result), args.output)
    return 0


def _cmd_pvpg(args) -> int:
    session = _load_session(args)
    result = _engine_result(session, args, purpose="the PVPG export")
    _write_output(pvpg_to_dot(result, args.method or None), args.output)
    return 0


def _cmd_serve(args) -> int:
    """Run the analysis daemon in the foreground (``repro serve``).

    Sessions are held by one :class:`~repro.service.manager.SessionManager`
    for the life of the process; clients talk JSON over HTTP (see
    ``docs/service.md`` and :mod:`repro.service.client`).  ``--port 0``
    picks a free port and prints it, which is what the CI smoke uses.
    """
    from repro.service import SessionManager, make_server, run_server

    manager = SessionManager(max_live_sessions=args.max_sessions,
                             spill_dir=args.spill_dir or None)
    server = make_server(manager, host=args.host, port=args.port)
    host, port = server.server_address
    print(f"repro serve: listening on http://{host}:{port} "
          f"(max {args.max_sessions} live sessions, spill dir "
          f"{manager.spill_dir})", flush=True)
    run_server(server)
    return 0


def _cmd_bench(args) -> int:
    """List the benchmark specs of the evaluation with engine cache status.

    The cache column reflects the engine's per-configuration entries: ``hit``
    means both halves of the comparison (baseline and SkipFlow) are cached,
    ``base``/``skip`` that only that half is, ``miss`` that neither is.  The
    ``ir`` column reports whether the spec's program blob is in the shared
    program store under the cache directory: ``yes`` means pickle plus its
    ``.arena`` sibling, ``pickle`` a pickle *without* the arena buffer (a
    backfill gap — the arena and parallel kernels fall back to unpickling
    there), ``no`` neither.  ``--gc`` first drops result entries, IR blobs,
    and solver-state snapshots written by other code versions.
    """
    from repro.engine import ProgramStore, ResultCache, SnapshotStore
    from repro.engine.scheduler import estimated_cost
    from repro.workloads.suites import extended_suites, suite_by_name

    if args.suite:
        try:
            suites = {args.suite: suite_by_name(args.suite, scale=args.scale)}
        except KeyError as error:
            print(f"repro bench: {error.args[0]}", file=sys.stderr)
            return 2
    else:
        suites = extended_suites(scale=args.scale)

    baseline = AnalysisConfig.baseline_pta()
    skipflow = AnalysisConfig.skipflow()
    if args.saturation_threshold is not None:
        baseline = baseline.with_saturation_threshold(args.saturation_threshold)
        skipflow = skipflow.with_saturation_threshold(args.saturation_threshold)
    cache = store = snapshots = None
    if args.cache_dir:
        cache = ResultCache(args.cache_dir)
        store = ProgramStore(cache.directory / "programs",
                             code_version=cache.code_version)
        snapshots = SnapshotStore(cache.directory / "snapshots",
                                  code_version=cache.code_version)
    if args.gc:
        if cache is None:
            print("repro bench: --gc needs --cache-dir", file=sys.stderr)
            return 2
        stale_results = cache.gc()
        stale_blobs = store.gc()
        stale_snapshots = snapshots.gc()
        reclaimed = (cache.last_gc_bytes + store.last_gc_bytes
                     + snapshots.last_gc_bytes)
        print(f"gc: removed {stale_results} stale result entries, "
              f"{stale_blobs} stale IR blobs (pickles and arena buffers), "
              f"and {stale_snapshots} stale snapshots from {cache.directory} "
              f"(kept code version {cache.code_version}; "
              f"reclaimed {reclaimed} bytes)")

    header = (f"{'suite':<14} {'benchmark':<28} {'methods':>7} {'guarded':>7} "
              f"{'cost':>8}  {'cache':<5} ir")
    print(header)
    print("-" * len(header))
    cached = total = arena_gaps = 0
    for suite_name, specs in suites.items():
        for spec in specs:
            total += 1
            if cache is None:
                status, ir_status = "-", "-"
            else:
                base_half = cache.contains(cache.config_key(spec, baseline))
                skip_half = cache.contains(cache.config_key(spec, skipflow))
                if base_half and skip_half:
                    status = "hit"
                    cached += 1
                elif base_half:
                    status = "base"
                elif skip_half:
                    status = "skip"
                else:
                    status = "miss"
                if not store.contains(spec):
                    ir_status = "no"
                elif store.has_arena(spec):
                    ir_status = "yes"
                else:
                    ir_status = "pickle"
                    arena_gaps += 1
            print(f"{suite_name:<14} {spec.name:<28} "
                  f"{spec.expected_total_methods:>7} {spec.guarded_methods:>7} "
                  f"{estimated_cost(spec):>8.0f}  {status:<5} {ir_status}")
    if cache is not None:
        print(f"\n{cached}/{total} specs fully cached in {cache.directory} "
              f"(code version {cache.code_version})")
        if arena_gaps:
            print(f"{arena_gaps} pickled spec(s) lack the .arena sibling "
                  f"(arena/parallel kernels fall back to unpickling); "
                  f"rebuild them to backfill")
    else:
        print(f"\n{total} specs; pass --cache-dir to check cache status")
    return 0


def _cmd_fuzz(args) -> int:
    """Differential fuzzing (``repro fuzz``): see ``docs/fuzzing.md``.

    Three modes: a campaign (``--cases`` or ``--budget``) that generates
    seeded random (program, edit script) cases and checks every analyzer
    against the concrete interpreter across the full scheduling ×
    saturation × warm/cold matrix; ``--replay FILE`` to rerun one recorded
    repro file; ``--smoke`` to verify the oracle catches (and shrinks) a
    deliberately broken analyzer.  Exit code 1 means violations were found
    (or, under ``--smoke``, that the oracle failed its self-check).
    """
    from repro.fuzz import (
        check_case,
        load_repro,
        run_campaign,
        run_mutation_smoke,
        violations_from_dict,
    )

    kernels = tuple(args.kernel) if args.kernel else ("object",)
    if args.smoke:
        report, original, shrunk = run_mutation_smoke(seed=args.seed,
                                                      kernels=kernels)
        print(f"repro fuzz: mutation smoke caught "
              f"{len(report.violations)} violation(s) from the planted "
              f"analyzer bug and shrank the case from "
              f"{original.base.expected_total_methods} to "
              f"{shrunk.base.expected_total_methods} methods")
        return 0

    if args.replay:
        script, meta = load_repro(Path(args.replay))
        recorded = violations_from_dict(meta)
        threshold = args.threshold
        if threshold is None:
            threshold = meta.get("threshold") or 4
        report = check_case(script, threshold=threshold, kernels=kernels)
        print(f"repro fuzz: replayed {args.replay} "
              f"({report.prefixes_checked} prefixes, "
              f"{report.combos_checked} combos; "
              f"{len(recorded)} recorded violation(s))")
        for violation in report.violations:
            print(f"  {violation}")
        if report.ok:
            print("  no violations — the recorded failure no longer "
                  "reproduces on this build")
            return 0
        return 1

    if args.cases is not None and args.budget is not None:
        raise ValueError("pass --cases or --budget, not both")
    cases = args.cases if args.budget is None else None
    if cases is None and args.budget is None:
        cases = 25
    result = run_campaign(
        seed=args.seed, cases=cases, budget_seconds=args.budget,
        profile=args.profile, threshold=args.threshold or 4,
        kernels=kernels,
        out_dir=Path(args.out) if args.out else None,
        shrink=not args.no_shrink,
        log=lambda message: print(f"repro fuzz: {message}", flush=True))
    print(f"repro fuzz: seed {result.seed}, profile {result.profile}: "
          f"{result.cases_run} cases, {result.prefixes_checked} prefixes, "
          f"{result.combos_checked} analyzer combos in "
          f"{result.duration_seconds:.1f}s — "
          f"{len(result.failures)} failure(s)")
    for failure in result.failures:
        where = f" -> {failure.repro_path}" if failure.repro_path else ""
        print(f"  case {failure.case_index}: "
              f"{len(failure.report.violations)} violation(s){where}")
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub, analysis_flags=True):
        sub.add_argument("source", help="surface-language source file")
        sub.add_argument("--entry", action="append",
                         help="entry point (Class.method); may be repeated")
        if analysis_flags:
            sub.add_argument("--analysis", choices=available_analyzers(),
                             default=None,
                             help="registered analysis to run "
                                  "(default: skipflow)")
            sub.add_argument("--config", choices=sorted(
                                 config_backed_analyzers()),
                             default=None,
                             help="deprecated alias of --analysis (engine "
                                  "configurations only)")
        sub.add_argument("--reflection-config",
                         help="JSON reflection configuration file")
        add_policy_flags(sub)

    def add_policy_flags(sub):
        sub.add_argument("--saturation-threshold", type=int, default=None,
                         help="saturate flows whose type set exceeds this size "
                              "(default: off, exact paper semantics)")
        sub.add_argument("--saturation-policy", default=None,
                         choices=available_saturation_policies(),
                         help="sentinel a saturated flow collapses to "
                              "(needs --saturation-threshold; default: "
                              "closed-world once a threshold is set)")
        sub.add_argument("--scheduling", default=None,
                         choices=available_scheduling_policies(),
                         help="solver worklist policy (default: fifo, the "
                              "bit-identical seed order)")
        sub.add_argument("--kernel", default=None, choices=list(KERNELS),
                         help="propagation kernel: object (seed solver), "
                              "arena (flat integer-id kernel), or parallel "
                              "(partitioned workers over the shared-memory "
                              "arena) — bit-identical results; unsupported "
                              "solves fall back down the chain")
        sub.add_argument("--partitions", type=int, default=None,
                         help="worker count for --kernel parallel (default: "
                              "sized from the core budget; ignored by the "
                              "serial kernels)")

    analyze = subparsers.add_parser("analyze", help="run the analysis and print metrics")
    add_common(analyze)
    analyze.add_argument("--json", action="store_true",
                         help="print the full report as versioned JSON (the "
                              "same wire schema the analysis daemon serves)")
    analyze.add_argument("--compare", action="store_true",
                         help="run both the PTA baseline and SkipFlow")
    analyze.add_argument("--optimizations", action="store_true",
                         help="print optimization opportunities")
    analyze.add_argument("--list-unreachable", action="store_true",
                         help="list methods proven unreachable")
    analyze.add_argument("--save-state", metavar="PATH",
                         help="write the solver-state snapshot after the "
                              "solve (for later --resume-from)")
    analyze.add_argument("--resume-from", metavar="PATH",
                         help="warm-start from a solver-state snapshot; "
                              "falls back to a cold solve (with a warning) "
                              "when the program is not a monotone extension "
                              "of the snapshotted one")
    analyze.add_argument("--audit", action="store_true",
                         help="run the post-solve audits over the result "
                              "and fail (exit 7) on any error finding")
    analyze.set_defaults(func=_cmd_analyze)

    check = subparsers.add_parser(
        "check", help="static diagnostics: IR lint passes and post-solve "
                      "audits")
    check.add_argument("source", nargs="?", default=None,
                       help="surface-language source file (omit with --list)")
    check.add_argument("--entry", action="append",
                       help="entry point (Class.method); may be repeated")
    check.add_argument("--analysis", choices=available_analyzers(),
                       default=None,
                       help="analysis audited under --audit "
                            "(default: skipflow)")
    check.add_argument("--reflection-config",
                       help="JSON reflection configuration file")
    add_policy_flags(check)
    check.add_argument("--audit", action="store_true",
                       help="also run the selected analysis and audit its "
                            "artifacts (solver state + snapshot round-trip)")
    check.add_argument("--json", action="store_true",
                       help="print diagnostics as JSON (the same shape the "
                            "daemon's /v1/check endpoint serves)")
    check.add_argument("--baseline", metavar="FILE",
                       help="JSON suppression file of expected finding keys")
    check.add_argument("--strict", action="store_true",
                       help="fail on any surviving finding, not just errors")
    check.add_argument("--list", action="store_true",
                       help="list the registered checks and their ids")
    check.set_defaults(func=_cmd_check, config=None)

    compare = subparsers.add_parser(
        "compare", help="compare N named analyses over one program")
    compare.add_argument("source", help="surface-language source file")
    compare.add_argument("analyses", nargs="*",
                         default=["cha", "rta", "pta", "skipflow"],
                         help="analyses to compare, least precise first "
                              "(default: the cha rta pta skipflow ladder)")
    compare.add_argument("--entry", action="append",
                         help="entry point (Class.method); may be repeated")
    compare.add_argument("--reflection-config",
                         help="JSON reflection configuration file")
    add_policy_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    delta = subparsers.add_parser(
        "delta", help="diff two sources and check monotonicity for resume")
    delta.add_argument("old", help="the previously analyzed source file")
    delta.add_argument("new", help="the edited source file")
    delta.add_argument("--json", action="store_true",
                       help="print the delta as JSON")
    delta.add_argument("--check", action="store_true",
                       help="run the lint passes on both sides and report "
                            "diagnostics the edit introduced")
    delta.set_defaults(func=_cmd_delta)

    callgraph = subparsers.add_parser("callgraph", help="export the call graph as DOT")
    add_common(callgraph)
    callgraph.add_argument("--output", help="write DOT to this file")
    callgraph.set_defaults(func=_cmd_callgraph)

    pvpg = subparsers.add_parser("pvpg", help="export predicated value propagation graphs as DOT")
    add_common(pvpg)
    pvpg.add_argument("--method", action="append",
                      help="restrict to this method (may be repeated)")
    pvpg.add_argument("--output", help="write DOT to this file")
    pvpg.set_defaults(func=_cmd_pvpg)

    bench = subparsers.add_parser(
        "bench", help="list benchmark specs and engine cache status")
    bench.add_argument("--scale", type=float, default=2.0,
                       help="synthetic methods per thousand paper-reported methods")
    bench.add_argument("--suite", type=str, default=None,
                       help="restrict to one suite (DaCapo, Microservices, "
                            "Renaissance, WideHierarchy)")
    bench.add_argument("--cache-dir", type=str, default=None,
                       help="benchmark engine cache directory to inspect")
    bench.add_argument("--saturation-threshold", type=int, default=None,
                       help="cache status for configs with this saturation threshold")
    bench.add_argument("--gc", action="store_true",
                       help="drop cache entries and IR blobs from old code "
                            "versions (needs --cache-dir)")
    bench.set_defaults(func=_cmd_bench)

    serve = subparsers.add_parser(
        "serve", help="run the analysis daemon (analysis-as-a-service)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="bind port; 0 picks a free port and prints it "
                            "(default: 8321)")
    serve.add_argument("--max-sessions", type=int, default=8,
                       help="live sessions kept in memory before LRU "
                            "eviction to the spill directory (default: 8)")
    serve.add_argument("--spill-dir", default=None,
                       help="directory for evicted programs and solver "
                            "states (default: a per-process temp dir)")
    serve.set_defaults(func=_cmd_serve)

    fuzz = subparsers.add_parser(
        "fuzz", help="differential fuzzing: interpreter as soundness oracle")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; the case stream is a pure "
                           "function of it (default: 0)")
    fuzz.add_argument("--cases", type=int, default=None,
                      help="number of cases to run (default: 25 unless "
                           "--budget is given)")
    fuzz.add_argument("--budget", type=float, default=None,
                      help="wall-clock budget in seconds; runs cases until "
                           "it is spent (nightly mode)")
    fuzz.add_argument("--profile", choices=("quick", "deep"),
                      default="quick",
                      help="case size profile (default: quick)")
    fuzz.add_argument("--threshold", type=int, default=None,
                      help="saturation threshold swept by the oracle "
                           "(default: 4, low enough that small cases "
                           "saturate)")
    fuzz.add_argument("--out", default=None,
                      help="directory for shrunk repro files, one JSON per "
                           "failing case")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="record failing cases as generated, without "
                           "minimizing them first")
    fuzz.add_argument("--replay", metavar="FILE", default=None,
                      help="re-run one recorded repro file instead of a "
                           "campaign")
    fuzz.add_argument("--smoke", action="store_true",
                      help="mutation smoke: verify the oracle catches a "
                           "deliberately broken analyzer")
    fuzz.add_argument("--kernel", choices=list(KERNELS), action="append",
                      default=None,
                      help="propagation kernel(s) to fuzz; repeat the flag "
                           "to differentially compare kernels per combo "
                           "(default: object)")
    fuzz.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (NoEntryPointError, ProgramError, LangError, DeltaError,
            ValidationError, ValueError) as error:
        # Unknown analysis names arrive as UnknownAnalyzerError, a ValueError
        # subclass — a genuine internal KeyError still produces a traceback.
        # The exit code reflects the failure class (see repro.api.errors):
        # 2 usage, 3 no entry point, 4 compile/validation error, 5 delta,
        # 6 session, 7 failed diagnostics gate.
        print(f"repro: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    sys.exit(main())
