"""Deterministic generation of synthetic benchmark applications.

A :class:`BenchmarkSpec` describes one benchmark: the size of its
always-reachable core and a list of guarded library modules.  The generator
produces a closed-world :class:`~repro.ir.program.Program` whose ``Main.main``
entry point drives the core modules directly and each guarded module through
its guard pattern.

Generation is fully deterministic (no randomness is required: sizes and
pattern assignment are part of the spec), so benchmark numbers are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program
from repro.workloads.applications import (
    MicroserviceSpec,
    PluginSystemSpec,
    ReflectionSpec,
    add_microservice_module,
    add_plugin_system_module,
    add_reflection_module,
)
from repro.workloads.patterns import (
    COMPOSED_GUARD_METHODS,
    COMPOSED_GUARD_ROTATION,
    GUARD_PATTERNS,
    POPULATE_CHUNK,
    add_composed_hierarchies_module,
    add_guarded_module,
    add_library_module,
    add_wide_hierarchy_module,
)

#: Minimum size of one generated module (the dispatch hierarchy plus entry).
_MIN_MODULE_METHODS = 5
#: Preferred size of one core module; large cores are split into several.
_CORE_MODULE_METHODS = 60
#: Methods added by each guard pattern in front of its module (drivers, helpers).
GUARD_OVERHEAD_METHODS = {
    "null_default": 4,
    "boolean_flag": 3,
    "instanceof_flag": 3,
    "never_returns": 3,
}


@dataclass(frozen=True)
class GuardedModuleSpec:
    """One library module hidden behind a guard pattern."""

    pattern: str
    methods: int

    def __post_init__(self) -> None:
        if self.pattern not in GUARD_PATTERNS:
            raise ValueError(f"unknown guard pattern {self.pattern!r}")
        if self.methods < _MIN_MODULE_METHODS:
            object.__setattr__(self, "methods", _MIN_MODULE_METHODS)


@dataclass(frozen=True)
class HierarchySpec:
    """One wide type hierarchy: the saturation-cutoff stress knobs.

    ``depth`` and ``fanout`` shape the class tree (``fanout ** depth``
    allocated leaf types all flowing into one shared field), ``call_sites``
    controls how many megamorphic call sites dispatch over that field, and
    ``guarded_methods`` sizes the payload module hidden behind the
    never-instantiated rare-type guard (the part that becomes reachable — a
    measurable precision loss — once the cutoff saturates the guarded flow).
    See :func:`repro.workloads.patterns.add_wide_hierarchy_module`.
    """

    depth: int = 2
    fanout: int = 8
    call_sites: int = 4
    guarded_methods: int = 10

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"hierarchy depth must be >= 1, got {self.depth}")
        if self.fanout < 2:
            raise ValueError(f"hierarchy fanout must be >= 2, got {self.fanout}")
        if self.call_sites < 1:
            raise ValueError(
                f"hierarchy needs at least one call site, got {self.call_sites}")

    @property
    def leaf_count(self) -> int:
        """Allocated leaf types — the width of the shared field's type set."""
        return self.fanout ** self.depth

    @property
    def type_count(self) -> int:
        """All hierarchy classes: the tree plus the never-allocated rare type."""
        return sum(self.fanout ** d for d in range(self.depth + 1)) + 1

    @property
    def method_count(self) -> int:
        """Methods the hierarchy module adds to the program."""
        fills = -(-self.leaf_count // POPULATE_CHUNK)  # ceil division
        payload = max(self.guarded_methods, _MIN_MODULE_METHODS)
        # run per type + fills + dispatches + audit + drive + payload module.
        return self.type_count + fills + self.call_sites + 2 + payload


@dataclass(frozen=True)
class BenchmarkSpec:
    """Description of one synthetic benchmark application.

    ``paper_reachable_thousands`` and ``paper_reduction_percent`` record the
    PTA reachable-method count (in thousands) and the SkipFlow reduction the
    paper reports for the corresponding real benchmark; they are used for the
    paper-vs-measured comparison in EXPERIMENTS.md, not for generation.
    ``hierarchies`` attaches wide-hierarchy modules (hundreds of types per
    flow) for the saturation-cutoff study; the paper-mirroring Table 1 specs
    leave it empty.  With ``compose_hierarchies`` set, the 2–4 hierarchies
    are not generated as independent modules but *interleaved* below one
    common ancestor through a shared router field whose type set becomes the
    union of every leaf set, with the hierarchies cross-guarding each
    other's payloads (see :func:`repro.workloads.patterns.
    add_composed_hierarchies_module`).

    ``services``, ``plugins``, and ``reflection`` attach the realistic
    application-model families from :mod:`repro.workloads.applications`
    (flat service meshes, plugin registries with dormant extensions, and
    reflection-rooted handlers); the fuzzer composes them with the library
    families above.
    """

    name: str
    suite: str
    core_methods: int
    guarded_modules: Tuple[GuardedModuleSpec, ...]
    paper_reachable_thousands: Optional[float] = None
    paper_reduction_percent: Optional[float] = None
    hierarchies: Tuple[HierarchySpec, ...] = ()
    compose_hierarchies: bool = False
    services: Optional[MicroserviceSpec] = None
    plugins: Optional[PluginSystemSpec] = None
    reflection: Optional[ReflectionSpec] = None

    def __post_init__(self) -> None:
        if self.compose_hierarchies and not 2 <= len(self.hierarchies) <= 4:
            raise ValueError(
                f"compose_hierarchies interleaves 2-4 hierarchies, got "
                f"{len(self.hierarchies)}")

    @property
    def guarded_methods(self) -> int:
        return sum(module.methods for module in self.guarded_modules)

    @property
    def hierarchy_methods(self) -> int:
        return sum(hierarchy.method_count for hierarchy in self.hierarchies)

    @property
    def hierarchy_types(self) -> int:
        return sum(hierarchy.type_count for hierarchy in self.hierarchies)

    @property
    def composition_methods(self) -> int:
        """Methods the composed-module glue adds on top of the hierarchies.

        Mirrors :func:`~repro.workloads.patterns.
        add_composed_hierarchies_module` exactly: the common ancestor's
        ``run``, the router (one ``absorb`` and one ``audit`` per hierarchy,
        ``max(call_sites)`` routes, one ``drive``), and one rotating
        cross-guard library module per hierarchy.
        """
        if not self.compose_hierarchies:
            return 0
        count = len(self.hierarchies)
        router = 2 * count + max(h.call_sites for h in self.hierarchies) + 1
        guards = sum(
            max(COMPOSED_GUARD_METHODS, _MIN_MODULE_METHODS)
            + GUARD_OVERHEAD_METHODS[
                COMPOSED_GUARD_ROTATION[i % len(COMPOSED_GUARD_ROTATION)]]
            for i in range(count))
        return 1 + router + guards

    @property
    def application_methods(self) -> int:
        """Methods the application-model families add to the program.

        Includes the synthetic ``ReflectionRoots`` initializer the reflection
        configuration adds when it registers fields.
        """
        count = 0
        if self.services is not None:
            count += self.services.method_count
        if self.plugins is not None:
            count += self.plugins.method_count
        if self.reflection is not None:
            count += self.reflection.method_count
            if self.reflection.fields:
                count += 1  # ReflectionRoots.initializeReflectiveFields
        return count

    @property
    def expected_total_methods(self) -> int:
        """Approximate number of methods reachable by the baseline analysis."""
        overhead = sum(GUARD_OVERHEAD_METHODS[m.pattern] for m in self.guarded_modules)
        return (self.core_methods + self.guarded_methods + overhead
                + self.hierarchy_methods + self.composition_methods
                + self.application_methods
                + 1)  # + main

    @property
    def expected_reduction_fraction(self) -> float:
        """Approximate fraction of methods SkipFlow should prove unreachable."""
        total = self.expected_total_methods
        return self.guarded_methods / total if total else 0.0


def spec_from_reduction(
    name: str,
    suite: str,
    total_methods: int,
    reduction_percent: float,
    paper_reachable_thousands: Optional[float] = None,
    patterns: Sequence[str] = ("null_default", "boolean_flag",
                               "instanceof_flag", "never_returns"),
) -> BenchmarkSpec:
    """Build a spec whose guarded fraction approximates ``reduction_percent``.

    The guarded methods are split across the available guard patterns in
    round-robin fashion so that every benchmark exercises every pattern.
    """
    total_methods = max(total_methods, 40)
    guarded_total = int(round(total_methods * reduction_percent / 100.0))
    guarded_total = min(guarded_total, total_methods - 20)
    modules: List[GuardedModuleSpec] = []
    if guarded_total >= 2:
        # Even tiny guarded fractions get one minimum-size module so that the
        # benchmark still exhibits a (small) SkipFlow advantage, as in the paper.
        pattern_count = min(len(patterns), max(1, guarded_total // (2 * _MIN_MODULE_METHODS)))
        base_size = max(guarded_total // pattern_count, _MIN_MODULE_METHODS)
        remainder = max(guarded_total - base_size * pattern_count, 0)
        for index in range(pattern_count):
            size = base_size + (remainder if index == 0 else 0)
            modules.append(GuardedModuleSpec(patterns[index % len(patterns)], size))
    overhead = sum(GUARD_OVERHEAD_METHODS[m.pattern] for m in modules)
    core = max(total_methods - guarded_total - overhead - 1, 20)
    return BenchmarkSpec(
        name=name,
        suite=suite,
        core_methods=core,
        guarded_modules=tuple(modules),
        paper_reachable_thousands=paper_reachable_thousands,
        paper_reduction_percent=reduction_percent,
    )


def _sanitize(name: str) -> str:
    cleaned = [ch if ch.isalnum() else "_" for ch in name]
    text = "".join(cleaned)
    return text[:1].upper() + text[1:]


def generate_benchmark(spec: BenchmarkSpec) -> Program:
    """Generate the closed-world program for one benchmark spec."""
    pb = ProgramBuilder()
    prefix = _sanitize(spec.name)

    # Always-reachable core, split into modules of bounded size.
    core_entries: List[Tuple[str, str]] = []
    remaining = spec.core_methods
    core_index = 0
    while remaining > 0:
        size = min(_CORE_MODULE_METHODS, remaining)
        if remaining - size < _MIN_MODULE_METHODS and remaining - size > 0:
            size = remaining
        handle = add_library_module(pb, f"{prefix}Core{core_index}", size)
        core_entries.append((handle.entry_class, handle.entry_method))
        remaining -= handle.method_count
        core_index += 1

    # Guarded library modules.
    guard_drivers: List[str] = []
    for index, module_spec in enumerate(spec.guarded_modules):
        driver = add_guarded_module(
            pb, f"{prefix}Lib{index}", module_spec.methods, module_spec.pattern
        )
        guard_drivers.append(driver)

    # Wide-hierarchy modules (saturation stress; empty for Table 1 specs):
    # independent subtrees by default, or one interleaved composed module.
    if spec.compose_hierarchies:
        composed = add_composed_hierarchies_module(
            pb, f"{prefix}Mix",
            [(h.depth, h.fanout, h.call_sites, h.guarded_methods)
             for h in spec.hierarchies])
        guard_drivers.append(composed.driver)
    else:
        for index, hierarchy in enumerate(spec.hierarchies):
            handle = add_wide_hierarchy_module(
                pb, f"{prefix}Hier{index}",
                depth=hierarchy.depth, fanout=hierarchy.fanout,
                call_sites=hierarchy.call_sites,
                guarded_methods=hierarchy.guarded_methods,
            )
            guard_drivers.append(handle.driver)

    # Application-model families (service mesh, plugin registry, reflection).
    reflection_config = None
    if spec.services is not None:
        mesh = add_microservice_module(pb, f"{prefix}Net", spec.services)
        guard_drivers.append(mesh.driver)
    if spec.plugins is not None:
        registry = add_plugin_system_module(pb, f"{prefix}Plug", spec.plugins)
        guard_drivers.append(registry.driver)
    if spec.reflection is not None:
        handlers = add_reflection_module(pb, f"{prefix}Rx", spec.reflection)
        guard_drivers.append(handlers.driver)
        reflection_config = handlers.reflection

    # Main entry point.
    pb.declare_class("Main")
    mb = pb.method("Main", "main", is_static=True)
    for entry_class, entry_method in core_entries:
        mb.invoke_static(entry_class, entry_method)
    for driver in guard_drivers:
        driver_class, driver_method = driver.split(".", 1)
        mb.invoke_static(driver_class, driver_method)
    mb.return_void()
    pb.finish_method(mb)
    pb.add_entry_point("Main.main")
    program = pb.build()
    if reflection_config is not None:
        reflection_config.apply_to(program)
    return program


def generate_suite(specs: Sequence[BenchmarkSpec]) -> Dict[str, Program]:
    """Generate every benchmark of a suite, keyed by benchmark name."""
    return {spec.name: generate_benchmark(spec) for spec in specs}
