"""Code patterns used by the synthetic benchmark generator.

Two kinds of building blocks are provided:

* :func:`add_library_module` — a self-contained "library": a chain of classes
  with virtual dispatch, field traffic, and type/null/primitive checks whose
  methods all become reachable once the module's entry method is called;
* :func:`add_guarded_module` — a library module plus one of the guard
  patterns from Section 2 of the paper wired in front of its entry method.
  The guard is written so that SkipFlow proves the module unreachable while a
  flow-insensitive analysis cannot:

  ``null_default``
      Figure 1 (DaCapo Sunflow): an optional parameter receives a default
      allocation only when it is ``null``, but callers never pass ``null``.
  ``boolean_flag``
      A configuration method returns the constant ``false`` and the feature
      activation is guarded by it.
  ``instanceof_flag``
      Figure 2 (JDK virtual threads): a query method answers ``this
      instanceof Special`` and no ``Special`` instance exists.
  ``never_returns``
      A guard method never returns (models ``Assert.fail()``-style helpers),
      making everything after the call site dead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.ir.builder import ProgramBuilder


@dataclass(frozen=True)
class ModuleHandle:
    """Handle to a generated library module."""

    prefix: str
    entry_class: str
    entry_method: str
    method_names: tuple

    @property
    def entry_qualified_name(self) -> str:
        return f"{self.entry_class}.{self.entry_method}"

    @property
    def method_count(self) -> int:
        return len(self.method_names)


# --------------------------------------------------------------------------- #
# Library modules
# --------------------------------------------------------------------------- #
def add_library_module(pb: ProgramBuilder, prefix: str, method_count: int) -> ModuleHandle:
    """Generate a library module with approximately ``method_count`` methods.

    The module consists of a small dispatch hierarchy (``Base`` with two
    implementations) plus a chain of worker classes.  Each worker method
    allocates both implementations, stores them into a field, performs a
    primitive check, a null check, a type check, a polymorphic call, and then
    calls the next worker in the chain, so every metric of the evaluation is
    exercised proportionally to the module size.
    """
    if method_count < 5:
        method_count = 5
    methods: List[str] = []

    base = f"{prefix}Base"
    impl_a = f"{prefix}ImplA"
    impl_b = f"{prefix}ImplB"
    pb.declare_class(base)
    pb.declare_class(impl_a, superclass=base)
    pb.declare_class(impl_b, superclass=base)
    for class_name in (base, impl_a, impl_b):
        mb = pb.method(class_name, "run", return_type="int")
        value = mb.assign_any()
        mb.return_(value)
        pb.finish_method(mb)
        methods.append(f"{class_name}.run")

    worker_count = max(1, method_count - 4)
    workers = [f"{prefix}Worker{i}" for i in range(worker_count)]
    for index, class_name in enumerate(workers):
        pb.declare_class(class_name)
        pb.declare_field(class_name, "handler", base)
        pb.declare_field(class_name, "cache", base)
        pb.declare_field(class_name, "count", "int")
        methods.append(f"{class_name}.work")
    for index, class_name in enumerate(workers):
        _build_worker_method(pb, class_name, index, workers, base, impl_a, impl_b)

    entry_class = f"{prefix}Entry"
    pb.declare_class(entry_class)
    mb = pb.method(entry_class, "enter", is_static=True)
    first = mb.assign_new(workers[0])
    amount = mb.assign_any()
    mb.invoke_virtual(first, "work", [amount])
    mb.return_void()
    pb.finish_method(mb)
    methods.append(f"{entry_class}.enter")

    return ModuleHandle(prefix, entry_class, "enter", tuple(methods))


def _build_worker_method(pb: ProgramBuilder, class_name: str, index: int,
                         workers: List[str], base: str, impl_a: str, impl_b: str) -> None:
    mb = pb.method(class_name, "work", params=["int"], param_names=["amount"])
    this = mb.receiver
    amount = mb.param(0)

    # Instantiate both implementations so the dispatch below stays polymorphic.
    first = mb.assign_new(impl_a)
    mb.store_field(this, "handler", first)
    second = mb.assign_new(impl_b)
    mb.store_field(this, "handler", second)

    # Primitive check: the argument is unknown, so neither branch can be pruned.
    threshold = mb.assign_int(10)
    mb.if_lt(amount, threshold, "small", "large")
    mb.label("small")
    mb.store_field(this, "count", amount)
    mb.jump("after_prim", [])
    mb.label("large")
    big = mb.assign_any()
    mb.store_field(this, "count", big)
    mb.jump("after_prim", [])
    mb.merge("after_prim", [])

    # Null check on the cache field.  The field really can be null (it is
    # initialized to null before the handler is copied into it), so neither
    # configuration can remove this check; null-check counts therefore track
    # the number of reachable worker methods.
    initial = mb.assign_null()
    mb.store_field(this, "cache", initial)
    mb.store_field(this, "cache", second)
    cached = mb.load_field(this, "cache", base)
    mb.if_null(cached, "is_null", "not_null")
    mb.label("is_null")
    fallback = mb.assign_new(impl_a)
    mb.store_field(this, "cache", fallback)
    mb.jump("after_null", [])
    mb.label("not_null")
    mb.jump("after_null", [])
    mb.merge("after_null", [])

    # Polymorphic dispatch: both implementations flow into the receiver, so
    # this call site cannot be devirtualized by either configuration.
    current = mb.load_field(this, "handler", base)
    mb.invoke_virtual(current, "run", result_type="int")

    # Type check: both implementations reach it, so it cannot be folded.
    mb.if_instanceof(current, impl_a, "is_a", "is_b")
    mb.label("is_a")
    mb.invoke_virtual(current, "run", result_type="int")
    mb.jump("after_type", [])
    mb.label("is_b")
    mb.invoke_virtual(current, "run", result_type="int")
    mb.jump("after_type", [])
    mb.merge("after_type", [])

    # Chain to the next worker so the whole module is reachable from the entry.
    if index + 1 < len(workers):
        next_worker = mb.assign_new(workers[index + 1])
        mb.invoke_virtual(next_worker, "work", [amount])
    mb.return_void()
    pb.finish_method(mb)


# --------------------------------------------------------------------------- #
# Guard patterns
# --------------------------------------------------------------------------- #
def _add_null_default_guard(pb: ProgramBuilder, prefix: str, module: ModuleHandle) -> str:
    """Figure 1: an optional display parameter defaulted only when null."""
    display = f"{prefix}Display"
    frame_display = f"{prefix}FrameDisplay"
    scene = f"{prefix}Scene"
    pb.declare_class(display)
    pb.declare_class(frame_display, superclass=display)
    pb.declare_class(scene)

    mb = pb.method(display, "show")
    mb.return_void()
    pb.finish_method(mb)

    mb = pb.method(frame_display, "show")
    mb.invoke_static(module.entry_class, module.entry_method)
    mb.return_void()
    pb.finish_method(mb)

    mb = pb.method(scene, "render", params=[display], param_names=["display"])
    d = mb.param(0)
    mb.if_null(d, "is_null", "not_null")
    mb.label("is_null")
    default = mb.assign_new(frame_display)
    mb.jump("joined", [default])
    mb.label("not_null")
    mb.jump("joined", [d])
    joined = mb.merge("joined", ["display_joined"])[0]
    mb.invoke_virtual(joined, "show")
    mb.return_void()
    pb.finish_method(mb)

    driver = f"{prefix}Driver"
    pb.declare_class(driver)
    mb = pb.method(driver, "drive", is_static=True)
    scene_obj = mb.assign_new(scene)
    display_obj = mb.assign_new(display)
    mb.invoke_virtual(scene_obj, "render", [display_obj])
    mb.return_void()
    pb.finish_method(mb)
    return f"{driver}.drive"


def _add_boolean_flag_guard(pb: ProgramBuilder, prefix: str, module: ModuleHandle) -> str:
    """A configuration method returning the constant false guards the feature."""
    config = f"{prefix}Config"
    feature = f"{prefix}Feature"
    driver = f"{prefix}Driver"
    pb.declare_class(config)
    pb.declare_class(feature)
    pb.declare_class(driver)

    mb = pb.method(config, "isEnabled", return_type="int")
    disabled = mb.assign_int(0)
    mb.return_(disabled)
    pb.finish_method(mb)

    mb = pb.method(feature, "activate")
    mb.invoke_static(module.entry_class, module.entry_method)
    mb.return_void()
    pb.finish_method(mb)

    mb = pb.method(driver, "drive", is_static=True)
    config_obj = mb.assign_new(config)
    flag = mb.invoke_virtual(config_obj, "isEnabled", result_type="int")
    mb.if_true(flag, "enabled", "disabled")
    mb.label("enabled")
    feature_obj = mb.assign_new(feature)
    mb.invoke_virtual(feature_obj, "activate")
    mb.jump("end", [])
    mb.label("disabled")
    mb.jump("end", [])
    mb.merge("end", [])
    mb.return_void()
    pb.finish_method(mb)
    return f"{driver}.drive"


def _add_instanceof_flag_guard(pb: ProgramBuilder, prefix: str, module: ModuleHandle) -> str:
    """Figure 2: an interprocedural instanceof test on a never-instantiated type."""
    item = f"{prefix}Item"
    special = f"{prefix}SpecialItem"
    handler = f"{prefix}Handler"
    driver = f"{prefix}Driver"
    pb.declare_class(item)
    pb.declare_class(special, superclass=item)
    pb.declare_class(handler)
    pb.declare_class(driver)

    mb = pb.method(item, "isSpecial", return_type="int")
    mb.if_instanceof(mb.receiver, special, "yes", "no")
    mb.label("yes")
    one = mb.assign_int(1)
    mb.jump("done", [one])
    mb.label("no")
    zero = mb.assign_int(0)
    mb.jump("done", [zero])
    result = mb.merge("done", ["result"])[0]
    mb.return_(result)
    pb.finish_method(mb)

    mb = pb.method(handler, "handle")
    mb.invoke_static(module.entry_class, module.entry_method)
    mb.return_void()
    pb.finish_method(mb)

    mb = pb.method(driver, "drive", is_static=True)
    item_obj = mb.assign_new(item)
    special_flag = mb.invoke_virtual(item_obj, "isSpecial", result_type="int")
    mb.if_true(special_flag, "special", "ordinary")
    mb.label("special")
    handler_obj = mb.assign_new(handler)
    mb.invoke_virtual(handler_obj, "handle")
    mb.jump("end", [])
    mb.label("ordinary")
    mb.jump("end", [])
    mb.merge("end", [])
    mb.return_void()
    pb.finish_method(mb)
    return f"{driver}.drive"


def _add_never_returns_guard(pb: ProgramBuilder, prefix: str, module: ModuleHandle) -> str:
    """A guard method that never returns makes the following call dead."""
    validator = f"{prefix}Validator"
    launcher = f"{prefix}Launcher"
    driver = f"{prefix}Driver"
    pb.declare_class(validator)
    pb.declare_class(launcher)
    pb.declare_class(driver)

    # fail() spins forever: it has no reachable return, so its invoke flow
    # never receives a value and everything after the call site stays disabled.
    mb = pb.method(validator, "fail")
    mb.jump("loop", [])
    mb.merge("loop", [])
    mb.jump("loop", [])
    pb.finish_method(mb)

    mb = pb.method(launcher, "launch")
    mb.invoke_static(module.entry_class, module.entry_method)
    mb.return_void()
    pb.finish_method(mb)

    mb = pb.method(driver, "drive", is_static=True)
    validator_obj = mb.assign_new(validator)
    mb.invoke_virtual(validator_obj, "fail")
    launcher_obj = mb.assign_new(launcher)
    mb.invoke_virtual(launcher_obj, "launch")
    mb.return_void()
    pb.finish_method(mb)
    return f"{driver}.drive"


# --------------------------------------------------------------------------- #
# Wide type hierarchies (saturation stress)
# --------------------------------------------------------------------------- #
#: Leaf allocations per ``fill`` method, so populate CFGs stay bounded.
POPULATE_CHUNK = 24


@dataclass(frozen=True)
class HierarchyHandle:
    """Handle to a generated wide-hierarchy module."""

    prefix: str
    driver: str
    root_class: str
    rare_class: str
    leaf_classes: tuple
    class_names: tuple
    method_names: tuple
    payload_entry: str

    @property
    def type_count(self) -> int:
        return len(self.class_names)

    @property
    def leaf_count(self) -> int:
        return len(self.leaf_classes)

    @property
    def method_count(self) -> int:
        return len(self.method_names)


def add_wide_hierarchy_module(pb: ProgramBuilder, prefix: str, depth: int,
                              fanout: int, call_sites: int = 4,
                              guarded_methods: int = 10,
                              superclass: str = "Object") -> HierarchyHandle:
    """Add a module whose flows carry ``fanout ** depth`` receiver types.

    The module stresses the saturation cutoff with realistically wide type
    hierarchies:

    * a class tree of the given ``depth`` and ``fanout`` rooted at
      ``<prefix>Node``, every class concrete and overriding ``run`` — only
      the leaves are ever allocated;
    * a registry whose ``current`` field receives an allocation of *every*
      leaf, so the field flow (and everything downstream) holds the full
      leaf set — hundreds of types for the larger suite entries;
    * ``call_sites`` dispatch methods, each loading the field and invoking
      ``run`` on it, giving the solver that many megamorphic call sites;
    * an audit method guarding a payload library module behind
      ``current instanceof <prefix>Rare``, where ``Rare`` is a concrete but
      never-allocated subclass of the root.

    The ``Rare`` guard is what makes the cutoff's precision loss observable
    in reachable methods: the exact analysis sees that ``Rare`` is not among
    the leaf types flowing into ``current`` and proves the payload dead, but
    a saturated flow jumps to the closed-world top — which contains every
    *instantiable* (declared concrete) type, including ``Rare`` — so the
    ``instanceof`` filter can no longer discharge the guard and the payload
    (plus the ``run`` methods of the never-allocated inner nodes) becomes
    reachable.  Solver effort drops in exchange, because saturated flows
    skip all further joins.  ``benchmarks/run_saturation_study.py`` measures
    both sides of that trade.
    """
    if depth < 1:
        raise ValueError(f"hierarchy depth must be >= 1, got {depth}")
    if fanout < 2:
        raise ValueError(f"hierarchy fanout must be >= 2, got {fanout}")
    if call_sites < 1:
        raise ValueError(f"hierarchy needs at least one call site, got {call_sites}")

    methods: List[str] = []
    class_names: List[str] = []

    def _add_run_method(class_name: str) -> None:
        mb = pb.method(class_name, "run", return_type="int")
        value = mb.assign_any()
        mb.return_(value)
        pb.finish_method(mb)
        methods.append(f"{class_name}.run")

    # ``superclass`` roots the whole tree under an existing class (the
    # builder's default is ``Object``), which is how composed modules
    # interleave several hierarchies below one common ancestor; it adds no
    # classes or methods of its own.
    root = f"{prefix}Node"
    pb.declare_class(root, superclass=superclass)
    class_names.append(root)
    _add_run_method(root)

    # Breadth-first levels: every class is concrete; only leaves get allocated.
    level = [root]
    for d in range(1, depth + 1):
        next_level: List[str] = []
        for parent_index, parent in enumerate(level):
            for child_index in range(fanout):
                child = f"{prefix}L{d}N{parent_index * fanout + child_index}"
                pb.declare_class(child, superclass=parent)
                class_names.append(child)
                _add_run_method(child)
                next_level.append(child)
        level = next_level
    leaves = tuple(level)

    rare = f"{prefix}Rare"
    pb.declare_class(rare, superclass=root)
    class_names.append(rare)
    _add_run_method(rare)

    payload = add_library_module(pb, f"{prefix}Payload", guarded_methods)

    registry = f"{prefix}Registry"
    pb.declare_class(registry)
    pb.declare_field(registry, "current", root)

    # Populate methods: allocate every leaf into the shared field, chunked so
    # no single CFG grows with the hierarchy.
    fill_methods: List[str] = []
    for chunk_index in range(0, len(leaves), POPULATE_CHUNK):
        name = f"fill{chunk_index // POPULATE_CHUNK}"
        mb = pb.method(registry, name)
        for leaf in leaves[chunk_index:chunk_index + POPULATE_CHUNK]:
            obj = mb.assign_new(leaf)
            mb.store_field(mb.receiver, "current", obj)
        mb.return_void()
        pb.finish_method(mb)
        fill_methods.append(name)
        methods.append(f"{registry}.{name}")

    # Megamorphic dispatch: every call site sees the whole leaf set.
    dispatch_methods: List[str] = []
    for site in range(call_sites):
        name = f"dispatch{site}"
        mb = pb.method(registry, name)
        current = mb.load_field(mb.receiver, "current", root)
        mb.invoke_virtual(current, "run", result_type="int")
        mb.return_void()
        pb.finish_method(mb)
        dispatch_methods.append(name)
        methods.append(f"{registry}.{name}")

    # The rare-type guard in front of the payload module.
    mb = pb.method(registry, "audit")
    current = mb.load_field(mb.receiver, "current", root)
    mb.if_instanceof(current, rare, "rare", "common")
    mb.label("rare")
    mb.invoke_static(payload.entry_class, payload.entry_method)
    mb.jump("end", [])
    mb.label("common")
    mb.jump("end", [])
    mb.merge("end", [])
    mb.return_void()
    pb.finish_method(mb)
    methods.append(f"{registry}.audit")

    mb = pb.method(registry, "drive", is_static=True)
    reg = mb.assign_new(registry)
    for name in fill_methods:
        mb.invoke_virtual(reg, name)
    for name in dispatch_methods:
        mb.invoke_virtual(reg, name)
    mb.invoke_virtual(reg, "audit")
    mb.return_void()
    pb.finish_method(mb)
    methods.append(f"{registry}.drive")

    methods.extend(payload.method_names)
    return HierarchyHandle(
        prefix=prefix,
        driver=f"{registry}.drive",
        root_class=root,
        rare_class=rare,
        leaf_classes=leaves,
        class_names=tuple(class_names),
        method_names=tuple(methods),
        payload_entry=payload.entry_qualified_name,
    )


# --------------------------------------------------------------------------- #
# Composed multi-hierarchy modules (interleaved megamorphism)
# --------------------------------------------------------------------------- #
#: Guard patterns rotated across a composed module's cross-guard libraries.
COMPOSED_GUARD_ROTATION = ("instanceof_flag", "boolean_flag",
                           "null_default", "never_returns")

#: Library-module size behind each of a composed module's cross guards.
COMPOSED_GUARD_METHODS = 10


@dataclass(frozen=True)
class ComposedHandle:
    """Handle to a composed multi-hierarchy module."""

    prefix: str
    driver: str
    common_class: str
    router_class: str
    hierarchies: Tuple[HierarchyHandle, ...]
    cross_guard_drivers: Tuple[str, ...]
    method_names: Tuple[str, ...]

    @property
    def hierarchy_count(self) -> int:
        return len(self.hierarchies)

    @property
    def mixed_leaf_count(self) -> int:
        """Width of the router's ``mixed`` field: the union of every leaf set."""
        return sum(handle.leaf_count for handle in self.hierarchies)

    @property
    def method_count(self) -> int:
        return len(self.method_names)


def add_composed_hierarchies_module(
        pb: ProgramBuilder, prefix: str,
        shapes: Sequence[Tuple[int, int, int, int]]) -> ComposedHandle:
    """Add 2–4 wide hierarchies interleaved below one common ancestor.

    ``shapes`` lists one ``(depth, fanout, call_sites, guarded_methods)``
    tuple per hierarchy.  A single wide hierarchy keeps all of its
    megamorphism inside one subtree; real megamorphic workloads mix *several
    unrelated* hierarchies through shared infrastructure.  The composed
    module models that:

    * every hierarchy is rooted under one ``<prefix>Common`` class, so their
      values are type-compatible with shared slots;
    * a ``<prefix>Router`` *absorbs* each hierarchy's registry field into
      its own ``mixed`` field (declared ``Common``), whose type set becomes
      the union of every hierarchy's leaf set — megamorphism no single
      hierarchy produces — and dispatches ``run`` over it from
      ``max(call_sites)`` route methods;
    * the router cross-guards the hierarchies against each other: ``audit_i``
      tests ``mixed instanceof Rare_i`` (hierarchy *i*'s never-allocated
      type) and, inside the guard, calls hierarchy *i+1*'s payload module,
      so discharging each guard requires precision about the *interleaved*
      field, not just about one hierarchy;
    * one conventionally guarded library module per hierarchy rides along,
      rotating through :data:`COMPOSED_GUARD_ROTATION`, so the composed
      specs exercise every guard pattern of Section 2 next to the wide
      flows.

    The exact analysis proves every cross payload and guard module dead
    (no ``Rare`` is ever allocated, the guards never fire); a saturated
    ``mixed`` flow jumps to a top that contains every ``Rare``, so all of
    them re-inflate at once — which is what makes the composed specs the
    interesting half of the policy study.

    Returns a handle whose ``driver`` is the static method the benchmark
    ``main`` must call.
    """
    if not 2 <= len(shapes) <= 4:
        raise ValueError(
            f"a composed module interleaves 2-4 hierarchies, got {len(shapes)}")

    methods: List[str] = []

    common = f"{prefix}Common"
    pb.declare_class(common)
    mb = pb.method(common, "run", return_type="int")
    value = mb.assign_any()
    mb.return_(value)
    pb.finish_method(mb)
    methods.append(f"{common}.run")

    hierarchies: List[HierarchyHandle] = []
    for index, (depth, fanout, call_sites, guarded_methods) in enumerate(shapes):
        handle = add_wide_hierarchy_module(
            pb, f"{prefix}H{index}", depth=depth, fanout=fanout,
            call_sites=call_sites, guarded_methods=guarded_methods,
            superclass=common)
        hierarchies.append(handle)
        methods.extend(handle.method_names)

    router = f"{prefix}Router"
    pb.declare_class(router)
    pb.declare_field(router, "mixed", common)

    # Absorb: pull every hierarchy's (program-wide) registry field into the
    # shared mixed field, interleaving the leaf sets.
    for index, handle in enumerate(hierarchies):
        registry = handle.driver.split(".", 1)[0]
        mb = pb.method(router, f"absorb{index}")
        registry_obj = mb.assign_new(registry)
        current = mb.load_field(registry_obj, "current", handle.root_class)
        mb.store_field(mb.receiver, "mixed", current)
        mb.return_void()
        pb.finish_method(mb)
        methods.append(f"{router}.absorb{index}")

    # Route: megamorphic dispatch over the interleaved field.
    route_sites = max(call_sites for _, _, call_sites, _ in shapes)
    for site in range(route_sites):
        mb = pb.method(router, f"route{site}")
        mixed = mb.load_field(mb.receiver, "mixed", common)
        mb.invoke_virtual(mixed, "run", result_type="int")
        mb.return_void()
        pb.finish_method(mb)
        methods.append(f"{router}.route{site}")

    # Cross audits: hierarchy i's rare type guards hierarchy i+1's payload.
    for index, handle in enumerate(hierarchies):
        payload_entry = hierarchies[(index + 1) % len(hierarchies)].payload_entry
        mb = pb.method(router, f"audit{index}")
        mixed = mb.load_field(mb.receiver, "mixed", common)
        mb.if_instanceof(mixed, handle.rare_class, "rare", "common")
        mb.label("rare")
        mb.invoke_static(*payload_entry.split(".", 1))
        mb.jump("end", [])
        mb.label("common")
        mb.jump("end", [])
        mb.merge("end", [])
        mb.return_void()
        pb.finish_method(mb)
        methods.append(f"{router}.audit{index}")

    # One conventionally guarded library per hierarchy, rotating patterns.
    cross_drivers: List[str] = []
    for index in range(len(hierarchies)):
        pattern = COMPOSED_GUARD_ROTATION[index % len(COMPOSED_GUARD_ROTATION)]
        driver = add_guarded_module(pb, f"{prefix}X{index}",
                                    COMPOSED_GUARD_METHODS, pattern)
        cross_drivers.append(driver)

    mb = pb.method(router, "drive", is_static=True)
    for handle in hierarchies:
        mb.invoke_static(*handle.driver.split(".", 1))
    router_obj = mb.assign_new(router)
    for index in range(len(hierarchies)):
        mb.invoke_virtual(router_obj, f"absorb{index}")
    for site in range(route_sites):
        mb.invoke_virtual(router_obj, f"route{site}")
    for index in range(len(hierarchies)):
        mb.invoke_virtual(router_obj, f"audit{index}")
    for driver in cross_drivers:
        mb.invoke_static(*driver.split(".", 1))
    mb.return_void()
    pb.finish_method(mb)
    methods.append(f"{router}.drive")

    return ComposedHandle(
        prefix=prefix,
        driver=f"{router}.drive",
        common_class=common,
        router_class=router,
        hierarchies=tuple(hierarchies),
        cross_guard_drivers=tuple(cross_drivers),
        method_names=tuple(methods),
    )


#: Guard pattern name -> function adding the guard in front of a module.
GUARD_PATTERNS: Dict[str, Callable[[ProgramBuilder, str, ModuleHandle], str]] = {
    "null_default": _add_null_default_guard,
    "boolean_flag": _add_boolean_flag_guard,
    "instanceof_flag": _add_instanceof_flag_guard,
    "never_returns": _add_never_returns_guard,
}


def add_guarded_module(pb: ProgramBuilder, prefix: str, method_count: int,
                       pattern: str) -> str:
    """Add a library module behind one of the guard patterns.

    Returns the qualified name of the static driver method that the benchmark
    ``main`` must call.  The driver and the guard helper methods are always
    reachable; the module behind the guard is reachable only for analyses that
    cannot evaluate the guard.
    """
    if pattern not in GUARD_PATTERNS:
        raise ValueError(f"unknown guard pattern {pattern!r}; "
                         f"expected one of {sorted(GUARD_PATTERNS)}")
    module = add_library_module(pb, prefix, method_count)
    return GUARD_PATTERNS[pattern](pb, prefix, module)
