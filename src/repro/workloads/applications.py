"""Realistic application-model workload families (ROADMAP item 4).

The Table 1 specs model *libraries*: cores, guarded modules, and wide type
hierarchies.  Real applications the paper's analysis feeds into an AOT
compiler have different shapes, and the differential fuzzer needs them at
10-100x the current spec sizes:

:func:`add_microservice_module`
    A *flat* service topology: one ``ServiceBase`` with many concrete
    services overriding ``handle``, a mesh whose ``backbone`` field absorbs
    every deployed service (flat megamorphism, unlike the deep hierarchy
    family), a relay chain between services (call-graph depth), a
    null-checked failover path, and a never-deployed ``Canary`` service
    guarding a fallback payload — the ``instanceof`` guard an exact or
    allocation-aware analysis discharges.

:func:`add_plugin_system_module`
    A plugin registry where only a subset of the declared plugins is ever
    installed.  Each *dormant* plugin has a ``Boot.register`` method that
    allocates the plugin into the registry ("self-registration") and pulls
    in a payload module — code that is dead unless the plugin is already in
    the registry.  This is the family where the whole-program
    ``allocated-type`` sentinel re-inflates (the dormant allocation sites
    exist in the program *text*) while the reachability-refined
    ``allocated-type-reachable`` policy keeps discharging the guards: the
    dormant allocations sit in methods that never become reachable.

:func:`add_reflection_module`
    Handler classes whose methods are reachable only through a
    :class:`~repro.image.reflection.ReflectionConfig`: the handlers are
    registered as reflective methods, a config object's fields are
    registered as reflective fields, and a statically-reachable gateway
    dispatches over one of those fields — sound only because the synthetic
    reflection root stores every instantiable handler into it.

All builders follow :mod:`repro.workloads.patterns` conventions: fully
deterministic, names derived from the prefix alone, chunked population
methods so no single CFG grows with the family size, and frozen spec
dataclasses so the engine's caches can hash them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.image.reflection import ReflectionConfig
from repro.ir.builder import ProgramBuilder
from repro.workloads.patterns import POPULATE_CHUNK, add_library_module

#: Minimum payload-module size (mirrors the generator's module floor).
_MIN_PAYLOAD_METHODS = 5


# --------------------------------------------------------------------------- #
# Specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MicroserviceSpec:
    """One flat service-mesh module: ``services`` concrete handlers."""

    services: int = 6
    routes: int = 3
    chained: bool = True
    guarded_methods: int = 8

    def __post_init__(self) -> None:
        if self.services < 2:
            raise ValueError(f"a mesh needs >= 2 services, got {self.services}")
        if self.routes < 1:
            raise ValueError(f"a mesh needs >= 1 route, got {self.routes}")

    @property
    def method_count(self) -> int:
        """Methods :func:`add_microservice_module` adds for this spec."""
        deploys = -(-self.services // POPULATE_CHUNK)  # ceil division
        payload = max(self.guarded_methods, _MIN_PAYLOAD_METHODS)
        # base.handle + per-service handle + canary.handle + deploys
        # + routes + failover + audit + drive + payload module.
        return (1 + self.services + 1 + deploys + self.routes + 3
                + payload)


@dataclass(frozen=True)
class PluginSystemSpec:
    """A plugin registry: ``active`` of ``plugins`` declared extensions installed."""

    plugins: int = 6
    active: int = 3
    hooks: int = 3
    payload_methods: int = 8

    def __post_init__(self) -> None:
        if self.plugins < 2:
            raise ValueError(f"a plugin system needs >= 2 plugins, got {self.plugins}")
        if not 1 <= self.active <= self.plugins:
            raise ValueError(
                f"active plugins must be in [1, {self.plugins}], got {self.active}")
        if self.hooks < 1:
            raise ValueError(f"a plugin system needs >= 1 hook, got {self.hooks}")

    @property
    def dormant(self) -> int:
        """Declared-but-never-installed plugins (the re-inflation targets)."""
        return self.plugins - self.active

    @property
    def method_count(self) -> int:
        """Methods :func:`add_plugin_system_module` adds for this spec."""
        installs = -(-self.active // POPULATE_CHUNK)
        payload = max(self.payload_methods, _MIN_PAYLOAD_METHODS)
        # base.onEvent + per-plugin onEvent + installs + hooks
        # + per-dormant (scan + Boot.register) + drive + shared payload.
        return (1 + self.plugins + installs + self.hooks
                + 2 * self.dormant + 1 + payload)


@dataclass(frozen=True)
class ReflectionSpec:
    """Reflectively-invoked handlers plus reflective config fields."""

    handlers: int = 3
    fields: int = 1
    payload_methods: int = 6

    def __post_init__(self) -> None:
        if self.handlers < 1:
            raise ValueError(f"need >= 1 reflective handler, got {self.handlers}")
        if self.fields < 0:
            raise ValueError(f"reflective field count must be >= 0, got {self.fields}")

    @property
    def method_count(self) -> int:
        """Methods :func:`add_reflection_module` adds for this spec.

        Excludes the synthetic ``ReflectionRoots.initializeReflectiveFields``
        the config application adds later (one per program, not per module).
        """
        payload = max(self.payload_methods, _MIN_PAYLOAD_METHODS)
        # base.onMessage + per-handler onMessage + gateway dispatches (one
        # per field, min 1) + payload module.
        return 1 + self.handlers + max(self.fields, 1) + payload


# --------------------------------------------------------------------------- #
# Handles
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MicroserviceHandle:
    prefix: str
    driver: str
    base_class: str
    mesh_class: str
    canary_class: str
    service_classes: Tuple[str, ...]
    method_names: Tuple[str, ...]

    @property
    def method_count(self) -> int:
        return len(self.method_names)


@dataclass(frozen=True)
class PluginSystemHandle:
    prefix: str
    driver: str
    base_class: str
    registry_class: str
    active_classes: Tuple[str, ...]
    dormant_classes: Tuple[str, ...]
    boot_methods: Tuple[str, ...]
    method_names: Tuple[str, ...]

    @property
    def method_count(self) -> int:
        return len(self.method_names)


@dataclass(frozen=True)
class ReflectionHandle:
    prefix: str
    driver: str
    base_class: str
    config_class: str
    handler_classes: Tuple[str, ...]
    reflection: ReflectionConfig
    method_names: Tuple[str, ...]

    @property
    def method_count(self) -> int:
        return len(self.method_names)


# --------------------------------------------------------------------------- #
# Microservice topology
# --------------------------------------------------------------------------- #
def add_microservice_module(pb: ProgramBuilder, prefix: str,
                            spec: MicroserviceSpec) -> MicroserviceHandle:
    """Add a flat service mesh; returns the handle with its static driver."""
    methods: List[str] = []

    base = f"{prefix}ServiceBase"
    pb.declare_class(base)
    mb = pb.method(base, "handle", return_type="int")
    value = mb.assign_any()
    mb.return_(value)
    pb.finish_method(mb)
    methods.append(f"{base}.handle")

    services = tuple(f"{prefix}Svc{i}" for i in range(spec.services))
    for index, service in enumerate(services):
        pb.declare_class(service, superclass=base)
    for index, service in enumerate(services):
        mb = pb.method(service, "handle", return_type="int")
        value = mb.assign_any()
        # The relay chain: service i forwards to service i+1, modeling the
        # call-graph depth of real request paths (the last service is a sink).
        if spec.chained and index + 1 < len(services):
            downstream = mb.assign_new(services[index + 1])
            mb.invoke_virtual(downstream, "handle", result_type="int")
        mb.return_(value)
        pb.finish_method(mb)
        methods.append(f"{service}.handle")

    canary = f"{prefix}Canary"
    pb.declare_class(canary, superclass=base)
    mb = pb.method(canary, "handle", return_type="int")
    value = mb.assign_any()
    mb.return_(value)
    pb.finish_method(mb)
    methods.append(f"{canary}.handle")

    payload = add_library_module(pb, f"{prefix}Fallback", spec.guarded_methods)

    mesh = f"{prefix}Mesh"
    pb.declare_class(mesh)
    pb.declare_field(mesh, "backbone", base)

    deploy_methods: List[str] = []
    for chunk_index in range(0, len(services), POPULATE_CHUNK):
        name = f"deploy{chunk_index // POPULATE_CHUNK}"
        mb = pb.method(mesh, name)
        for service in services[chunk_index:chunk_index + POPULATE_CHUNK]:
            obj = mb.assign_new(service)
            mb.store_field(mb.receiver, "backbone", obj)
        mb.return_void()
        pb.finish_method(mb)
        deploy_methods.append(name)
        methods.append(f"{mesh}.{name}")

    # Optional-dependency failover: the backbone really can be unset (null
    # is stored first), so the null check cannot be folded by any analysis.
    mb = pb.method(mesh, "failover")
    unset = mb.assign_null()
    mb.store_field(mb.receiver, "backbone", unset)
    current = mb.load_field(mb.receiver, "backbone", base)
    mb.if_null(current, "missing", "present")
    mb.label("missing")
    default = mb.assign_new(services[0])
    mb.store_field(mb.receiver, "backbone", default)
    mb.jump("end", [])
    mb.label("present")
    mb.jump("end", [])
    mb.merge("end", [])
    mb.return_void()
    pb.finish_method(mb)
    methods.append(f"{mesh}.failover")

    route_methods: List[str] = []
    for site in range(spec.routes):
        name = f"route{site}"
        mb = pb.method(mesh, name)
        current = mb.load_field(mb.receiver, "backbone", base)
        mb.invoke_virtual(current, "handle", result_type="int")
        mb.return_void()
        pb.finish_method(mb)
        route_methods.append(name)
        methods.append(f"{mesh}.{name}")

    # The canary guard: no Canary is ever deployed, so the fallback payload
    # is dead for any analysis precise enough to discharge the instanceof.
    mb = pb.method(mesh, "audit")
    current = mb.load_field(mb.receiver, "backbone", base)
    mb.if_instanceof(current, canary, "degraded", "healthy")
    mb.label("degraded")
    mb.invoke_static(payload.entry_class, payload.entry_method)
    mb.jump("end", [])
    mb.label("healthy")
    mb.jump("end", [])
    mb.merge("end", [])
    mb.return_void()
    pb.finish_method(mb)
    methods.append(f"{mesh}.audit")

    mb = pb.method(mesh, "drive", is_static=True)
    instance = mb.assign_new(mesh)
    mb.invoke_virtual(instance, "failover")
    for name in deploy_methods:
        mb.invoke_virtual(instance, name)
    for name in route_methods:
        mb.invoke_virtual(instance, name)
    mb.invoke_virtual(instance, "audit")
    mb.return_void()
    pb.finish_method(mb)
    methods.append(f"{mesh}.drive")

    methods.extend(payload.method_names)
    return MicroserviceHandle(
        prefix=prefix,
        driver=f"{mesh}.drive",
        base_class=base,
        mesh_class=mesh,
        canary_class=canary,
        service_classes=services,
        method_names=tuple(methods),
    )


# --------------------------------------------------------------------------- #
# Plugin system
# --------------------------------------------------------------------------- #
def add_plugin_system_module(pb: ProgramBuilder, prefix: str,
                             spec: PluginSystemSpec) -> PluginSystemHandle:
    """Add a plugin registry with dormant self-registering extensions.

    The dormant plugins are the workload's point: plugin ``i >= active``
    is allocated *only* inside ``{prefix}Boot{i}.register``, which is called
    only when ``registry.slot instanceof {prefix}Ext{i}`` already holds —
    dead code under the exact semantics.  A whole-program allocation scan
    still counts those ``new`` sites, so the ``allocated-type`` sentinel
    re-inflates every dormant guard at once when the slot saturates; the
    reachability-refined sentinel does not, because ``Boot{i}.register``
    never becomes reachable.
    """
    methods: List[str] = []

    base = f"{prefix}Base"
    pb.declare_class(base)
    mb = pb.method(base, "onEvent", return_type="int")
    value = mb.assign_any()
    mb.return_(value)
    pb.finish_method(mb)
    methods.append(f"{base}.onEvent")

    plugins = tuple(f"{prefix}Ext{i}" for i in range(spec.plugins))
    for plugin in plugins:
        pb.declare_class(plugin, superclass=base)
        mb = pb.method(plugin, "onEvent", return_type="int")
        value = mb.assign_any()
        mb.return_(value)
        pb.finish_method(mb)
        methods.append(f"{plugin}.onEvent")
    active = plugins[:spec.active]
    dormant = plugins[spec.active:]

    payload = add_library_module(pb, f"{prefix}Dormant", spec.payload_methods)

    registry = f"{prefix}Registry"
    pb.declare_class(registry)
    pb.declare_field(registry, "slot", base)

    install_methods: List[str] = []
    for chunk_index in range(0, len(active), POPULATE_CHUNK):
        name = f"install{chunk_index // POPULATE_CHUNK}"
        mb = pb.method(registry, name)
        for plugin in active[chunk_index:chunk_index + POPULATE_CHUNK]:
            obj = mb.assign_new(plugin)
            mb.store_field(mb.receiver, "slot", obj)
        mb.return_void()
        pb.finish_method(mb)
        install_methods.append(name)
        methods.append(f"{registry}.{name}")

    hook_methods: List[str] = []
    for site in range(spec.hooks):
        name = f"hook{site}"
        mb = pb.method(registry, name)
        current = mb.load_field(mb.receiver, "slot", base)
        mb.invoke_virtual(current, "onEvent", result_type="int")
        mb.return_void()
        pb.finish_method(mb)
        hook_methods.append(name)
        methods.append(f"{registry}.{name}")

    # Dormant plugins: a scan per plugin, guarding its self-registration.
    boot_methods: List[str] = []
    scan_methods: List[str] = []
    for index, plugin in enumerate(dormant):
        boot = f"{prefix}Boot{index}"
        pb.declare_class(boot)
        mb = pb.method(boot, "register", is_static=True)
        holder = mb.assign_new(registry)
        obj = mb.assign_new(plugin)
        mb.store_field(holder, "slot", obj)
        mb.invoke_static(payload.entry_class, payload.entry_method)
        mb.return_void()
        pb.finish_method(mb)
        boot_methods.append(f"{boot}.register")
        methods.append(f"{boot}.register")

        name = f"scan{index}"
        mb = pb.method(registry, name)
        current = mb.load_field(mb.receiver, "slot", base)
        mb.if_instanceof(current, plugin, "installed", "dormant")
        mb.label("installed")
        mb.invoke_static(boot, "register")
        mb.jump("end", [])
        mb.label("dormant")
        mb.jump("end", [])
        mb.merge("end", [])
        mb.return_void()
        pb.finish_method(mb)
        scan_methods.append(name)
        methods.append(f"{registry}.{name}")

    mb = pb.method(registry, "drive", is_static=True)
    instance = mb.assign_new(registry)
    for name in install_methods:
        mb.invoke_virtual(instance, name)
    for name in hook_methods:
        mb.invoke_virtual(instance, name)
    for name in scan_methods:
        mb.invoke_virtual(instance, name)
    mb.return_void()
    pb.finish_method(mb)
    methods.append(f"{registry}.drive")

    methods.extend(payload.method_names)
    return PluginSystemHandle(
        prefix=prefix,
        driver=f"{registry}.drive",
        base_class=base,
        registry_class=registry,
        active_classes=active,
        dormant_classes=dormant,
        boot_methods=tuple(boot_methods),
        method_names=tuple(methods),
    )


# --------------------------------------------------------------------------- #
# Reflection-heavy programs
# --------------------------------------------------------------------------- #
def add_reflection_module(pb: ProgramBuilder, prefix: str,
                          spec: ReflectionSpec) -> ReflectionHandle:
    """Add handlers reachable only through a reflection configuration.

    Returns a handle whose ``reflection`` config must be applied to the
    built program (:meth:`ReflectionConfig.apply_to`): the handlers'
    ``onMessage`` methods become reflective roots, and the config class's
    ``mode{j}`` fields become reflective fields a synthetic root populates
    with every instantiable handler.  The statically-reachable gateway
    dispatches over those fields, which is sound only under that seeding.
    """
    methods: List[str] = []
    reflection = ReflectionConfig()

    base = f"{prefix}HandlerBase"
    pb.declare_class(base)
    mb = pb.method(base, "onMessage", params=["int"], param_names=["payload"],
                   return_type="int")
    value = mb.assign_any()
    mb.return_(value)
    pb.finish_method(mb)
    methods.append(f"{base}.onMessage")

    payload = add_library_module(pb, f"{prefix}Payload", spec.payload_methods)

    handlers = tuple(f"{prefix}Handler{i}" for i in range(spec.handlers))
    for handler in handlers:
        pb.declare_class(handler, superclass=base)
        mb = pb.method(handler, "onMessage", params=["int"],
                       param_names=["payload"], return_type="int")
        mb.invoke_static(payload.entry_class, payload.entry_method)
        value = mb.assign_any()
        mb.return_(value)
        pb.finish_method(mb)
        methods.append(f"{handler}.onMessage")
        reflection.register_method(f"{handler}.onMessage")

    config = f"{prefix}Config"
    pb.declare_class(config)
    for index in range(spec.fields):
        pb.declare_field(config, f"mode{index}", base)
        reflection.register_field(config, f"mode{index}")

    # The gateway is statically reachable and dispatches over the reflective
    # fields; without the synthetic reflection root its loads would only see
    # the explicit null below, so the dispatch would be (unsoundly) dead.
    gateway = f"{prefix}Gateway"
    pb.declare_class(gateway)
    for index in range(max(spec.fields, 1)):
        mb = pb.method(gateway, f"dispatch{index}", is_static=True)
        holder = mb.assign_new(config)
        if index < spec.fields:
            unset = mb.assign_null()
            mb.store_field(holder, f"mode{index}", unset)
            current = mb.load_field(holder, f"mode{index}", base)
            mb.if_null(current, "missing", "bound")
            mb.label("missing")
            mb.jump("end", [])
            mb.label("bound")
            mb.invoke_virtual(current, "onMessage", [mb.assign_any()],
                              result_type="int")
            mb.jump("end", [])
            mb.merge("end", [])
        mb.return_void()
        pb.finish_method(mb)
        methods.append(f"{gateway}.dispatch{index}")

    methods.extend(payload.method_names)
    return ReflectionHandle(
        prefix=prefix,
        driver=f"{gateway}.dispatch0",
        base_class=base,
        config_class=config,
        handler_classes=handlers,
        reflection=reflection,
        method_names=tuple(methods),
    )
