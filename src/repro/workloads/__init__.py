"""Synthetic benchmark applications.

The paper evaluates SkipFlow on DaCapo, Renaissance, and a set of microservice
applications running on the JVM.  Those workloads cannot be executed here
(no JVM, no network, and whole-program bytecode conversion would dominate the
time budget), so this package generates *synthetic closed-world applications*
with the same structural characteristics:

* a core of always-reachable code (chained calls, virtual dispatch, field
  traffic, type/null/primitive checks);
* library modules that are only referenced from branches guarded by the code
  patterns of Section 2 — optional ``null`` default arguments, interprocedural
  boolean flags, ``instanceof``-based feature tests, and never-returning
  guard methods.  A flow-insensitive analysis must keep these libraries
  reachable; SkipFlow proves them dead;
* wide type hierarchies (the ``wide-hierarchy`` family) whose flows carry
  hundreds of allocated leaf types, stressing the saturation cutoff in a way
  the paper-mirroring specs never do.

Each benchmark of the three paper suites is represented by a
:class:`~repro.workloads.generator.BenchmarkSpec` whose guarded fraction is
taken from the reduction the paper reports for that benchmark, so that the
*shape* of Table 1 and Figure 9 is preserved; the extra ``WideHierarchy``
suite parameterizes :class:`~repro.workloads.generator.HierarchySpec` knobs
(depth, fanout, call-site polymorphism) instead.
"""

from repro.workloads.edits import (
    EditAnchor,
    EditScriptSpec,
    EditStepSpec,
    build_edit_delta,
    default_edit_script,
    edit_anchor,
    edit_deltas,
)
from repro.workloads.generator import (
    BenchmarkSpec,
    GuardedModuleSpec,
    HierarchySpec,
    generate_benchmark,
)
from repro.workloads.patterns import (
    GUARD_PATTERNS,
    HierarchyHandle,
    ModuleHandle,
    add_guarded_module,
    add_library_module,
    add_wide_hierarchy_module,
)
from repro.workloads.suites import (
    all_suites,
    dacapo_suite,
    extended_suites,
    microservices_suite,
    renaissance_suite,
    suite_by_name,
    wide_hierarchy_suite,
)

__all__ = [
    "BenchmarkSpec",
    "EditAnchor",
    "EditScriptSpec",
    "EditStepSpec",
    "GUARD_PATTERNS",
    "GuardedModuleSpec",
    "HierarchyHandle",
    "HierarchySpec",
    "ModuleHandle",
    "add_guarded_module",
    "add_library_module",
    "add_wide_hierarchy_module",
    "all_suites",
    "build_edit_delta",
    "dacapo_suite",
    "default_edit_script",
    "edit_anchor",
    "edit_deltas",
    "extended_suites",
    "generate_benchmark",
    "microservices_suite",
    "renaissance_suite",
    "suite_by_name",
    "wide_hierarchy_suite",
]
