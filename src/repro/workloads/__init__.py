"""Synthetic benchmark applications.

The paper evaluates SkipFlow on DaCapo, Renaissance, and a set of microservice
applications running on the JVM.  Those workloads cannot be executed here
(no JVM, no network, and whole-program bytecode conversion would dominate the
time budget), so this package generates *synthetic closed-world applications*
with the same structural characteristics:

* a core of always-reachable code (chained calls, virtual dispatch, field
  traffic, type/null/primitive checks);
* library modules that are only referenced from branches guarded by the code
  patterns of Section 2 — optional ``null`` default arguments, interprocedural
  boolean flags, ``instanceof``-based feature tests, and never-returning
  guard methods.  A flow-insensitive analysis must keep these libraries
  reachable; SkipFlow proves them dead.

Each benchmark of the three suites is represented by a
:class:`~repro.workloads.generator.BenchmarkSpec` whose guarded fraction is
taken from the reduction the paper reports for that benchmark, so that the
*shape* of Table 1 and Figure 9 is preserved.
"""

from repro.workloads.generator import BenchmarkSpec, GuardedModuleSpec, generate_benchmark
from repro.workloads.patterns import (
    GUARD_PATTERNS,
    add_guarded_module,
    add_library_module,
    ModuleHandle,
)
from repro.workloads.suites import (
    all_suites,
    dacapo_suite,
    microservices_suite,
    renaissance_suite,
    suite_by_name,
)

__all__ = [
    "BenchmarkSpec",
    "GUARD_PATTERNS",
    "GuardedModuleSpec",
    "ModuleHandle",
    "add_guarded_module",
    "add_library_module",
    "all_suites",
    "dacapo_suite",
    "generate_benchmark",
    "microservices_suite",
    "renaissance_suite",
    "suite_by_name",
]
