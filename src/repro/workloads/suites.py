"""The benchmark suites: the paper's Table 1 plus the saturation stress suite.

The three paper suites mirror the benchmarks of the evaluation: 8 DaCapo
benchmarks, 9 microservice applications, and 18 Renaissance benchmarks.  For
every benchmark we record the PTA reachable-method count and the SkipFlow
reduction reported in Table 1; the synthetic benchmark is sized as ``scale``
methods per thousand reported methods and its guarded fraction is set to the
reported reduction, so the relative results (who wins, by roughly how much)
can be compared directly against the paper.

The additional ``WideHierarchy`` suite goes beyond the paper: its specs carry
type hierarchies of hundreds of allocated leaf types flowing into shared
fields and megamorphic call sites, which the Table 1 specs (a handful of
types per flow) never produce.  It exists to measure the saturation cutoff
(``benchmarks/run_saturation_study.py``) and is deliberately *not* part of
:func:`all_suites`, so the Table 1 / Figure 9 reproductions keep mirroring
the paper exactly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.generator import (
    BenchmarkSpec,
    GuardedModuleSpec,
    HierarchySpec,
    spec_from_reduction,
)

#: Default number of synthetic methods generated per thousand reported methods.
DEFAULT_SCALE = 3.0

#: (benchmark, PTA reachable methods in thousands, SkipFlow reduction percent)
_DACAPO_ROWS = [
    ("fop", 96.1, 7.1),
    ("h2", 43.3, 7.6),
    ("jython", 74.9, 6.0),
    ("luindex", 31.2, 3.9),
    ("lusearch", 29.2, 3.5),
    ("pmd", 64.0, 9.3),
    ("sunflow", 56.7, 52.3),
    ("xalan", 49.0, 17.0),
]

_MICROSERVICES_ROWS = [
    ("micronaut-helloworld", 76.0, 3.3),
    ("micronaut-mushop-order", 167.0, 7.3),
    ("micronaut-mushop-payment", 83.0, 4.2),
    ("micronaut-mushop-user", 113.0, 6.7),
    ("quarkus-helloworld", 59.6, 6.0),
    ("quarkus-registry", 134.2, 6.8),
    ("quarkus-tika", 109.1, 9.2),
    ("spring-helloworld", 85.2, 5.6),
    ("spring-petclinic", 210.2, 8.1),
]

_RENAISSANCE_ROWS = [
    ("akka-uct", 38.8, 6.4),
    ("als", 381.6, 15.8),
    ("chi-square", 217.8, 17.2),
    ("dec-tree", 385.4, 15.7),
    ("finagle-chirper", 94.9, 12.7),
    ("finagle-http", 93.9, 12.8),
    ("fj-kmeans", 28.0, 5.5),
    ("future-genetic", 28.8, 5.6),
    ("log-regression", 394.7, 15.3),
    ("mnemonics", 28.2, 5.5),
    ("par-mnemonics", 28.2, 5.5),
    ("philosophers", 30.9, 4.1),
    ("reactors", 31.4, 3.7),
    ("rx-scrabble", 29.0, 5.2),
    ("scala-doku", 29.0, 5.5),
    ("scala-kmeans", 27.9, 5.5),
    ("scala-stm-bench7", 32.8, 4.0),
    ("scrabble", 28.3, 5.5),
]


def _build_suite(suite_name: str, rows, scale: float) -> List[BenchmarkSpec]:
    specs: List[BenchmarkSpec] = []
    for name, reachable_thousands, reduction in rows:
        total_methods = max(int(round(reachable_thousands * scale)), 60)
        specs.append(
            spec_from_reduction(
                name=name,
                suite=suite_name,
                total_methods=total_methods,
                reduction_percent=reduction,
                paper_reachable_thousands=reachable_thousands,
            )
        )
    return specs


def dacapo_suite(scale: float = DEFAULT_SCALE) -> List[BenchmarkSpec]:
    """The 8 DaCapo benchmarks of Table 1."""
    return _build_suite("DaCapo", _DACAPO_ROWS, scale)


def microservices_suite(scale: float = DEFAULT_SCALE) -> List[BenchmarkSpec]:
    """The 9 microservice applications of Table 1."""
    return _build_suite("Microservices", _MICROSERVICES_ROWS, scale)


def renaissance_suite(scale: float = DEFAULT_SCALE) -> List[BenchmarkSpec]:
    """The 18 Renaissance benchmarks of Table 1."""
    return _build_suite("Renaissance", _RENAISSANCE_ROWS, scale)


#: (benchmark, hierarchy depth, fanout, call sites) — leaf counts from 64 to
#: 512 allocated types per flow, far beyond the Table 1 specs.
_WIDE_HIERARCHY_ROWS = [
    ("wide-flat-64", 1, 64, 6),
    ("wide-mid-144", 2, 12, 8),
    ("wide-deep-216", 3, 6, 8),
    ("wide-broad-324", 2, 18, 10),
    ("wide-huge-512", 3, 8, 12),
]

#: (benchmark, hierarchy shapes) — 2–4 hierarchies interleaved below one
#: common ancestor; the router's mixed field carries the *union* of the leaf
#: sets (the name's number), megamorphism no single subtree produces.
_COMPOSED_HIERARCHY_ROWS = [
    ("composed-duo-112", ((1, 48, 4, 16), (2, 8, 6, 16))),
    ("composed-trio-196", ((2, 10, 6, 16), (1, 60, 4, 16), (2, 6, 8, 16))),
    ("composed-quad-232", ((1, 40, 4, 12), (2, 8, 6, 12),
                           (1, 64, 4, 12), (2, 8, 8, 12))),
]

WIDE_HIERARCHY_SUITE = "WideHierarchy"


def wide_hierarchy_suite() -> List[BenchmarkSpec]:
    """The saturation stress suite: hundreds of receiver types per flow.

    Sizes are structural (hierarchy depth and fanout), so unlike the paper
    suites there is no ``scale`` knob.  Every spec keeps a small
    always-reachable core and one conventionally guarded module, so the
    standard baseline-vs-SkipFlow comparison stays meaningful; the precision
    the saturation cutoff gives up is measured against the *exact* SkipFlow
    run by ``benchmarks/run_saturation_study.py``.

    The ``composed-*`` specs interleave several hierarchies below a common
    ancestor (``compose_hierarchies``): their megamorphic width lives in a
    shared router field mixing every subtree's leaves, and the hierarchies
    cross-guard each other's payloads, so saturation policies that respect
    declared types have something to win there.
    """
    specs: List[BenchmarkSpec] = []
    for name, depth, fanout, call_sites in _WIDE_HIERARCHY_ROWS:
        specs.append(
            BenchmarkSpec(
                name=name,
                suite=WIDE_HIERARCHY_SUITE,
                core_methods=40,
                guarded_modules=(GuardedModuleSpec("boolean_flag", 12),),
                hierarchies=(
                    HierarchySpec(depth=depth, fanout=fanout,
                                  call_sites=call_sites, guarded_methods=24),
                ),
            )
        )
    for name, shapes in _COMPOSED_HIERARCHY_ROWS:
        specs.append(
            BenchmarkSpec(
                name=name,
                suite=WIDE_HIERARCHY_SUITE,
                core_methods=40,
                guarded_modules=(GuardedModuleSpec("boolean_flag", 12),),
                hierarchies=tuple(
                    HierarchySpec(depth=depth, fanout=fanout,
                                  call_sites=call_sites,
                                  guarded_methods=guarded)
                    for depth, fanout, call_sites, guarded in shapes),
                compose_hierarchies=True,
            )
        )
    return specs


def all_suites(scale: float = DEFAULT_SCALE) -> Dict[str, List[BenchmarkSpec]]:
    """The three paper suites keyed by suite name (Table 1 / Figure 9 scope)."""
    return {
        "DaCapo": dacapo_suite(scale),
        "Microservices": microservices_suite(scale),
        "Renaissance": renaissance_suite(scale),
    }


def extended_suites(scale: float = DEFAULT_SCALE) -> Dict[str, List[BenchmarkSpec]]:
    """Every suite, paper and beyond: ``all_suites`` plus ``WideHierarchy``."""
    suites = all_suites(scale)
    suites[WIDE_HIERARCHY_SUITE] = wide_hierarchy_suite()
    return suites


def suite_by_name(name: str, scale: float = DEFAULT_SCALE) -> List[BenchmarkSpec]:
    """Look up one suite (paper or extended) by case-insensitive name."""
    suites = extended_suites(scale)
    for suite_name, specs in suites.items():
        if suite_name.lower() == name.lower():
            return specs
    raise KeyError(f"unknown suite {name!r}; expected one of {sorted(suites)}")
