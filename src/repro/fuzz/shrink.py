"""Greedy deterministic shrinking of failing fuzz cases.

Given a failing :class:`~repro.workloads.edits.EditScriptSpec` and a
predicate ("does this case still fail?"), :func:`shrink_case` walks a fixed
sequence of simplification passes — drop edit steps, drop whole workload
families, shrink numeric knobs toward their minimums — keeping every
candidate that still fails and discarding the rest.  The passes repeat
until a whole round makes no progress (a local fixpoint), so the result is
minimal with respect to the pass vocabulary, not globally minimal — the
usual delta-debugging trade-off.

Robustness notes:

* candidate scripts can be structurally invalid (e.g. an ``add-plugin``
  step after the plugins family was dropped); the predicate is wrapped so
  an exception counts as "does not fail" and the candidate is rejected;
* the predicate typically runs the full oracle, so the attempt budget
  bounds total shrink cost; with the default budget a quick-profile case
  shrinks in a few seconds.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, Tuple

from repro.workloads.applications import (
    MicroserviceSpec,
    PluginSystemSpec,
    ReflectionSpec,
)
from repro.workloads.edits import EditScriptSpec
from repro.workloads.generator import (
    BenchmarkSpec,
    GuardedModuleSpec,
    HierarchySpec,
)

#: ``predicate(script) -> bool``: does the case still fail?
Predicate = Callable[[EditScriptSpec], bool]

DEFAULT_MAX_ATTEMPTS = 200


def case_cost(script: EditScriptSpec) -> Tuple[int, int]:
    """The shrink order: fewer edit steps first, then fewer methods."""
    return (len(script.steps), script.base.expected_total_methods)


def _without_family_steps(script: EditScriptSpec,
                          base: BenchmarkSpec) -> EditScriptSpec:
    """Rebase the script, dropping steps whose family the base lost."""
    steps = tuple(
        step for step in script.steps
        if not (step.kind == "add-plugin" and base.plugins is None)
        and not (step.kind == "add-service" and base.services is None))
    return EditScriptSpec(base=base, steps=steps)


def _shrunk_services(spec: MicroserviceSpec) -> Iterator[MicroserviceSpec]:
    if spec.services > 2:
        yield replace(spec, services=max(2, spec.services // 2))
    if spec.routes > 1:
        yield replace(spec, routes=1)
    if spec.chained:
        yield replace(spec, chained=False)
    if spec.guarded_methods > 5:
        yield replace(spec, guarded_methods=5)


def _shrunk_plugins(spec: PluginSystemSpec) -> Iterator[PluginSystemSpec]:
    if spec.plugins > 2:
        plugins = max(2, spec.plugins // 2)
        yield replace(spec, plugins=plugins,
                      active=min(spec.active, plugins))
    if spec.active > 1:
        yield replace(spec, active=1)
    if spec.hooks > 1:
        yield replace(spec, hooks=1)
    if spec.payload_methods > 5:
        yield replace(spec, payload_methods=5)


def _shrunk_reflection(spec: ReflectionSpec) -> Iterator[ReflectionSpec]:
    if spec.handlers > 1:
        yield replace(spec, handlers=max(1, spec.handlers // 2))
    if spec.fields > 0:
        yield replace(spec, fields=0)
    if spec.payload_methods > 5:
        yield replace(spec, payload_methods=5)


def _shrunk_hierarchy(spec: HierarchySpec) -> Iterator[HierarchySpec]:
    if spec.depth > 1:
        yield replace(spec, depth=1)
    if spec.fanout > 2:
        yield replace(spec, fanout=max(2, spec.fanout // 2))
    if spec.call_sites > 1:
        yield replace(spec, call_sites=1)
    if spec.guarded_methods > 5:
        yield replace(spec, guarded_methods=5)


def _candidates(script: EditScriptSpec) -> Iterator[EditScriptSpec]:
    """Simplification candidates, most aggressive first."""
    base = script.base

    # 1. Drop edit steps: all at once, then one at a time (from the end,
    #    so earlier steps keep their indices and stay valid).
    if script.steps:
        yield replace(script, steps=())
        for drop in range(len(script.steps) - 1, -1, -1):
            yield replace(script, steps=(script.steps[:drop]
                                         + script.steps[drop + 1:]))

    # 2. Drop whole families (with their dependent edit steps).
    if base.reflection is not None:
        yield replace(script, base=replace(base, reflection=None))
    if base.plugins is not None:
        yield _without_family_steps(script, replace(base, plugins=None))
    if base.services is not None:
        yield _without_family_steps(script, replace(base, services=None))
    if base.hierarchies:
        yield replace(script, base=replace(
            base, hierarchies=(), compose_hierarchies=False))
    if base.guarded_modules:
        yield replace(script, base=replace(base, guarded_modules=()))

    # 3. Structural simplifications.
    if base.compose_hierarchies:
        yield replace(script, base=replace(base, compose_hierarchies=False))
    if len(base.hierarchies) > 1:
        yield replace(script, base=replace(
            base, hierarchies=base.hierarchies[:1],
            compose_hierarchies=False))
    if len(base.guarded_modules) > 1:
        yield replace(script, base=replace(
            base, guarded_modules=base.guarded_modules[:1]))

    # 4. Shrink numeric knobs toward their minimums.
    if base.core_methods > 5:
        yield replace(script, base=replace(
            base, core_methods=max(5, base.core_methods // 2)))
    for index, module in enumerate(base.guarded_modules):
        if module.methods > 5:
            smaller = (base.guarded_modules[:index]
                       + (GuardedModuleSpec(module.pattern, 5),)
                       + base.guarded_modules[index + 1:])
            yield replace(script, base=replace(base, guarded_modules=smaller))
    for index, hierarchy in enumerate(base.hierarchies):
        for shrunk in _shrunk_hierarchy(hierarchy):
            smaller = (base.hierarchies[:index] + (shrunk,)
                       + base.hierarchies[index + 1:])
            yield replace(script, base=replace(base, hierarchies=smaller))
    if base.services is not None:
        for shrunk in _shrunk_services(base.services):
            yield replace(script, base=replace(base, services=shrunk))
    if base.plugins is not None:
        for shrunk in _shrunk_plugins(base.plugins):
            yield replace(script, base=replace(base, plugins=shrunk))
    if base.reflection is not None:
        for shrunk in _shrunk_reflection(base.reflection):
            yield replace(script, base=replace(base, reflection=shrunk))


def shrink_case(script: EditScriptSpec, predicate: Predicate,
                max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> EditScriptSpec:
    """The smallest still-failing variant of ``script`` the passes can find.

    ``predicate`` must return ``True`` for a *failing* case; it is assumed
    (not re-checked) to hold for ``script`` itself.  Exceptions from the
    predicate reject the candidate.
    """

    def still_fails(candidate: EditScriptSpec) -> bool:
        try:
            return bool(predicate(candidate))
        except Exception:
            return False  # invalid candidate: not a smaller failure

    current = script
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            if case_cost(candidate) >= case_cost(current):
                continue
            attempts += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current
