"""Differential fuzzing of the analysis stack.

The fuzz subsystem closes the loop between the deterministic workload
generators and the analyzers: seeded random (program, edit script) cases
run under the concrete IR interpreter, and every analyzer's result is
checked against what actually executed — executed methods must be
reachable, observed call edges covered, observed receiver types contained
in SkipFlow value states — across every scheduling × saturation policy
combination, cold and warm-resumed.  Failures shrink to minimal
replayable repro files.

Entry points: ``repro fuzz`` (CLI), :func:`run_campaign` /
:func:`run_mutation_smoke` (library), ``benchmarks/run_fuzz_study.py``
(CI driver).  See ``docs/fuzzing.md``.
"""

from repro.fuzz.generator import (
    DEEP_PROFILE,
    FUZZ_GUARD_PATTERNS,
    PROFILES,
    QUICK_PROFILE,
    FuzzProfile,
    generate_cases,
    get_profile,
    iter_cases,
    random_edit_script,
    random_spec,
)
from repro.fuzz.oracle import (
    DEFAULT_MAX_STEPS,
    DEFAULT_THRESHOLD,
    OracleReport,
    OracleViolation,
    check_case,
    execute_all_entry_points,
    synthesize_arguments,
)
from repro.fuzz.reprofile import (
    REPRO_FORMAT_VERSION,
    ReproFileError,
    load_repro,
    script_from_dict,
    script_to_dict,
    spec_from_dict,
    spec_to_dict,
    violations_from_dict,
    write_repro,
)
from repro.fuzz.runner import (
    CampaignFailure,
    CampaignResult,
    drop_main_mutator,
    run_campaign,
    run_mutation_smoke,
)
from repro.fuzz.shrink import case_cost, shrink_case

__all__ = [
    "DEEP_PROFILE",
    "DEFAULT_MAX_STEPS",
    "DEFAULT_THRESHOLD",
    "FUZZ_GUARD_PATTERNS",
    "PROFILES",
    "QUICK_PROFILE",
    "REPRO_FORMAT_VERSION",
    "CampaignFailure",
    "CampaignResult",
    "FuzzProfile",
    "OracleReport",
    "OracleViolation",
    "ReproFileError",
    "case_cost",
    "check_case",
    "drop_main_mutator",
    "execute_all_entry_points",
    "generate_cases",
    "get_profile",
    "iter_cases",
    "load_repro",
    "random_edit_script",
    "random_spec",
    "run_campaign",
    "run_mutation_smoke",
    "script_from_dict",
    "script_to_dict",
    "shrink_case",
    "spec_from_dict",
    "spec_to_dict",
    "synthesize_arguments",
    "violations_from_dict",
    "write_repro",
]
