"""Replayable repro files for failing fuzz cases.

A repro file is a small JSON document carrying everything needed to rerun
one failing case without the original seed stream: the (shrunk) benchmark
spec, the edit script, the oracle parameters, and the violations that were
observed when it was recorded.  ``repro fuzz --replay FILE`` (and the
corpus regression tests under ``tests/fuzz/corpus/``) load these files and
run them back through :func:`repro.fuzz.oracle.check_case`.

The format is versioned; loading rejects unknown versions loudly rather
than guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.fuzz.oracle import OracleViolation
from repro.workloads.applications import (
    MicroserviceSpec,
    PluginSystemSpec,
    ReflectionSpec,
)
from repro.workloads.edits import EditScriptSpec, EditStepSpec
from repro.workloads.generator import (
    BenchmarkSpec,
    GuardedModuleSpec,
    HierarchySpec,
)

REPRO_FORMAT_VERSION = 1


class ReproFileError(Exception):
    """Raised for malformed or unsupported repro files."""


# --------------------------------------------------------------------------- #
# Spec <-> dict
# --------------------------------------------------------------------------- #
def spec_to_dict(spec: BenchmarkSpec) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "name": spec.name,
        "suite": spec.suite,
        "core_methods": spec.core_methods,
        "guarded_modules": [
            {"pattern": module.pattern, "methods": module.methods}
            for module in spec.guarded_modules],
        "hierarchies": [
            {"depth": h.depth, "fanout": h.fanout,
             "call_sites": h.call_sites,
             "guarded_methods": h.guarded_methods}
            for h in spec.hierarchies],
        "compose_hierarchies": spec.compose_hierarchies,
    }
    if spec.services is not None:
        data["services"] = {
            "services": spec.services.services,
            "routes": spec.services.routes,
            "chained": spec.services.chained,
            "guarded_methods": spec.services.guarded_methods,
        }
    if spec.plugins is not None:
        data["plugins"] = {
            "plugins": spec.plugins.plugins,
            "active": spec.plugins.active,
            "hooks": spec.plugins.hooks,
            "payload_methods": spec.plugins.payload_methods,
        }
    if spec.reflection is not None:
        data["reflection"] = {
            "handlers": spec.reflection.handlers,
            "fields": spec.reflection.fields,
            "payload_methods": spec.reflection.payload_methods,
        }
    return data


def spec_from_dict(data: Dict[str, Any]) -> BenchmarkSpec:
    try:
        services = (MicroserviceSpec(**data["services"])
                    if "services" in data else None)
        plugins = (PluginSystemSpec(**data["plugins"])
                   if "plugins" in data else None)
        reflection = (ReflectionSpec(**data["reflection"])
                      if "reflection" in data else None)
        return BenchmarkSpec(
            name=data["name"],
            suite=data["suite"],
            core_methods=data["core_methods"],
            guarded_modules=tuple(
                GuardedModuleSpec(module["pattern"], module["methods"])
                for module in data.get("guarded_modules", [])),
            hierarchies=tuple(
                HierarchySpec(**h) for h in data.get("hierarchies", [])),
            compose_hierarchies=data.get("compose_hierarchies", False),
            services=services,
            plugins=plugins,
            reflection=reflection,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproFileError(f"malformed benchmark spec: {exc}") from exc


def script_to_dict(script: EditScriptSpec) -> Dict[str, Any]:
    return {
        "base": spec_to_dict(script.base),
        "steps": [{"kind": step.kind, "index": step.index}
                  for step in script.steps],
    }


def script_from_dict(data: Dict[str, Any]) -> EditScriptSpec:
    try:
        return EditScriptSpec(
            base=spec_from_dict(data["base"]),
            steps=tuple(EditStepSpec(kind=step["kind"], index=step["index"])
                        for step in data.get("steps", [])))
    except (KeyError, TypeError) as exc:
        raise ReproFileError(f"malformed edit script: {exc}") from exc


# --------------------------------------------------------------------------- #
# Repro files
# --------------------------------------------------------------------------- #
def repro_to_dict(script: EditScriptSpec, *,
                  seed: Optional[int] = None,
                  case_index: Optional[int] = None,
                  threshold: Optional[int] = None,
                  violations: Tuple[OracleViolation, ...] = ()
                  ) -> Dict[str, Any]:
    return {
        "format": REPRO_FORMAT_VERSION,
        "seed": seed,
        "case_index": case_index,
        "threshold": threshold,
        "script": script_to_dict(script),
        "violations": [
            {"invariant": v.invariant, "analyzer": v.analyzer,
             "step": v.step, "detail": v.detail}
            for v in violations],
    }


def write_repro(path: Path, script: EditScriptSpec, *,
                seed: Optional[int] = None,
                case_index: Optional[int] = None,
                threshold: Optional[int] = None,
                violations: Tuple[OracleViolation, ...] = ()) -> Path:
    """Write one replayable repro file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = repro_to_dict(script, seed=seed, case_index=case_index,
                         threshold=threshold, violations=violations)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def load_repro(path: Path) -> Tuple[EditScriptSpec, Dict[str, Any]]:
    """Load a repro file: the edit script plus the raw metadata dict."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproFileError(f"cannot read repro file {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ReproFileError(f"repro file {path} is not a JSON object")
    version = data.get("format")
    if version != REPRO_FORMAT_VERSION:
        raise ReproFileError(
            f"repro file {path} has format {version!r}; this build reads "
            f"format {REPRO_FORMAT_VERSION}")
    return script_from_dict(data.get("script", {})), data


def violations_from_dict(data: Dict[str, Any]) -> List[OracleViolation]:
    """The recorded violations of a loaded repro file's metadata."""
    return [
        OracleViolation(invariant=v["invariant"], analyzer=v["analyzer"],
                        step=v["step"], detail=v["detail"])
        for v in data.get("violations", [])]
