"""Fuzz campaigns: generate, check, shrink, and record failing cases.

:func:`run_campaign` is the engine behind both ``repro fuzz`` and
``benchmarks/run_fuzz_study.py``: it drains the deterministic case stream
for a seed — either a fixed number of cases (CI) or a wall-clock budget
(nightly) — runs every case through the differential oracle, shrinks each
failure to a minimal still-failing variant, and writes one replayable
repro file per failure.

:func:`run_mutation_smoke` is the oracle's own test: it deliberately
breaks every analyzer (dropping an always-executed method from the
reachable sets via the oracle's mutator hook), asserts the oracle catches
the planted unsoundness, and asserts the shrinker reduces the failing case
— the end-to-end "would we notice a real soundness bug?" check the CI
quick mode runs on every PR.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.fuzz.generator import get_profile, iter_cases
from repro.fuzz.oracle import (
    DEFAULT_THRESHOLD,
    Mutator,
    OracleReport,
    check_case,
)
from repro.fuzz.reprofile import write_repro
from repro.fuzz.shrink import case_cost, shrink_case
from repro.workloads.edits import EditScriptSpec

#: Optional progress sink (one line per event); ``None`` silences it.
Log = Optional[Callable[[str], None]]


@dataclass
class CampaignFailure:
    """One failing case: as generated, and as shrunk."""

    case_index: int
    original: EditScriptSpec
    shrunk: EditScriptSpec
    report: OracleReport
    repro_path: Optional[Path] = None


@dataclass
class CampaignResult:
    """The outcome of one :func:`run_campaign` invocation."""

    seed: int
    profile: str
    cases_run: int = 0
    prefixes_checked: int = 0
    combos_checked: int = 0
    duration_seconds: float = 0.0
    failures: List[CampaignFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _emit(log: Log, message: str) -> None:
    if log is not None:
        log(message)


def run_campaign(*, seed: int, cases: Optional[int] = None,
                 budget_seconds: Optional[float] = None,
                 profile: str = "quick",
                 schedulings: Optional[Sequence[str]] = None,
                 saturations: Optional[Sequence[str]] = None,
                 threshold: int = DEFAULT_THRESHOLD,
                 kernels: Sequence[str] = ("object",),
                 out_dir: Optional[Path] = None,
                 shrink: bool = True,
                 mutator: Optional[Mutator] = None,
                 log: Log = None) -> CampaignResult:
    """Run one deterministic fuzz campaign.

    Exactly one of ``cases`` (run that many) or ``budget_seconds`` (run
    until the wall clock says stop, at least one case) must be given.
    Failures are shrunk (unless ``shrink=False``) and written to
    ``out_dir`` as ``repro-<seed>-<case index>.json`` when it is set.
    """
    if (cases is None) == (budget_seconds is None):
        raise ValueError("pass exactly one of cases or budget_seconds")
    resolved_profile = get_profile(profile)
    result = CampaignResult(seed=seed, profile=resolved_profile.name)
    started = time.monotonic()

    stream = iter_cases(seed, resolved_profile)
    case_index = 0
    while True:
        if cases is not None and case_index >= cases:
            break
        if (budget_seconds is not None and case_index > 0
                and time.monotonic() - started >= budget_seconds):
            break
        script = next(stream)
        report = check_case(script, schedulings=schedulings,
                            saturations=saturations, threshold=threshold,
                            kernels=kernels, mutator=mutator)
        result.cases_run += 1
        result.prefixes_checked += report.prefixes_checked
        result.combos_checked += report.combos_checked
        if not report.ok:
            _emit(log, f"case {case_index} ({script.name}): "
                       f"{len(report.violations)} violation(s); "
                       f"first: {report.violations[0]}")
            shrunk = script
            if shrink:
                def still_fails(candidate: EditScriptSpec) -> bool:
                    return not check_case(
                        candidate, schedulings=schedulings,
                        saturations=saturations, threshold=threshold,
                        kernels=kernels, mutator=mutator).ok

                shrunk = shrink_case(script, still_fails)
                _emit(log, f"case {case_index}: shrunk "
                           f"{case_cost(script)} -> {case_cost(shrunk)}")
            failure = CampaignFailure(case_index=case_index,
                                      original=script, shrunk=shrunk,
                                      report=report)
            if out_dir is not None:
                failure.repro_path = write_repro(
                    Path(out_dir) / f"repro-{seed}-{case_index}.json",
                    shrunk, seed=seed, case_index=case_index,
                    threshold=threshold,
                    violations=tuple(report.violations))
                _emit(log, f"case {case_index}: wrote {failure.repro_path}")
            result.failures.append(failure)
        elif log is not None and case_index % 10 == 0:
            _emit(log, f"case {case_index} ({script.name}): ok "
                       f"({report.prefixes_checked} prefixes, "
                       f"{report.combos_checked} combos)")
        case_index += 1

    result.duration_seconds = time.monotonic() - started
    return result


# --------------------------------------------------------------------------- #
# Mutation smoke: does the oracle catch a deliberately broken analyzer?
# --------------------------------------------------------------------------- #
def drop_main_mutator(analyzer: str, reachable: Set[str]) -> Set[str]:
    """The planted bug: every analyzer 'forgets' the program's main method.

    ``Main.main`` is executed by every generated program, so a sound
    oracle must flag its absence for every analyzer at every prefix.
    """
    return {method for method in reachable if method != "Main.main"}


def run_mutation_smoke(*, seed: int = 0, profile: str = "quick",
                       kernels: Sequence[str] = ("object",)
                       ) -> Tuple[OracleReport, EditScriptSpec,
                                  EditScriptSpec]:
    """Verify the oracle catches and shrinks a planted soundness bug.

    Runs one generated case against mutated analyzers (a cheap single-combo
    matrix — the planted bug is policy-independent), asserts violations
    fire, and asserts the shrinker reduces the case.  ``kernels`` picks the
    propagation kernel(s) the mutated solves run through, so the smoke can
    prove the oracle still fires when the arena kernel is the one under
    test.  Returns the failing report plus the (original, shrunk) scripts.

    Raises ``AssertionError`` when the oracle misses the planted bug — the
    condition under which no other fuzz result can be trusted.
    """
    script = next(iter_cases(seed, get_profile(profile)))
    matrix = dict(schedulings=("fifo",), saturations=("off",),
                  kernels=kernels, mutator=drop_main_mutator)
    report = check_case(script, **matrix)
    assert not report.ok, (
        "mutation smoke FAILED: the oracle did not flag a dropped "
        "executed method — its soundness checks are not wired")
    assert any(v.invariant == "executed-not-reachable"
               for v in report.violations), (
        "mutation smoke FAILED: violations fired but not the "
        "executed-not-reachable invariant")

    def still_fails(candidate: EditScriptSpec) -> bool:
        return not check_case(candidate, **matrix).ok

    shrunk = shrink_case(script, still_fails)
    assert case_cost(shrunk) <= case_cost(script), (
        "mutation smoke FAILED: shrinking increased the case cost")
    assert not check_case(shrunk, **matrix).ok, (
        "mutation smoke FAILED: the shrunk case no longer fails")
    return report, script, shrunk
