"""The differential oracle: concrete execution vs. every analysis variant.

One fuzz *case* is an :class:`~repro.workloads.edits.EditScriptSpec` — a
base program spec plus a monotone edit script.  :func:`check_case` runs the
case through three layers of checking, per edit prefix (the base program is
prefix 0):

**Dynamic soundness.**  The concrete interpreter executes *every* entry
point of the prefix program (each with its own step budget, merging the
traces; runtime faults keep the partial trace via
:meth:`~repro.ir.interpreter.Interpreter.try_run`).  Every executed method
must be reachable for CHA, RTA, the PTA baseline, and exact SkipFlow;
every observed call edge's callee must be reachable or a known stub; and
every concrete parameter value must be covered by exact SkipFlow's
parameter value states (the same invariants as
``tests/integration/test_soundness_differential.py``, industrialized).

**Policy-matrix soundness.**  Every scheduling × saturation combination is
a distinct solver; each one must also cover the executed methods and call
edges.  Saturated states only ever move up the lattice, so the dynamic
trace is a sound oracle for all of them.

**Warm = cold.**  For every combination, an
:class:`~repro.api.AnalysisSession` replays the edit script warm
(``update`` + ``run(resume=...)``) while a cold solve is run per prefix;
their reachable sets, call edges, and stub sets must be identical at every
step.  (Full value states are *not* compared: the ``declared-type``
sentinel keeps pre-collapse arrivals on ``this`` parameter flows, which
makes a saturated flow's exact state history-dependent by design — the
canonical outputs above are the fixpoint-equality contract.)

**Static audits.**  Every solver state the case produces — the exact and
baseline solves, each cold combo, and every step of each warm chain — is
additionally run through the post-solve audits of :mod:`repro.checks`
(fixpoint stability, link closure, saturation and warm-barrier
consistency; the snapshot round-trip is skipped for speed).  This is the
cheap static oracle riding along with the expensive dynamic one: a state
that is not a true fixpoint fails here even when its reachable set happens
to cover the trace.

A ``mutator`` hook post-filters each analyzer's reachable set, letting the
mutation smoke test verify the oracle actually fires on a broken analyzer.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.api import AnalysisSession
from repro.baselines.cha import ClassHierarchyAnalysis
from repro.baselines.rta import RapidTypeAnalysis
from repro.checks import audit_state
from repro.core.analysis import run_baseline, run_skipflow
from repro.core.kernel import (
    available_saturation_policies,
    available_scheduling_policies,
)
from repro.ir.interpreter import ExecutionTrace, HeapObject, Interpreter
from repro.ir.program import Program
from repro.workloads.edits import EditScriptSpec, build_edit_delta
from repro.workloads.generator import generate_benchmark

#: Reachable-set post-filter: ``mutator(analyzer_label, reachable)``.
Mutator = Callable[[str, Set[str]], Set[str]]

#: Per-entry-point interpreter step budget.
DEFAULT_MAX_STEPS = 20_000

#: Saturation threshold for the policy matrix — low enough that the quick
#: profile's small programs actually saturate.
DEFAULT_THRESHOLD = 4


@dataclass(frozen=True)
class OracleViolation:
    """One broken invariant, precise enough to reproduce by hand."""

    invariant: str  # executed-not-reachable | callee-not-covered |
    #                 value-not-covered | warm-cold-mismatch | audit
    analyzer: str
    step: int  # edit prefix length (0 = the base program)
    detail: str

    def __str__(self) -> str:
        return (f"[{self.invariant}] {self.analyzer} @ step {self.step}: "
                f"{self.detail}")


@dataclass
class OracleReport:
    """Everything :func:`check_case` concluded about one case."""

    case: str
    violations: List[OracleViolation] = field(default_factory=list)
    prefixes_checked: int = 0
    combos_checked: int = 0
    executed_methods: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


# --------------------------------------------------------------------------- #
# Concrete execution
# --------------------------------------------------------------------------- #
def synthesize_arguments(program: Program,
                         entry_point: str) -> Optional[List[object]]:
    """Concrete arguments for one entry point, or ``None`` to skip it.

    Reference parameters (and the receiver of non-static entries) get a
    fresh instance of the smallest instantiable subtype of their declared
    type; primitives get the interpreter's canonical opaque value.  An
    entry whose receiver type has no instantiable subtype cannot be called
    concretely and is skipped — the analyses still root it, which can only
    make them *more* conservative than the trace.
    """
    method = program.methods.get(entry_point)
    if method is None:
        return None
    hierarchy = program.hierarchy
    signature = method.signature
    object_id = 1_000_000  # disjoint from the interpreter's own counter
    arguments: List[object] = []

    def instance_of(declared: str) -> Optional[HeapObject]:
        nonlocal object_id
        if declared not in hierarchy:
            return None
        subtypes = sorted(hierarchy.instantiable_subtypes(declared))
        if not subtypes:
            return None
        object_id += 1
        return HeapObject(object_id, subtypes[0])

    if not signature.is_static:
        receiver = instance_of(signature.declaring_class)
        if receiver is None:
            return None
        arguments.append(receiver)
    for declared in signature.param_types:
        if declared in hierarchy:
            value = instance_of(declared)
            if value is None:
                return None
            arguments.append(value)
        else:
            arguments.append(7)
    return arguments


def execute_all_entry_points(program: Program,
                             max_steps: int = DEFAULT_MAX_STEPS
                             ) -> ExecutionTrace:
    """One merged trace over every entry point, each with its own budget.

    A per-entry budget matters: a single never-returning guard would
    otherwise burn the whole budget and silence every later entry point.
    """
    merged = ExecutionTrace()
    for entry_point in program.entry_points:
        arguments = synthesize_arguments(program, entry_point)
        if arguments is None:
            continue
        interpreter = Interpreter(program, max_steps=max_steps)
        trace = interpreter.try_run(entry_point, arguments)
        merged.executed_methods |= trace.executed_methods
        merged.call_edges |= trace.call_edges
        merged.allocated_types |= trace.allocated_types
        for key, values in trace.observed_values.items():
            merged.observed_values.setdefault(key, []).extend(values)
        merged.steps += trace.steps
        merged.completed = merged.completed and trace.completed
    return merged


# --------------------------------------------------------------------------- #
# The oracle
# --------------------------------------------------------------------------- #
def _prefix_program(script: EditScriptSpec, count: int) -> Program:
    """A fresh program for the script's first ``count`` edits applied cold."""
    program = generate_benchmark(script.base)
    for step in script.steps[:count]:
        build_edit_delta(script.base, step).apply_to(program)
    return program


def _reachable(report, analyzer: str,
               mutator: Optional[Mutator]) -> Set[str]:
    reachable = set(report.reachable_methods)
    if mutator is not None:
        reachable = mutator(analyzer, reachable)
    return reachable


def _check_trace_against(report, analyzer: str, step: int,
                         trace: ExecutionTrace,
                         mutator: Optional[Mutator]) -> List[OracleViolation]:
    violations: List[OracleViolation] = []
    reachable = _reachable(report, analyzer, mutator)
    for method in sorted(trace.executed_methods):
        if method not in reachable:
            violations.append(OracleViolation(
                "executed-not-reachable", analyzer, step,
                f"executed method {method} is not reachable"))
    covered = reachable | set(report.stub_methods)
    for caller, callee in sorted(trace.call_edges):
        if callee not in covered:
            violations.append(OracleViolation(
                "callee-not-covered", analyzer, step,
                f"executed call {caller} -> {callee} has an uncovered callee"))
    return violations


def _check_value_coverage(result, step: int,
                          trace: ExecutionTrace) -> List[OracleViolation]:
    """Observed parameter values vs. exact SkipFlow's parameter states."""
    violations: List[OracleViolation] = []
    for method_name in sorted(trace.executed_methods):
        graph = result.method_graph(method_name)
        if graph is None:
            continue
        for flow in graph.parameter_flows:
            name = graph.method.parameters[flow.index].name
            for value in trace.observed_values.get((method_name, name), []):
                if isinstance(value, HeapObject):
                    if value.type_name not in flow.state.types:
                        violations.append(OracleViolation(
                            "value-not-covered", "skipflow", step,
                            f"{method_name}.{name}: runtime type "
                            f"{value.type_name} not in {flow.state!r}"))
                elif value is None:
                    if not flow.state.contains_null:
                        violations.append(OracleViolation(
                            "value-not-covered", "skipflow", step,
                            f"{method_name}.{name}: runtime null not in "
                            f"{flow.state!r}"))
                elif isinstance(value, int):
                    if not (flow.state.has_any
                            or flow.state.primitive == value):
                        violations.append(OracleViolation(
                            "value-not-covered", "skipflow", step,
                            f"{method_name}.{name}: runtime int {value} "
                            f"not covered by {flow.state!r}"))
    return violations


def _canonical_outputs(report) -> Tuple[FrozenSet[str],
                                        FrozenSet[Tuple[str, str]],
                                        FrozenSet[str]]:
    return (frozenset(report.reachable_methods),
            frozenset(report.call_edges),
            frozenset(report.stub_methods))


def _check_audits(state, program: Program, label: str, step: int,
                  warm_barrier: int = 0) -> List[OracleViolation]:
    """The static audits as one more (cheap) oracle over every solve.

    Every fixpoint the case produces — cold combos and warm chains alike —
    must re-audit clean; the snapshot round-trip is skipped for speed
    (``repro check --audit`` and the check smoke exercise it).  States that
    do not exist (CHA/RTA) audit trivially clean.
    """
    if state is None:
        return []
    return [OracleViolation("audit", label, step, diag.render())
            for diag in audit_state(state, program,
                                    warm_barrier=warm_barrier,
                                    snapshot=False)]


def check_case(script: EditScriptSpec, *,
               schedulings: Optional[Sequence[str]] = None,
               saturations: Optional[Sequence[str]] = None,
               threshold: int = DEFAULT_THRESHOLD,
               max_steps: int = DEFAULT_MAX_STEPS,
               check_values: bool = True,
               kernels: Sequence[str] = ("object",),
               mutator: Optional[Mutator] = None) -> OracleReport:
    """Run one case through the full differential oracle.

    ``schedulings``/``saturations`` default to *every* registered policy;
    pass smaller sequences for cheap smoke checks.  ``kernels`` lists the
    propagation kernels to exercise: the first is the reference, and every
    cold combination additionally runs under each other kernel, which must
    reproduce the reference's canonical outputs *and step count* exactly
    (the ``kernel-divergence`` invariant) on top of passing the trace and
    audit oracles itself.  The ``parallel`` kernel is exempt from the step
    clause only: its counters are sums over partition workers, so identity
    there means identical canonical outputs (and, under saturation
    policies it cannot honour bit-exactly, an automatic fallback to the
    serial arena kernel — which the outputs comparison still covers).  Returns an :class:`OracleReport` whose
    ``violations`` is empty iff every invariant held at every edit prefix
    for every combination.
    """
    if schedulings is None:
        schedulings = available_scheduling_policies()
    if saturations is None:
        saturations = available_saturation_policies()
    alternate_kernels = [kernel for kernel in kernels
                         if kernel != kernels[0]]
    report = OracleReport(case=script.name)
    prefixes = range(len(script.steps) + 1)

    traces: Dict[int, ExecutionTrace] = {}
    cold: Dict[Tuple[str, str, int], Tuple] = {}
    for count in prefixes:
        program = _prefix_program(script, count)
        trace = execute_all_entry_points(program, max_steps=max_steps)
        traces[count] = trace
        report.prefixes_checked += 1
        report.executed_methods = max(report.executed_methods,
                                      len(trace.executed_methods))

        skipflow = run_skipflow(program)
        baselines = {
            "cha": ClassHierarchyAnalysis(program).run(),
            "rta": RapidTypeAnalysis(program).run(),
            "pta": run_baseline(program),
            "skipflow": skipflow,
        }
        for analyzer, result in baselines.items():
            report.violations.extend(_check_trace_against(
                result, analyzer, count, trace, mutator))
            report.violations.extend(_check_audits(
                getattr(result, "solver_state", None), program,
                analyzer, count))
        if check_values:
            report.violations.extend(
                _check_value_coverage(skipflow, count, trace))

        for scheduling in schedulings:
            for saturation in saturations:
                label = f"skipflow[{scheduling}/{saturation}@{threshold}]"
                session = AnalysisSession(program)
                combo = session.run(
                    "skipflow", scheduling=scheduling,
                    saturation_policy=saturation,
                    saturation_threshold=threshold,
                    kernel=kernels[0])
                cold[(scheduling, saturation, count)] = (
                    _canonical_outputs(combo))
                report.violations.extend(_check_trace_against(
                    combo, label, count, trace, mutator))
                report.violations.extend(_check_audits(
                    combo.raw.solver_state, program, label, count))
                for kernel in alternate_kernels:
                    klabel = label[:-1] + f"/{kernel}]"
                    alt = AnalysisSession(program).run(
                        "skipflow", scheduling=scheduling,
                        saturation_policy=saturation,
                        saturation_threshold=threshold, kernel=kernel)
                    # The parallel kernel's step counter is a sum across
                    # partition workers and legitimately differs from the
                    # serial schedules; its identity contract is outputs
                    # only (reachable set, call edges, stubs).
                    steps_diverged = (kernel != "parallel"
                                      and alt.solver_steps
                                      != combo.solver_steps)
                    if (_canonical_outputs(alt)
                            != cold[(scheduling, saturation, count)]
                            or steps_diverged):
                        report.violations.append(OracleViolation(
                            "kernel-divergence", klabel, count,
                            f"kernel {kernel!r} diverged from "
                            f"{kernels[0]!r}: steps {alt.solver_steps} vs "
                            f"{combo.solver_steps}"))
                    report.violations.extend(_check_trace_against(
                        alt, klabel, count, trace, mutator))
                    report.violations.extend(_check_audits(
                        alt.raw.solver_state, program, klabel, count))

    # Warm chains: one session per combination, resumed across every edit.
    for scheduling in schedulings:
        for saturation in saturations:
            report.combos_checked += 1
            label = f"skipflow[{scheduling}/{saturation}@{threshold}]"
            options = dict(scheduling=scheduling,
                           saturation_policy=saturation,
                           saturation_threshold=threshold)
            session = AnalysisSession(generate_benchmark(script.base))
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # a fallback is a failure here
                warm = session.run("skipflow", **options)
                state = warm.raw.solver_state
                for count in prefixes:
                    if count > 0:
                        session.update(
                            build_edit_delta(script.base,
                                             script.steps[count - 1]))
                        warm = session.run("skipflow", resume=state,
                                           **options)
                        state = warm.raw.solver_state
                    report.violations.extend(_check_audits(
                        state, session.program, f"{label} warm", count,
                        warm_barrier=session.warm_barrier))
                    warm_outputs = _canonical_outputs(warm)
                    cold_outputs = cold[(scheduling, saturation, count)]
                    for kind, w, c in zip(
                            ("reachable", "call-edges", "stubs"),
                            warm_outputs, cold_outputs):
                        if w != c:
                            extra = sorted(w - c)[:3]
                            missing = sorted(c - w)[:3]
                            report.violations.append(OracleViolation(
                                "warm-cold-mismatch", label, count,
                                f"{kind} differ: warm-only={extra}, "
                                f"cold-only={missing}"))
    return report
