"""Seeded randomized generation of (program spec, edit script) fuzz cases.

Everything downstream of a :class:`random.Random` seed is deterministic:
``generate_cases(seed, count, profile)`` always yields the same sequence of
:class:`~repro.workloads.edits.EditScriptSpec` values, and each spec
regenerates the same program through the deterministic workload builders —
which is what makes every failure replayable from the ``(seed, index)``
pair alone (and every *shrunk* failure replayable from its repro file).

Cases compose the full workload vocabulary: Table 1 style cores and
guarded modules, wide/composed hierarchies (the saturation stress), and
the application-model families from :mod:`repro.workloads.applications`
(service meshes, plugin registries with dormant extensions, reflection
roots).  Edit scripts draw from every monotone edit kind, including the
family-specific ``add-plugin``/``add-service`` kinds when the spec carries
the matching family.

Two size profiles:

``quick``
    CI-sized: programs of a few dozen methods, 0-3 edit steps — small
    enough that ≥ 50 cases sweep the full scheduling × saturation ×
    warm/cold matrix in a couple of minutes.
``deep``
    Nightly-sized: 10-100x the quick shapes (hundreds of methods, wide
    hierarchies, large family counts), exercised under a time budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.workloads.applications import (
    MicroserviceSpec,
    PluginSystemSpec,
    ReflectionSpec,
)
from repro.workloads.edits import EditScriptSpec, EditStepSpec
from repro.workloads.generator import (
    BenchmarkSpec,
    GuardedModuleSpec,
    HierarchySpec,
)

#: Guard patterns the fuzzer samples from.  ``never_returns`` is excluded:
#: its guard helper spins forever at runtime by design, which burns the
#: whole interpreter budget on one entry point and makes traces
#: budget-truncated rather than meaningfully partial.
FUZZ_GUARD_PATTERNS = ("null_default", "boolean_flag", "instanceof_flag")


@dataclass(frozen=True)
class FuzzProfile:
    """Size knobs for one generation profile (all ranges inclusive)."""

    name: str
    core_methods: Tuple[int, int]
    guarded_modules: Tuple[int, int]
    guarded_size: Tuple[int, int]
    hierarchies: Tuple[int, int]
    hierarchy_depth: Tuple[int, int]
    hierarchy_fanout: Tuple[int, int]
    services: Tuple[int, int]
    plugins: Tuple[int, int]
    reflection_handlers: Tuple[int, int]
    edit_steps: Tuple[int, int]
    #: Probability that a spec carries each application family.
    family_probability: float = 0.5
    #: Probability that 2+ hierarchies are composed below one ancestor.
    compose_probability: float = 0.3


QUICK_PROFILE = FuzzProfile(
    name="quick",
    core_methods=(5, 14),
    guarded_modules=(0, 2),
    guarded_size=(5, 8),
    hierarchies=(0, 2),
    hierarchy_depth=(1, 2),
    hierarchy_fanout=(2, 3),
    services=(2, 5),
    plugins=(3, 6),
    reflection_handlers=(1, 3),
    edit_steps=(0, 3),
)

DEEP_PROFILE = FuzzProfile(
    name="deep",
    core_methods=(40, 400),
    guarded_modules=(1, 4),
    guarded_size=(6, 20),
    hierarchies=(0, 3),
    hierarchy_depth=(1, 3),
    hierarchy_fanout=(2, 6),
    services=(4, 40),
    plugins=(4, 30),
    reflection_handlers=(2, 8),
    edit_steps=(1, 6),
    family_probability=0.6,
)

PROFILES = {profile.name: profile for profile in (QUICK_PROFILE, DEEP_PROFILE)}


def get_profile(name: str) -> FuzzProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown fuzz profile {name!r}; "
                         f"available: {', '.join(sorted(PROFILES))}") from None


def _draw(rng: random.Random, bounds: Tuple[int, int]) -> int:
    return rng.randint(bounds[0], bounds[1])


def random_spec(rng: random.Random, profile: FuzzProfile,
                case_index: int) -> BenchmarkSpec:
    """One random benchmark spec (its name encodes the case index)."""
    guarded = tuple(
        GuardedModuleSpec(rng.choice(FUZZ_GUARD_PATTERNS),
                          _draw(rng, profile.guarded_size))
        for _ in range(_draw(rng, profile.guarded_modules)))
    hierarchies = tuple(
        HierarchySpec(depth=_draw(rng, profile.hierarchy_depth),
                      fanout=_draw(rng, profile.hierarchy_fanout),
                      call_sites=rng.randint(1, 3),
                      guarded_methods=rng.randint(5, 8))
        for _ in range(_draw(rng, profile.hierarchies)))
    compose = (len(hierarchies) >= 2
               and rng.random() < profile.compose_probability)

    services: Optional[MicroserviceSpec] = None
    if rng.random() < profile.family_probability:
        services = MicroserviceSpec(
            services=_draw(rng, profile.services),
            routes=rng.randint(1, 3),
            chained=rng.random() < 0.7,
            guarded_methods=rng.randint(5, 8))
    plugins: Optional[PluginSystemSpec] = None
    if rng.random() < profile.family_probability:
        total = _draw(rng, profile.plugins)
        plugins = PluginSystemSpec(
            plugins=total,
            active=rng.randint(1, max(1, total - 1)),
            hooks=rng.randint(1, 2),
            payload_methods=rng.randint(5, 8))
    reflection: Optional[ReflectionSpec] = None
    if rng.random() < profile.family_probability:
        reflection = ReflectionSpec(
            handlers=_draw(rng, profile.reflection_handlers),
            fields=rng.randint(0, 2),
            payload_methods=rng.randint(5, 7))

    return BenchmarkSpec(
        name=f"fz{case_index}",
        suite="fuzz",
        core_methods=_draw(rng, profile.core_methods),
        guarded_modules=guarded,
        hierarchies=hierarchies,
        compose_hierarchies=compose,
        services=services,
        plugins=plugins,
        reflection=reflection,
    )


def applicable_edit_kinds(spec: BenchmarkSpec) -> Tuple[str, ...]:
    """The monotone edit kinds a random script may use against ``spec``."""
    kinds: List[str] = ["add-variant", "add-dispatch", "add-guarded-module"]
    if spec.plugins is not None:
        kinds.append("add-plugin")
    if spec.services is not None:
        kinds.append("add-service")
    return tuple(kinds)


def random_edit_script(rng: random.Random, profile: FuzzProfile,
                       spec: BenchmarkSpec) -> EditScriptSpec:
    """A random monotone edit script over ``spec``."""
    kinds = applicable_edit_kinds(spec)
    steps = tuple(
        EditStepSpec(kind=rng.choice(kinds), index=index)
        for index in range(_draw(rng, profile.edit_steps)))
    return EditScriptSpec(base=spec, steps=steps)


def iter_cases(seed: int, profile: FuzzProfile) -> Iterator[EditScriptSpec]:
    """An endless deterministic stream of cases for one seed."""
    rng = random.Random(seed)
    for case_index in range(10 ** 9):
        spec = random_spec(rng, profile, case_index)
        yield random_edit_script(rng, profile, spec)


def generate_cases(seed: int, count: int,
                   profile: FuzzProfile = QUICK_PROFILE) -> List[EditScriptSpec]:
    """The first ``count`` cases of the seed's deterministic stream."""
    stream = iter_cases(seed, profile)
    return [next(stream) for _ in range(count)]
