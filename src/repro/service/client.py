"""A stdlib client for the analysis daemon.

:class:`ServiceClient` wraps the wire protocol in one method per endpoint,
using nothing beyond ``urllib`` — the same zero-dependency constraint as
the daemon.  Errors come back as :class:`ServiceClientError` carrying the
HTTP status and the server's error type/message, so callers can branch on
``error.status`` (409 = non-monotone update, retry with
``allow_rebuild=True``) without parsing strings.  Transport failures —
the daemon is not running, the host does not resolve — surface as status
0 / ``ConnectionError``; a response that is not a well-formed ok/result
envelope surfaces as status 502 / ``MalformedEnvelope``.

The client is deliberately stateless: one instance per base URL, safe to
share across threads (each request opens its own connection), which is
what the load study's concurrent edit-streams do.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional, Sequence

from repro.service.wire import endpoint


class ServiceClientError(RuntimeError):
    """A daemon request that came back as an error envelope.

    ``status`` is the HTTP status, ``error_type`` the server-side exception
    class name (from the error taxonomy), ``message`` its text.
    """

    def __init__(self, status: int, error_type: str, message: str) -> None:
        super().__init__(f"[{status}] {error_type}: {message}")
        self.status = status
        self.error_type = error_type
        self.message = message


class ServiceClient:
    """Typed access to one running analysis daemon."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    @classmethod
    def for_address(cls, host: str, port: int, *,
                    timeout: float = 60.0) -> "ServiceClient":
        return cls(f"http://{host}:{port}", timeout=timeout)

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, name: str, payload: Optional[dict] = None) -> dict:
        url = self.base_url + endpoint(name)
        if payload is None:
            request = urllib.request.Request(url, method="GET")
        else:
            body = json.dumps(payload).encode("utf-8")
            request = urllib.request.Request(
                url, data=body, method="POST",
                headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                raw = response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            # Error envelopes arrive as HTTP errors; surface the taxonomy.
            try:
                envelope = json.loads(error.read().decode("utf-8"))
                detail = envelope.get("error") or {}
                raise ServiceClientError(
                    error.code, detail.get("type", "unknown"),
                    detail.get("message", str(error))) from None
            except (ValueError, AttributeError):
                raise ServiceClientError(
                    error.code, "HTTPError", str(error)) from None
        except urllib.error.URLError as error:
            # No HTTP conversation happened at all (daemon not running,
            # unresolvable host, timeout): status 0 = transport failure.
            raise ServiceClientError(
                0, "ConnectionError",
                f"cannot reach the analysis daemon at {self.base_url}: "
                f"{error.reason}") from None
        try:
            envelope = json.loads(raw)
        except ValueError:
            raise ServiceClientError(
                502, "MalformedEnvelope",
                f"the daemon's response is not JSON: {raw[:120]!r}") from None
        if not isinstance(envelope, dict):
            raise ServiceClientError(
                502, "MalformedEnvelope",
                "the daemon's response is not an ok/result envelope")
        if not envelope.get("ok"):
            detail = envelope.get("error") or {}
            raise ServiceClientError(
                detail.get("status", 500), detail.get("type", "unknown"),
                detail.get("message", "malformed error envelope"))
        if "result" not in envelope:
            raise ServiceClientError(
                502, "MalformedEnvelope",
                "the daemon's ok envelope carries no result")
        return envelope["result"]

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def open(self, session: str, *, source: Optional[str] = None,
             benchmark: Optional[str] = None,
             roots: Optional[Sequence[str]] = None,
             scale: Optional[float] = None,
             replace: bool = False) -> dict:
        payload = {"session": session, "replace": replace}
        if source is not None:
            payload["source"] = source
        if benchmark is not None:
            payload["benchmark"] = benchmark
        if roots is not None:
            payload["roots"] = list(roots)
        if scale is not None:
            payload["scale"] = scale
        return self._request("open", payload)

    def update(self, session: str, *, source: Optional[str] = None,
               edit: Optional[dict] = None,
               allow_rebuild: bool = False) -> dict:
        payload = {"session": session, "allow_rebuild": allow_rebuild}
        if source is not None:
            payload["source"] = source
        if edit is not None:
            payload["edit"] = edit
        return self._request("update", payload)

    def analyze(self, session: str, analysis: str,
                options: Optional[dict] = None, *,
                audit: bool = False) -> dict:
        payload = {"session": session, "analysis": analysis}
        if options:
            payload["options"] = options
        if audit:
            payload["audit"] = True
        return self._request("analyze", payload)

    def check(self, session: str, analysis: Optional[str] = None,
              options: Optional[dict] = None) -> dict:
        """Static diagnostics over a session (lint; audits with ``analysis``)."""
        payload = {"session": session}
        if analysis is not None:
            payload["analysis"] = analysis
        if options:
            payload["options"] = options
        return self._request("check", payload)

    def evict(self, session: str) -> dict:
        return self._request("evict", {"session": session})

    def close(self, session: str) -> dict:
        return self._request("close", {"session": session})

    def sessions(self) -> list:
        return self._request("sessions")

    def metrics(self) -> dict:
        return self._request("metrics")

    def health(self) -> dict:
        return self._request("health")
