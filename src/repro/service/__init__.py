"""Analysis-as-a-service: a long-lived daemon owning named sessions.

PR 5's incremental machinery — snapshotable solver states, program deltas,
warm resumes — only pays off when warm state outlives one process.  This
package is that process: a daemon that owns named
:class:`~repro.api.session.AnalysisSession` objects and serves analysis
requests over HTTP with JSON bodies, so an IDE plugin or a CI bot can keep
a program's solved fixpoint hot across many edit/analyze round trips.

Three layers:

* :mod:`repro.service.manager` — :class:`SessionManager`, the embeddable
  core: per-session locking for concurrent clients, delta coalescing
  (queued updates are composed and paid for by one resumed solve), LRU
  eviction of idle sessions into the engine's
  :class:`~repro.engine.snapshots.SnapshotStore` /
  :class:`~repro.engine.program_store.ProgramStore` with transparent
  rehydration, and structured per-request metrics;
* :mod:`repro.service.daemon` — the stdlib ``ThreadingHTTPServer`` wrapper
  exposing the manager as ``/v1/*`` endpoints (``repro serve``);
* :mod:`repro.service.client` — a stdlib ``urllib`` client used by the
  tests, the CI smoke, and ``benchmarks/run_service_study.py``.

Responses carry analysis reports in the versioned wire schema of
:meth:`repro.api.report.AnalysisReport.to_dict` — the same serializer
behind ``repro analyze --json`` — and errors map to HTTP statuses through
the :mod:`repro.api.errors` taxonomy.  See ``docs/service.md``.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import make_server, run_server, serving
from repro.service.manager import (
    ServiceMetrics,
    SessionManager,
    SessionSpillSpec,
)
from repro.service.wire import WIRE_OPTIONS, WIRE_VERSION

__all__ = [
    "ServiceClient",
    "ServiceClientError",
    "ServiceMetrics",
    "SessionManager",
    "SessionSpillSpec",
    "WIRE_OPTIONS",
    "WIRE_VERSION",
    "make_server",
    "run_server",
    "serving",
]
