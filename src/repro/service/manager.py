"""The session manager: named, lock-guarded, evictable analysis sessions.

:class:`SessionManager` is the embeddable core of analysis-as-a-service —
the daemon is a thin HTTP shell around it, and the tests drive it directly.
It owns a registry of named :class:`ManagedSession` objects, each wrapping
one :class:`~repro.api.session.AnalysisSession`, and provides the four
properties a long-lived server needs that a bare session does not:

**Concurrency.**  A manager-level lock guards the name registry; every
managed session carries its own re-entrant lock serializing update/analyze
on that session, so concurrent clients on *distinct* sessions proceed in
parallel while interleaved requests on *one* session are consistent.

**Delta coalescing.**  ``update`` requests queue
:class:`~repro.ir.delta.ProgramDelta` scripts instead of solving; the next
``analyze`` drains the queue and pays for all of them with one (warm,
whenever sound) solve.  An editor streaming keystroke-sized edits gets one
resumed fixpoint per analysis request, not one per edit.

**Eviction and rehydration.**  Idle sessions past ``max_live_sessions``
are spilled least-recently-used: the program goes to the engine's
:class:`~repro.engine.program_store.ProgramStore` and every analyzer
slot's solver state to the :class:`~repro.engine.snapshots.SnapshotStore`,
keyed by a :class:`SessionSpillSpec` exactly like benchmark blobs are keyed
by their specs.  The next request on an evicted session transparently
rehydrates it — program unpickled, states re-stamped with their original
session generations via
:meth:`~repro.api.session.AnalysisSession.adopt_generations` — so warm
resumption survives the round trip to disk.

**Metrics.**  Every request updates a :class:`ServiceMetrics` snapshot:
request counts, solve modes (cached / warm / cold / cold-fallback), steps
paid warm vs cold, coalescing depth, eviction traffic, and analyze-latency
percentiles.

Warm solves stay *sound*, not just fast: the manager only offers a slot's
state for resumption when the slot's generation is at or past the
session's warm barrier (no non-monotone update intervened), and the
session itself re-checks every resume — the manager is an optimization
layer, never a second soundness authority.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.errors import (
    CheckFailedError,
    NoEntryPointError,
    ServiceProtocolError,
    SessionExistsError,
    SessionNotFoundError,
    SessionRehydrationError,
)
from repro.api.registry import get_analyzer
from repro.api.session import AnalysisSession, SessionUpdate
from repro.engine.program_store import ProgramStore
from repro.engine.snapshots import SnapshotStore
from repro.ir.arena import ArenaProgram, thaw
from repro.ir.delta import NonMonotoneDeltaError, ProgramDelta, delta_between
from repro.lang.api import compile_source
from repro.service.wire import WIRE_OPTIONS
from repro.workloads.edits import EditStepSpec, build_edit_delta
from repro.workloads.generator import BenchmarkSpec
from repro.workloads.suites import DEFAULT_SCALE, extended_suites

#: How many analyze latencies the metrics ring buffer keeps.
LATENCY_WINDOW = 4096

#: Solve modes an ``analyze`` request can report.
ANALYZE_MODES = ("cached", "warm", "cold", "cold-fallback")


@dataclass(frozen=True)
class SessionSpillSpec:
    """The cache identity of one evicted session's on-disk blobs.

    A frozen dataclass so the engine stores key it through
    :func:`~repro.engine.cache.hash_dataclass` exactly like a
    :class:`~repro.workloads.generator.BenchmarkSpec`: the program blob is
    keyed by ``(session, generation)`` with an empty slot, each solver
    state by ``(session, generation, slot key)``.  Distinct generations
    get distinct blobs, so a stale spill can never shadow a newer one.
    """

    session: str
    generation: int
    slot: str = ""


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    ``q`` is in ``[0, 100]``.  Returns ``0.0`` for an empty sequence — the
    metrics snapshot wants a number, not an exception, before any request
    has been served.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] + (ordered[high] - ordered[low]) * fraction)


class ServiceMetrics:
    """Thread-safe counters and latency percentiles for one manager."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {
            "opens": 0, "updates": 0, "analyzes": 0, "closes": 0,
            "evictions": 0, "rehydrations": 0,
            "rehydration_state_misses": 0, "rebuilds": 0,
            "checks": 0, "check_findings": 0,
        }
        self.modes: Dict[str, int] = {mode: 0 for mode in ANALYZE_MODES}
        self.warm_steps_paid = 0
        self.cold_steps_paid = 0
        self.coalesced_updates = 0
        self.max_coalesced = 0
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)

    def bump(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self.counts[key] = self.counts.get(key, 0) + amount

    def record_analyze(self, *, mode: str, steps_paid: int,
                       coalesced: int, latency_seconds: float) -> None:
        with self._lock:
            self.counts["analyzes"] += 1
            self.modes[mode] = self.modes.get(mode, 0) + 1
            if mode == "warm":
                self.warm_steps_paid += steps_paid
            elif mode in ("cold", "cold-fallback"):
                self.cold_steps_paid += steps_paid
            self.coalesced_updates += coalesced
            self.max_coalesced = max(self.max_coalesced, coalesced)
            self._latencies.append(latency_seconds)

    def snapshot(self) -> dict:
        """One JSON-ready view of every counter (the ``/v1/metrics`` body)."""
        with self._lock:
            warm = self.modes["warm"]
            solved = warm + self.modes["cold"] + self.modes["cold-fallback"]
            latencies = list(self._latencies)
            return {
                "requests": dict(self.counts),
                "analyze_modes": dict(self.modes),
                "warm_resume_ratio": (warm / solved) if solved else None,
                "warm_steps_paid": self.warm_steps_paid,
                "cold_steps_paid": self.cold_steps_paid,
                "coalesced_updates": self.coalesced_updates,
                "max_coalesced": self.max_coalesced,
                "analyze_latency_ms": {
                    "count": len(latencies),
                    "p50": round(percentile(latencies, 50) * 1000, 3),
                    "p95": round(percentile(latencies, 95) * 1000, 3),
                },
            }


@dataclass
class _AnalyzerSlot:
    """One (analyzer, options) combination's last solve on a session."""

    key: str
    analysis: str
    options: Dict[str, object]
    state: Optional[object]         # SolverState, or None for CHA/RTA
    payload: Optional[dict]         # AnalysisReport.to_dict() of the solve
    generation: int                 # session generation the slot solved


@dataclass(frozen=True)
class _SlotRecord:
    """The in-memory remainder of a slot while its session is evicted."""

    key: str
    analysis: str
    options: Tuple[Tuple[str, object], ...]
    generation: int
    payload: Optional[dict]
    config: Optional[object]        # AnalysisConfig keying the snapshot
    has_state: bool


@dataclass(frozen=True)
class _EvictedSession:
    """What stays in memory for a spilled session: keys, not object graphs."""

    generation: int
    warm_barrier: int
    program_spec: SessionSpillSpec
    slots: Tuple[_SlotRecord, ...]
    barrier_reasons: Tuple[str, ...] = ()


@dataclass
class ManagedSession:
    """One named session plus its service-layer bookkeeping."""

    name: str
    origin: str                     # "source" | "benchmark"
    session: Optional[AnalysisSession]
    spec: Optional[BenchmarkSpec] = None
    roots: Optional[List[str]] = None
    lock: threading.RLock = field(default_factory=threading.RLock)
    pending: List[ProgramDelta] = field(default_factory=list)
    slots: Dict[str, _AnalyzerSlot] = field(default_factory=dict)
    evicted: Optional[_EvictedSession] = None
    last_used: float = field(default_factory=time.monotonic)

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def drain_pending(self) -> List[SessionUpdate]:
        """Apply every queued delta to the live session, in queue order."""
        applied: List[SessionUpdate] = []
        if self.pending and isinstance(self.session.program, ArenaProgram):
            # Deltas mutate the program in place, and an attached arena is
            # read-only (it may be an mmap of a shared store blob) — thaw
            # it into an equal mutable program before the first edit lands.
            self.session.program = thaw(self.session.program.arena)
        while self.pending:
            delta = self.pending.pop(0)
            applied.append(self.session.update(delta))
        return applied


def _slot_key(analysis: str, options: Dict[str, object]) -> str:
    return f"{analysis}|{json.dumps(options, sort_keys=True)}"


def validate_wire_options(options: Dict[str, object]) -> None:
    """Reject analyzer options the wire protocol does not carry."""
    for key, value in options.items():
        if key not in WIRE_OPTIONS:
            raise ServiceProtocolError(
                f"unsupported analyzer option {key!r}; the wire accepts: "
                f"{', '.join(sorted(WIRE_OPTIONS))}")
        if value is not None and not isinstance(value, (str, int)):
            raise ServiceProtocolError(
                f"analyzer option {key!r} must be a JSON scalar, "
                f"not {type(value).__name__}")


class SessionManager:
    """Named analysis sessions with locking, coalescing, and LRU eviction."""

    def __init__(self, *, max_live_sessions: int = 8,
                 spill_dir=None, default_scale: float = DEFAULT_SCALE) -> None:
        if max_live_sessions < 1:
            raise ValueError(
                f"max_live_sessions must be >= 1, got {max_live_sessions}")
        self.max_live_sessions = max_live_sessions
        self.default_scale = default_scale
        if spill_dir is None:
            # Process-lifetime scratch space; cleaned up on interpreter exit.
            self._spill_tmp = tempfile.TemporaryDirectory(
                prefix="repro-service-")
            spill_dir = self._spill_tmp.name
        self.spill_dir = Path(spill_dir)
        self._programs = ProgramStore(self.spill_dir / "programs")
        self._snapshots = SnapshotStore(self.spill_dir / "snapshots")
        self._lock = threading.Lock()
        self._sessions: Dict[str, ManagedSession] = {}
        self.metrics = ServiceMetrics()

    # ------------------------------------------------------------------ #
    # Lifecycle: open / close / listing
    # ------------------------------------------------------------------ #
    def open(self, name: str, *, source: Optional[str] = None,
             benchmark: Optional[str] = None,
             roots: Optional[Sequence[str]] = None,
             scale: Optional[float] = None,
             replace: bool = False) -> dict:
        """Create a named session from source text or a benchmark spec.

        Exactly one of ``source`` (surface-language text, compiled here)
        and ``benchmark`` (a spec name from the extended suites, generated
        or unpickled through the program store) must be given.  ``roots``
        become the session's default analysis roots.  Re-opening an
        existing name needs ``replace`` (else
        :class:`~repro.api.errors.SessionExistsError`).
        """
        if not name or not isinstance(name, str):
            raise ServiceProtocolError("session name must be a non-empty string")
        if (source is None) == (benchmark is None):
            raise ServiceProtocolError(
                "open needs exactly one of 'source' or 'benchmark'")
        root_list = list(roots) if roots else None
        # Build outside every lock: compiling / generating can be slow.
        if source is not None:
            session = AnalysisSession.from_source(
                source, roots=root_list, name=name)
            origin, spec = "source", None
        else:
            spec = self._find_benchmark(benchmark, scale)
            # Attach the spec's arena blob when one exists (zero decode;
            # analyzers only read); the first *edit* thaws it into a
            # mutable twin (see ManagedSession.drain_pending).
            program, _ = self._programs.attach_or_build(spec)
            session = AnalysisSession(program, name=name, roots=root_list)
            origin = "benchmark"
        managed = ManagedSession(name=name, origin=origin, session=session,
                                 spec=spec, roots=root_list)
        with self._lock:
            if name in self._sessions and not replace:
                raise SessionExistsError(
                    f"session {name!r} already exists; pass replace=true to "
                    f"re-open it")
            self._sessions[name] = managed
        self.metrics.bump("opens")
        self._maybe_evict(exclude=name)
        return self.describe(name)

    def close(self, name: str) -> dict:
        """Drop a session; its spilled blobs are left for the store's gc."""
        with self._lock:
            managed = self._sessions.pop(name, None)
        if managed is None:
            raise SessionNotFoundError(f"unknown session {name!r}")
        self.metrics.bump("closes")
        return {"session": name, "closed": True}

    def session_names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def describe(self, name: str) -> dict:
        """One session's public status (the ``/v1/sessions`` row shape)."""
        managed = self._require(name)
        with managed.lock:
            live = managed.session is not None
            info = {
                "session": managed.name,
                "origin": managed.origin,
                "live": live,
                "pending_updates": len(managed.pending),
                "analyses": sorted(
                    slot.analysis for slot in managed.slots.values())
                    if live else sorted(
                        record.analysis
                        for record in (managed.evicted.slots
                                       if managed.evicted else ())),
            }
            if live:
                info["generation"] = managed.session.generation
                info["warm_barrier"] = managed.session.warm_barrier
                info["methods"] = len(managed.session.program.methods)
            elif managed.evicted is not None:
                info["generation"] = managed.evicted.generation
                info["warm_barrier"] = managed.evicted.warm_barrier
        return info

    def sessions(self) -> List[dict]:
        return [self.describe(name) for name in self.session_names()]

    def metrics_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        with self._lock:
            live = sum(1 for managed in self._sessions.values()
                       if managed.session is not None)
            snapshot["sessions"] = {
                "live": live,
                "evicted": len(self._sessions) - live,
                "max_live": self.max_live_sessions,
            }
        return snapshot

    # ------------------------------------------------------------------ #
    # Updates: queued deltas, coalesced at the next analyze
    # ------------------------------------------------------------------ #
    def update(self, name: str, *, source: Optional[str] = None,
               edit: Optional[dict] = None,
               allow_rebuild: bool = False) -> dict:
        """Queue one program change on a session without solving.

        Two shapes: ``edit`` is a deterministic edit step
        (``{"kind": ..., "index": ...}``) over the session's benchmark
        spec, queued as-is; ``source`` is the *full* edited program text,
        which is compiled and structurally diffed against the session's
        program (:func:`~repro.ir.delta.delta_between`) into an additive
        delta.  A non-monotone source diff raises
        :class:`~repro.ir.delta.NonMonotoneDeltaError` (HTTP 409) unless
        ``allow_rebuild`` is set, in which case the session is rebuilt
        around the new program and every analyzer slot is dropped — the
        next analyze solves cold, with the generation history advanced so
        stale states cannot resume.
        """
        if (source is None) == (edit is None):
            raise ServiceProtocolError(
                "update needs exactly one of 'source' or 'edit'")
        managed = self._require(name)
        with managed.lock:
            self._ensure_live(managed)
            session = managed.session
            result: dict
            if edit is not None:
                if managed.spec is None:
                    raise ServiceProtocolError(
                        "edit-step updates need a benchmark-backed session; "
                        "source-backed sessions take full 'source' updates")
                step = _parse_edit_step(edit)
                delta = build_edit_delta(managed.spec, step)
                managed.pending.append(delta)
                result = {"session": name, "queued": len(managed.pending),
                          "generation": session.generation,
                          "delta": delta.name, "rebuilt": False}
            else:
                # A full-source update diffs against the *current* program,
                # so queued deltas must land first (still without a solve).
                managed.drain_pending()
                new_program = compile_source(source, validate=True)
                try:
                    delta = delta_between(
                        session.program, new_program,
                        name=f"{name}@gen{session.generation}")
                except NonMonotoneDeltaError as error:
                    if not allow_rebuild:
                        raise
                    result = self._rebuild(managed, new_program,
                                           error.reasons)
                else:
                    if not delta.is_empty:
                        managed.pending.append(delta)
                    result = {"session": name,
                              "queued": len(managed.pending),
                              "generation": session.generation,
                              "delta": delta.name,
                              "noop": delta.is_empty, "rebuilt": False}
            managed.touch()
        self.metrics.bump("updates")
        return result

    def _rebuild(self, managed: ManagedSession, new_program,
                 reasons: Tuple[str, ...] = ()) -> dict:
        """Replace a session's program wholesale after a non-monotone edit."""
        old = managed.session
        fresh = AnalysisSession(new_program, name=managed.name,
                                roots=managed.roots)
        # One generation past the old history, with the barrier at the new
        # generation: every pre-rebuild state is cold by construction.  The
        # rebuild's reasons become the barrier reasons, so later fallback
        # messages name the offending classes/methods.
        fresh.adopt_generations(old.generation + 1, old.generation + 1,
                                reasons)
        managed.session = fresh
        managed.slots = {}
        managed.pending = []
        self.metrics.bump("rebuilds")
        return {"session": managed.name, "queued": 0,
                "generation": fresh.generation, "rebuilt": True}

    # ------------------------------------------------------------------ #
    # Analyze: drain the queue, resume warm when sound
    # ------------------------------------------------------------------ #
    def analyze(self, name: str, analysis: str,
                options: Optional[dict] = None, *,
                audit: bool = False) -> dict:
        """Run one registered analysis on a session, warm whenever sound.

        Drains the session's queued deltas first (one solve pays for all of
        them), then solves: ``cached`` if this (analyzer, options) slot
        already solved the current generation, ``warm`` resuming the slot's
        state when no non-monotone update intervened, ``cold-fallback``
        when one did, plain ``cold`` on a first solve.  The response embeds
        the full versioned report payload plus the mode, the steps this
        request actually paid, and the coalescing depth.

        With ``audit``, the post-solve audits (:mod:`repro.checks.audit`,
        minus the snapshot round-trip — that is ``check``'s job) run over
        the slot's state before the response is built.  A failing audit
        raises :class:`~repro.api.errors.CheckFailedError` instead of
        returning: the daemon must not hand out an artifact that failed
        its own soundness audit.  A clean audit adds an ``"audit"`` block
        to the response.
        """
        started = time.perf_counter()
        options = dict(options or {})
        validate_wire_options(options)
        analyzer = get_analyzer(analysis)
        managed = self._require(name)
        with managed.lock:
            self._ensure_live(managed)
            session = managed.session
            coalesced = len(managed.pending)
            managed.drain_pending()
            key = _slot_key(analyzer.name, options)
            slot = managed.slots.get(key)
            fallback_reasons: List[str] = []
            if (slot is not None and slot.payload is not None
                    and slot.generation == session.generation):
                mode, steps_paid, payload = "cached", 0, slot.payload
            else:
                mode, steps_paid, payload = self._solve(
                    managed, session, analyzer, key, slot, options,
                    fallback_reasons)
            audit_block = None
            if audit:
                audit_block = self._audit_slot(managed, session, key)
            generation = session.generation
            managed.touch()
        latency = time.perf_counter() - started
        self.metrics.record_analyze(mode=mode, steps_paid=steps_paid,
                                    coalesced=coalesced,
                                    latency_seconds=latency)
        self._maybe_evict(exclude=name)
        response = {
            "session": name,
            "analysis": analyzer.name,
            "generation": generation,
            "mode": mode,
            "steps_paid": steps_paid,
            "coalesced_updates": coalesced,
            "fallback_reasons": fallback_reasons,
            "latency_ms": round(latency * 1000, 3),
            "report": payload,
        }
        if audit_block is not None:
            response["audit"] = audit_block
        return response

    def _audit_slot(self, managed: ManagedSession,
                    session: AnalysisSession, key: str) -> dict:
        """Audit one slot's solver state; caller holds the session lock.

        Raises :class:`CheckFailedError` on any error-severity finding —
        an artifact failing its audit must not be served.
        """
        from repro.checks import (
            audit_state,
            diagnostics_to_dict,
            has_errors,
            render_text,
        )

        slot = managed.slots.get(key)
        state = slot.state if slot is not None else None
        if state is None:
            # CHA/RTA produce no solver state: trivially clean.
            diagnostics = []
        else:
            diagnostics = audit_state(state, session.program,
                                      warm_barrier=session.warm_barrier,
                                      snapshot=False)
        if diagnostics:
            self.metrics.bump("check_findings", len(diagnostics))
        if has_errors(diagnostics):
            raise CheckFailedError(
                f"post-solve audit failed for session {managed.name!r}:\n"
                + render_text(diagnostics))
        return diagnostics_to_dict(diagnostics)

    def check(self, name: str, *, analysis: Optional[str] = None,
              options: Optional[dict] = None) -> dict:
        """Static diagnostics over a session (the ``/v1/check`` endpoint).

        Always runs the lint passes over the session's current program
        (queued deltas are drained first, so the lint sees what the next
        analyze would solve).  With ``analysis``, the named analyzer also
        runs — through the same slot machinery as ``analyze``, so a warm
        or cached state is reused, not re-solved — and its artifacts go
        through the full audits including the snapshot round-trip.  The
        response carries the rendered diagnostics; unlike audit-on-analyze
        it never raises on findings, because the caller asked to *see*
        them, not to gate on them.
        """
        from repro.checks import (
            CheckContext,
            audit_state,
            diagnostics_to_dict,
            run_checks,
            sort_diagnostics,
        )

        options = dict(options or {})
        validate_wire_options(options)
        analyzer = get_analyzer(analysis) if analysis is not None else None
        managed = self._require(name)
        with managed.lock:
            self._ensure_live(managed)
            session = managed.session
            managed.drain_pending()
            try:
                roots = tuple(session.resolve_roots())
            except NoEntryPointError:
                roots = ()
            diagnostics = run_checks(
                CheckContext(program=session.program, roots=roots),
                kind="lint")
            analyzed = None
            if analyzer is not None:
                key = _slot_key(analyzer.name, options)
                slot = managed.slots.get(key)
                if (slot is None or slot.payload is None
                        or slot.generation != session.generation):
                    self._solve(managed, session, analyzer, key, slot,
                                options, [])
                state = managed.slots[key].state
                analyzed = analyzer.name
                if state is not None:
                    audits = audit_state(
                        state, session.program,
                        warm_barrier=session.warm_barrier)
                    diagnostics = sort_diagnostics(
                        list(diagnostics) + list(audits))
            generation = session.generation
            managed.touch()
        self.metrics.bump("checks")
        findings = diagnostics_to_dict(diagnostics)
        if findings["diagnostics"]:
            self.metrics.bump("check_findings",
                              len(findings["diagnostics"]))
        return {
            "session": name,
            "generation": generation,
            "analysis": analyzed,
            **findings,
        }

    def _solve(self, managed: ManagedSession, session: AnalysisSession,
               analyzer, key: str, slot: Optional[_AnalyzerSlot],
               options: dict,
               fallback_reasons: List[str]) -> Tuple[str, int, dict]:
        """One solve of ``analyzer`` over ``session``; returns mode/steps/payload."""
        resume_state = None
        if slot is not None and slot.state is not None:
            if slot.generation >= session.warm_barrier:
                resume_state = slot.state
            else:
                offenders = "; ".join(session.warm_barrier_reasons)
                fallback_reasons.append(
                    f"a non-monotone update (generation "
                    f"{session.warm_barrier}) invalidated the state solved "
                    f"at generation {slot.generation}"
                    + (f": {offenders}" if offenders else ""))
        before = resume_state.counters()["steps"] if resume_state is not None else 0
        if resume_state is not None:
            # The session re-validates the resume; it may still refuse (and
            # warn) — detected below by state identity, never assumed.
            report = session.run(analyzer.name, resume=resume_state, **options)
        else:
            report = session.run(analyzer.name, **options)
        state = getattr(report.raw, "solver_state", None)
        total = report.solver_steps or 0
        if resume_state is not None and state is resume_state:
            mode, steps_paid = "warm", total - before
        elif slot is not None and slot.state is not None:
            if resume_state is not None:
                fallback_reasons.append(
                    "the session refused the resume and solved cold")
            mode, steps_paid = "cold-fallback", total
        else:
            mode, steps_paid = "cold", total
        payload = report.to_dict()
        managed.slots[key] = _AnalyzerSlot(
            key=key, analysis=analyzer.name, options=dict(options),
            state=state, payload=payload, generation=session.generation)
        return mode, steps_paid, payload

    # ------------------------------------------------------------------ #
    # Eviction and rehydration
    # ------------------------------------------------------------------ #
    def evict(self, name: str) -> dict:
        """Spill one session to disk now (the LRU path, but on demand)."""
        managed = self._require(name)
        with managed.lock:
            if managed.session is None:
                return {"session": name, "evicted": False,
                        "already_evicted": True}
            self._spill(managed)
        return {"session": name, "evicted": True}

    def _maybe_evict(self, exclude: Optional[str] = None) -> int:
        """Spill least-recently-used sessions beyond ``max_live_sessions``.

        Busy sessions are skipped rather than waited for (their lock is
        probed, not blocked on), so eviction can never deadlock against a
        request holding a session lock while opening the manager lock.
        """
        evicted = 0
        with self._lock:
            live = [managed for managed in self._sessions.values()
                    if managed.session is not None]
            excess = len(live) - self.max_live_sessions
            if excess <= 0:
                return 0
            for managed in sorted(live, key=lambda entry: entry.last_used):
                if evicted >= excess:
                    break
                if managed.name == exclude:
                    continue
                if not managed.lock.acquire(blocking=False):
                    continue
                try:
                    if managed.session is not None:
                        self._spill(managed)
                        evicted += 1
                finally:
                    managed.lock.release()
        return evicted

    def _spill(self, managed: ManagedSession) -> None:
        """Persist a live session's program and states; caller holds its lock."""
        managed.drain_pending()   # The blob must reflect every queued edit.
        session = managed.session
        generation = session.generation
        program_spec = SessionSpillSpec(session=managed.name,
                                        generation=generation)
        self._programs.store(program_spec, session.program)
        records = []
        for slot in managed.slots.values():
            has_state = slot.state is not None
            config = slot.state.config if has_state else None
            if has_state:
                self._snapshots.store(
                    SessionSpillSpec(session=managed.name,
                                     generation=slot.generation,
                                     slot=slot.key),
                    config, slot.state, session.program)
            records.append(_SlotRecord(
                key=slot.key, analysis=slot.analysis,
                options=tuple(sorted(slot.options.items())),
                generation=slot.generation, payload=slot.payload,
                config=config, has_state=has_state))
        managed.evicted = _EvictedSession(
            generation=generation, warm_barrier=session.warm_barrier,
            program_spec=program_spec, slots=tuple(records),
            barrier_reasons=session.warm_barrier_reasons)
        managed.session = None
        managed.slots = {}
        self.metrics.bump("evictions")

    def _ensure_live(self, managed: ManagedSession) -> None:
        """Rehydrate an evicted session in place; caller holds its lock."""
        if managed.session is not None:
            return
        evicted = managed.evicted
        if evicted is None:  # pragma: no cover — open() always sets one side
            raise SessionRehydrationError(
                f"session {managed.name!r} has neither a live session nor "
                f"an eviction record")
        # An unedited arena-backed session spilled as its own arena blob
        # (no pickle), so try the zero-decode attach first; edited sessions
        # spilled a pickle and rehydrate through the ordinary load.
        program = (self._programs.attach(evicted.program_spec)
                   or self._programs.load(evicted.program_spec))
        if program is None:
            raise SessionRehydrationError(
                f"session {managed.name!r}: the evicted program blob "
                f"(generation {evicted.generation}) is missing or unreadable")
        session = AnalysisSession(program, name=managed.name,
                                  roots=managed.roots)
        session.adopt_generations(evicted.generation, evicted.warm_barrier,
                                  evicted.barrier_reasons)
        slots: Dict[str, _AnalyzerSlot] = {}
        state_misses = 0
        for record in evicted.slots:
            state = None
            if record.has_state:
                state = self._snapshots.load(
                    SessionSpillSpec(session=managed.name,
                                     generation=record.generation,
                                     slot=record.key),
                    record.config)
                if state is None:
                    # A lost snapshot costs warmth, never correctness: the
                    # slot keeps its payload and the next solve runs cold.
                    state_misses += 1
                else:
                    # Serialized states do not carry session generations
                    # (meaningless across processes); within this manager
                    # the lineage is known, so re-stamp it.
                    state.session_generation = record.generation
            slots[record.key] = _AnalyzerSlot(
                key=record.key, analysis=record.analysis,
                options=dict(record.options), state=state,
                payload=record.payload, generation=record.generation)
        managed.session = session
        managed.slots = slots
        managed.evicted = None
        self.metrics.bump("rehydrations")
        if state_misses:
            self.metrics.bump("rehydration_state_misses", state_misses)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _require(self, name: str) -> ManagedSession:
        with self._lock:
            managed = self._sessions.get(name)
        if managed is None:
            raise SessionNotFoundError(f"unknown session {name!r}")
        return managed

    def _find_benchmark(self, name: str,
                        scale: Optional[float]) -> BenchmarkSpec:
        for specs in extended_suites(
                scale=scale or self.default_scale).values():
            for spec in specs:
                if spec.name == name:
                    return spec
        raise ServiceProtocolError(f"unknown benchmark {name!r}")


def _parse_edit_step(edit: dict) -> EditStepSpec:
    if not isinstance(edit, dict):
        raise ServiceProtocolError(
            "'edit' must be an object with 'kind' and 'index'")
    extra = set(edit) - {"kind", "index"}
    if extra:
        raise ServiceProtocolError(
            f"unknown edit fields: {', '.join(sorted(extra))}")
    try:
        return EditStepSpec(kind=edit.get("kind"),
                            index=edit.get("index", 0))
    except (TypeError, ValueError) as error:
        raise ServiceProtocolError(f"bad edit step: {error}") from None
