"""The service wire protocol: endpoints, envelopes, and option whitelist.

One small module both sides import, so the daemon and the client cannot
drift apart on names.  The protocol is deliberately plain:

* every endpoint lives under ``/v1/``; state-changing operations are
  ``POST`` with a JSON object body, introspection is ``GET``;
* every response is a JSON *envelope*: ``{"ok": true, "result": ...}`` on
  success, ``{"ok": false, "error": {"type", "message", "status"}}`` on
  failure, with the HTTP status mirroring ``error.status`` (mapped from the
  exception through :func:`repro.api.errors.http_status_for`);
* analysis payloads inside ``result.report`` use the versioned schema of
  :meth:`repro.api.report.AnalysisReport.to_dict` — the same bytes
  ``repro analyze --json`` prints.
"""

from __future__ import annotations

#: Version segment of every endpoint path.  Distinct from the *report*
#: schema version: this one covers request/response envelopes and endpoint
#: names, that one covers the analysis payload inside them.
WIRE_VERSION = 1

#: Path prefix of every endpoint (``/v1``).
WIRE_PREFIX = f"/v{WIRE_VERSION}"

#: ``POST`` endpoints (JSON object body) and ``GET`` endpoints, by suffix.
POST_ENDPOINTS = ("open", "update", "analyze", "check", "evict", "close")
GET_ENDPOINTS = ("sessions", "metrics", "health")

#: Analyzer options accepted over the wire.  The subset of
#: :class:`~repro.api.registry.ConfigAnalyzer` options whose values are
#: JSON scalars — ``policy`` (a live :class:`SolverPolicy` object) stays
#: in-process only.  ``kernel`` selects the bit-identical propagation
#: kernel (``object``/``arena``/``parallel``) and ``partitions`` the
#: parallel kernel's worker count; both change throughput, never results.
WIRE_OPTIONS = frozenset(
    {"saturation_threshold", "saturation_policy", "scheduling", "kernel",
     "partitions"})


def endpoint(name: str) -> str:
    """The request path for one endpoint suffix (``open`` → ``/v1/open``)."""
    return f"{WIRE_PREFIX}/{name}"


def ok_envelope(result: object) -> dict:
    return {"ok": True, "result": result}


def error_envelope(error: BaseException, status: int) -> dict:
    return {
        "ok": False,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "status": status,
        },
    }
