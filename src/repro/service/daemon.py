"""The analysis daemon: a stdlib HTTP shell around :class:`SessionManager`.

``repro serve`` runs this.  The server is a plain
:class:`http.server.ThreadingHTTPServer` — no framework, no new
dependencies — with one handler class closed over one manager.  Requests
map one-to-one onto manager methods:

====================  =====================================================
``POST /v1/open``     ``{"session", "source" | "benchmark", "roots"?,``
                      ``"scale"?, "replace"?}`` — create a named session
``POST /v1/update``   ``{"session", "source" | "edit", "allow_rebuild"?}``
                      — queue a program change (no solve)
``POST /v1/analyze``  ``{"session", "analysis", "options"?, "audit"?}`` —
                      drain the queue and solve (warm when sound); the
                      response embeds the versioned report payload; with
                      ``audit`` the post-solve audits gate the response
                      (a failing audit is a 500, not a result)
``POST /v1/check``    ``{"session", "analysis"?, "options"?}`` — run the
                      lint passes over the session's program, plus the
                      full audits of the named analysis if one is given;
                      the response lists the diagnostics
``POST /v1/evict``    ``{"session"}`` — spill to disk now (testing/ops)
``POST /v1/close``    ``{"session"}`` — drop the session
``GET /v1/sessions``  every session's status
``GET /v1/metrics``   the :class:`ServiceMetrics` snapshot
``GET /v1/health``    liveness probe
====================  =====================================================

Every response is an envelope (see :mod:`repro.service.wire`); errors are
mapped to HTTP statuses by :func:`repro.api.errors.http_status_for`, so a
non-monotone source update is a 409, an unknown session a 404, a compile
failure a 422 — the same taxonomy the CLI maps to exit codes.

Because the server is threading, concurrent clients genuinely exercise the
manager's locking: requests on distinct sessions run in parallel, requests
on one session serialize on its lock.
"""

from __future__ import annotations

import contextlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.api.errors import ServiceProtocolError, http_status_for
from repro.service.manager import SessionManager
from repro.service.wire import endpoint, error_envelope, ok_envelope

#: Largest request body the daemon will read, as a sanity bound (16 MiB
#: comfortably fits any benchmark source this repo can express).
MAX_BODY_BYTES = 16 * 1024 * 1024


def make_handler(manager: SessionManager):
    """The request-handler class for one manager (stdlib handler idiom)."""

    class AnalysisRequestHandler(BaseHTTPRequestHandler):
        # Quiet by default: the daemon's stdout is for the CLI banner, not
        # one line per request.  Flip for debugging.
        log_quietly = True
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            if not self.log_quietly:
                super().log_message(format, *args)

        # -------------------------------------------------------------- #
        # Plumbing
        # -------------------------------------------------------------- #
        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _reply_error(self, error: BaseException) -> None:
            status = http_status_for(error)
            self._reply(status, error_envelope(error, status))

        def _read_request(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise ServiceProtocolError(
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit")
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as err:
                raise ServiceProtocolError(
                    f"request body is not valid JSON: {err}") from None
            if not isinstance(payload, dict):
                raise ServiceProtocolError(
                    "request body must be a JSON object")
            return payload

        @staticmethod
        def _field(payload: dict, name: str, *, required: bool = True):
            value = payload.get(name)
            if required and value is None:
                raise ServiceProtocolError(f"missing request field {name!r}")
            return value

        # -------------------------------------------------------------- #
        # Routes
        # -------------------------------------------------------------- #
        def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
            try:
                if self.path == endpoint("sessions"):
                    result = manager.sessions()
                elif self.path == endpoint("metrics"):
                    result = manager.metrics_snapshot()
                elif self.path == endpoint("health"):
                    result = {"status": "ok",
                              "sessions": len(manager.session_names())}
                else:
                    raise ServiceProtocolError(
                        f"unknown endpoint {self.path!r}")
                self._reply(200, ok_envelope(result))
            except Exception as error:  # noqa: BLE001 - mapped to statuses
                self._reply_error(error)

        def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
            try:
                payload = self._read_request()
                if self.path == endpoint("open"):
                    result = manager.open(
                        self._field(payload, "session"),
                        source=payload.get("source"),
                        benchmark=payload.get("benchmark"),
                        roots=payload.get("roots"),
                        scale=payload.get("scale"),
                        replace=bool(payload.get("replace", False)))
                elif self.path == endpoint("update"):
                    result = manager.update(
                        self._field(payload, "session"),
                        source=payload.get("source"),
                        edit=payload.get("edit"),
                        allow_rebuild=bool(
                            payload.get("allow_rebuild", False)))
                elif self.path == endpoint("analyze"):
                    options = payload.get("options")
                    if options is not None and not isinstance(options, dict):
                        raise ServiceProtocolError(
                            "'options' must be a JSON object")
                    result = manager.analyze(
                        self._field(payload, "session"),
                        self._field(payload, "analysis"),
                        options=options,
                        audit=bool(payload.get("audit", False)))
                elif self.path == endpoint("check"):
                    options = payload.get("options")
                    if options is not None and not isinstance(options, dict):
                        raise ServiceProtocolError(
                            "'options' must be a JSON object")
                    result = manager.check(
                        self._field(payload, "session"),
                        analysis=payload.get("analysis"),
                        options=options)
                elif self.path == endpoint("evict"):
                    result = manager.evict(self._field(payload, "session"))
                elif self.path == endpoint("close"):
                    result = manager.close(self._field(payload, "session"))
                else:
                    raise ServiceProtocolError(
                        f"unknown endpoint {self.path!r}")
                self._reply(200, ok_envelope(result))
            except Exception as error:  # noqa: BLE001 - mapped to statuses
                self._reply_error(error)

    return AnalysisRequestHandler


def make_server(manager: Optional[SessionManager] = None, *,
                host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """A bound (not yet serving) daemon; ``port=0`` picks a free port.

    The manager is reachable as ``server.manager`` and the bound address
    as ``server.server_address`` — tests and the CLI both need them.
    """
    manager = manager or SessionManager()
    server = ThreadingHTTPServer((host, port), make_handler(manager))
    server.daemon_threads = True
    server.manager = manager
    return server


@contextlib.contextmanager
def serving(manager: Optional[SessionManager] = None, *,
            host: str = "127.0.0.1", port: int = 0):
    """Context manager running a daemon on a background thread.

    Yields the server (address in ``server.server_address``); shuts the
    serve loop down and joins the thread on exit.  This is what the tests,
    the CI smoke, and the load study use — the blocking
    :func:`run_server` is only for ``repro serve``.
    """
    server = make_server(manager, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service", daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()


def run_server(server: ThreadingHTTPServer) -> None:
    """Serve until interrupted (the ``repro serve`` foreground loop)."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
