"""The policy study: solver effort and precision across kernel policies.

The solver kernel (:mod:`repro.core.kernel`) makes worklist scheduling and
megamorphic-flow saturation pluggable, and this module renders what each
combination costs for one benchmark.  Every point is one engine column of a
``run_config_matrix`` row — one (scheduling, saturation) pair — and the
``fifo`` + ``off`` point (the bit-identical seed default) is the reference
everything else is measured against:

* **scheduling** changes solver *effort only*: every fair worklist order
  reaches the same fixed point, so reachable methods must be constant down
  a saturation column and only steps/joins/wall time move;
* **saturation** additionally trades *precision*: the reachable delta
  against the exact reference is the precision loss, and the study shows
  whether a smarter sentinel (``declared-type``) keeps the loss — and the
  re-inflation of solver steps it causes — smaller than the classic
  ``closed-world`` top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # import-time cycle: engine.runner renders via this module
    from repro.engine.runner import MatrixRow

#: The reference column label: the seed-identical kernel setup.
REFERENCE_LABEL = "fifo/off"


@dataclass(frozen=True)
class PolicyPoint:
    """One (scheduling, saturation) combination's measurements for one spec."""

    label: str
    scheduling: str
    saturation: str
    reachable_methods: int
    solver_steps: int
    solver_joins: int
    saturated_flows: int
    analysis_time_seconds: float

    @property
    def is_reference(self) -> bool:
        return self.label == REFERENCE_LABEL


def policy_points(row: "MatrixRow") -> List[PolicyPoint]:
    """Extract the study points from one matrix row (columns keep order).

    Column names must be policy labels (``<scheduling>/<saturation>`` with
    an optional ``@threshold`` suffix), which is what
    ``benchmarks/run_policy_study.py`` passes to ``run_config_matrix``.
    """
    points = []
    for run in row.runs:
        scheduling, _, saturation = run.name.partition("/")
        points.append(PolicyPoint(
            label=run.name,
            scheduling=scheduling,
            saturation=saturation,
            reachable_methods=run.report.metrics.reachable_methods,
            solver_steps=run.report.solver_steps,
            solver_joins=run.report.solver_joins,
            saturated_flows=run.report.saturated_flows,
            analysis_time_seconds=run.report.analysis_time_seconds,
        ))
    return points


def _percent_change(value: float, reference: float) -> float:
    if reference == 0:
        return 0.0
    return 100.0 * (value - reference) / reference


def format_policy_study(benchmark: str,
                        points: Sequence[PolicyPoint]) -> str:
    """Render one benchmark's scheduling×saturation sweep as a text table.

    Deltas are relative to the ``fifo/off`` reference, which must be
    present; positive reachable deltas are precision losses (saturation
    only — scheduling rows within one saturation column must agree), and
    negative steps/joins/time deltas are savings.
    """
    reference = next((p for p in points if p.is_reference), None)
    if reference is None:
        raise ValueError(
            f"policy sweep needs the {REFERENCE_LABEL!r} reference point")

    headers = ["Scheduling", "Saturation", "Reach.Methods", "Sat.Flows",
               "Steps", "Joins", "Analysis[ms]"]
    table: List[List[str]] = [headers]
    for point in points:
        if point.is_reference:
            reach = f"{point.reachable_methods}"
            steps = f"{point.solver_steps}"
            joins = f"{point.solver_joins}"
            elapsed = f"{point.analysis_time_seconds * 1000:.1f}"
        else:
            reach_delta = _percent_change(point.reachable_methods,
                                          reference.reachable_methods)
            steps_delta = _percent_change(point.solver_steps,
                                          reference.solver_steps)
            joins_delta = _percent_change(point.solver_joins,
                                          reference.solver_joins)
            time_delta = _percent_change(point.analysis_time_seconds,
                                         reference.analysis_time_seconds)
            reach = f"{point.reachable_methods} ({reach_delta:+.1f}%)"
            steps = f"{point.solver_steps} ({steps_delta:+.1f}%)"
            joins = f"{point.solver_joins} ({joins_delta:+.1f}%)"
            elapsed = (f"{point.analysis_time_seconds * 1000:.1f} "
                       f"({time_delta:+.1f}%)")
        table.append([point.scheduling, point.saturation, reach,
                      f"{point.saturated_flows}", steps, joins, elapsed])

    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = [f"Policy study: {benchmark} "
             "(deltas vs fifo/off; +reach = precision loss, "
             "-steps/-joins/-time = savings)"]
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def summarize_policy_sweep(points: Sequence[PolicyPoint]) -> dict:
    """Headline numbers for one spec's sweep.

    Reports the cheapest non-reference point by solver steps, and — per
    saturation policy — the precision loss against the exact reference, so
    the study can answer "which schedule is cheapest" and "which sentinel
    loses least" in one line each.
    """
    reference = next(p for p in points if p.is_reference)
    others = [p for p in points if not p.is_reference]
    cheapest = min(others, key=lambda p: p.solver_steps, default=reference)
    loss_by_saturation = {}
    for point in points:
        delta = _percent_change(point.reachable_methods,
                                reference.reachable_methods)
        current = loss_by_saturation.get(point.saturation)
        if current is None or delta > current:
            loss_by_saturation[point.saturation] = delta
    return {
        "cheapest_label": cheapest.label,
        "cheapest_steps_delta_percent": _percent_change(
            cheapest.solver_steps, reference.solver_steps),
        "reachable_loss_percent_by_saturation": loss_by_saturation,
    }
