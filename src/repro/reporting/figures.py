"""Figure 9: all metrics normalized to the baseline, per benchmark suite."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.reporting.records import METRIC_NAMES, BenchmarkComparison

#: Metrics plotted by Figure 9, in legend order.
FIGURE9_METRICS = METRIC_NAMES


def figure9_series(comparisons: Iterable[BenchmarkComparison]
                   ) -> Dict[str, Dict[str, float]]:
    """Per-benchmark normalized metric values (1.0 = baseline, lower is better)."""
    series: Dict[str, Dict[str, float]] = {}
    for comparison in comparisons:
        series[comparison.benchmark] = {
            metric: comparison.normalized(metric) for metric in FIGURE9_METRICS
        }
    return series


def _bar(value: float, width: int = 30) -> str:
    filled = max(0, min(width, int(round(value * width))))
    return "#" * filled


def format_figure9(comparisons: Sequence[BenchmarkComparison],
                   suite_name: str, bar_metric: str = "reachable_methods") -> str:
    """ASCII rendering of one Figure 9 panel.

    Every benchmark gets a bar for ``bar_metric`` (normalized to the baseline)
    plus the numeric values of all other metrics; anything below 1.0 is an
    improvement over the baseline, exactly as in the paper's figure.
    """
    series = figure9_series(comparisons)
    lines = [f"Figure 9 ({suite_name}): metrics normalized to PTA (lower is better)", ""]
    name_width = max((len(name) for name in series), default=10)
    for name, metrics in series.items():
        bar_value = metrics[bar_metric]
        lines.append(
            f"{name.ljust(name_width)}  {bar_metric}={bar_value:5.2f} "
            f"|{_bar(bar_value):<30}|"
        )
        details = "  ".join(
            f"{metric}={metrics[metric]:.2f}"
            for metric in FIGURE9_METRICS if metric != bar_metric
        )
        lines.append(f"{' ' * name_width}  {details}")
    averages = suite_averages(comparisons)
    lines.append("")
    lines.append(
        "suite averages: "
        + "  ".join(f"{metric}={averages[metric]:.2f}" for metric in FIGURE9_METRICS)
    )
    return "\n".join(lines)


def suite_averages(comparisons: Sequence[BenchmarkComparison]) -> Dict[str, float]:
    """Average normalized value of every metric across a suite."""
    if not comparisons:
        return {metric: 1.0 for metric in FIGURE9_METRICS}
    averages: Dict[str, float] = {}
    for metric in FIGURE9_METRICS:
        values = [comparison.normalized(metric) for comparison in comparisons]
        averages[metric] = sum(values) / len(values)
    return averages
