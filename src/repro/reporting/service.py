"""The service study: analysis-as-a-service latency and warm-serving cost.

Two kinds of measurements come out of ``benchmarks/run_service_study.py``:

* a **serving trace** over one benchmark session — one
  :class:`ServicePoint` per edit/analyze round trip through the daemon,
  recording the mode the manager chose (warm / cold / cached), the solver
  steps that request actually paid, the cold-solve cost of the same edited
  program (measured from scratch, not assumed), the end-to-end latency,
  and whether the served fixpoint equals the cold one;
* a **load result** — concurrent clients streaming edits against the
  daemon, summarized as request counts, latency percentiles, and the
  manager's warm-resume ratio (:class:`LoadResult`).

The headline claim mirrors the incremental study's, now measured through
the wire: warm serving pays a few percent of the cold solve per edit, and
eviction to disk plus rehydration preserves both the warmth and the
fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class ServicePoint:
    """One served analyze request, with its cold-solve reference."""

    label: str
    mode: str
    steps_paid: int
    cold_steps: int
    latency_ms: float
    reachable_methods: int
    fixpoint_match: bool

    @property
    def warm_step_percent(self) -> float:
        """Steps this request paid as a percentage of the cold solve."""
        if self.cold_steps == 0:
            return 0.0
        return 100.0 * self.steps_paid / self.cold_steps


@dataclass(frozen=True)
class LoadResult:
    """A concurrent edit-stream phase against one daemon."""

    clients: int
    rounds: int
    requests: int
    p50_ms: float
    p95_ms: float
    analyze_modes: dict
    warm_resume_ratio: float


def format_service_study(benchmark: str,
                         points: Sequence[ServicePoint]) -> str:
    """Render one session's serving trace as a text table."""
    headers = ["Request", "Mode", "Paid steps", "Cold steps", "Warm%",
               "Reach.", "Latency[ms]", "Fixpoint"]
    table: List[List[str]] = [headers]
    for point in points:
        table.append([
            point.label,
            point.mode,
            f"{point.steps_paid}",
            f"{point.cold_steps}",
            f"{point.warm_step_percent:.1f}%",
            f"{point.reachable_methods}",
            f"{point.latency_ms:.1f}",
            "ok" if point.fixpoint_match else "MISMATCH",
        ])
    widths = [max(len(row[col]) for row in table)
              for col in range(len(headers))]
    lines = [f"Service study: {benchmark} "
             "(each row is one analyze request through the daemon; cold "
             "steps measured by a from-scratch solve of the same program)"]
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def format_load_result(result: LoadResult) -> str:
    modes = ", ".join(f"{mode}={count}"
                      for mode, count in sorted(result.analyze_modes.items())
                      if count)
    ratio = ("n/a" if result.warm_resume_ratio is None
             else f"{100.0 * result.warm_resume_ratio:.1f}%")
    return "\n".join([
        f"Load phase: {result.clients} concurrent clients x "
        f"{result.rounds} edit/analyze rounds "
        f"({result.requests} analyze requests)",
        f"  analyze latency: p50 {result.p50_ms:.1f} ms, "
        f"p95 {result.p95_ms:.1f} ms",
        f"  solve modes: {modes}",
        f"  warm-resume ratio (of actual solves): {ratio}",
    ])


def summarize_service(points: Sequence[ServicePoint]) -> dict:
    """Headline numbers for one serving trace.

    Warm percentages are computed over the *warm* requests only — the
    initial cold solve is the reference, not a data point — and the
    fixpoint flag covers every request including the rehydration ones.
    """
    warm = [point for point in points if point.mode == "warm"]
    percents = [point.warm_step_percent for point in warm]
    return {
        "requests": len(points),
        "warm_requests": len(warm),
        "all_fixpoints_match": all(p.fixpoint_match for p in points),
        "max_warm_step_percent": max(percents) if percents else 0.0,
        "mean_warm_step_percent": (sum(percents) / len(percents)
                                   if percents else 0.0),
        "total_paid_steps": sum(p.steps_paid for p in points),
        "total_cold_steps": sum(p.cold_steps for p in points),
    }
