"""Comparison records: one benchmark, baseline vs SkipFlow."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.analysis import AnalysisConfig
from repro.image.builder import ImageBuildReport, NativeImageBuilder
from repro.workloads.generator import BenchmarkSpec, generate_benchmark

#: The metric columns of Table 1, in paper order.
METRIC_NAMES = (
    "analysis_time",
    "total_time",
    "reachable_methods",
    "type_checks",
    "null_checks",
    "prim_checks",
    "poly_calls",
    "binary_size",
)


def _metric_value(report: ImageBuildReport, metric: str) -> float:
    if metric == "analysis_time":
        return report.analysis_time_seconds
    if metric == "total_time":
        return report.total_time_seconds
    if metric == "reachable_methods":
        return float(report.metrics.reachable_methods)
    if metric == "type_checks":
        return float(report.metrics.type_checks)
    if metric == "null_checks":
        return float(report.metrics.null_checks)
    if metric == "prim_checks":
        return float(report.metrics.primitive_checks)
    if metric == "poly_calls":
        return float(report.metrics.poly_calls)
    if metric == "binary_size":
        return float(report.binary_size_bytes)
    raise KeyError(f"unknown metric {metric!r}")


@dataclass
class BenchmarkComparison:
    """Baseline and SkipFlow build reports for one benchmark."""

    benchmark: str
    suite: str
    baseline: ImageBuildReport
    skipflow: ImageBuildReport
    spec: Optional[BenchmarkSpec] = None

    def metric(self, name: str, configuration: str = "skipflow") -> float:
        report = self.skipflow if configuration == "skipflow" else self.baseline
        return _metric_value(report, name)

    def normalized(self, name: str) -> float:
        """SkipFlow metric normalized to the baseline (values < 1.0 are improvements)."""
        base = _metric_value(self.baseline, name)
        if base == 0:
            return 1.0
        return _metric_value(self.skipflow, name) / base

    def reduction_percent(self, name: str) -> float:
        """Percentage reduction of a metric relative to the baseline."""
        return (1.0 - self.normalized(name)) * 100.0

    @property
    def reachable_method_reduction_percent(self) -> float:
        return self.reduction_percent("reachable_methods")

    def as_dict(self) -> Dict[str, float]:
        row: Dict[str, float] = {"benchmark": self.benchmark, "suite": self.suite}
        for metric in METRIC_NAMES:
            row[f"pta_{metric}"] = _metric_value(self.baseline, metric)
            row[f"skipflow_{metric}"] = _metric_value(self.skipflow, metric)
            row[f"reduction_{metric}_percent"] = self.reduction_percent(metric)
        return row


def compare_configurations(spec: BenchmarkSpec,
                           baseline_config: Optional[AnalysisConfig] = None,
                           skipflow_config: Optional[AnalysisConfig] = None
                           ) -> BenchmarkComparison:
    """Generate one benchmark and build it with both configurations."""
    program_for_baseline = generate_benchmark(spec)
    program_for_skipflow = generate_benchmark(spec)
    baseline_config = baseline_config or AnalysisConfig.baseline_pta()
    skipflow_config = skipflow_config or AnalysisConfig.skipflow()
    baseline = NativeImageBuilder(
        program_for_baseline, baseline_config, benchmark_name=spec.name).build()
    skipflow = NativeImageBuilder(
        program_for_skipflow, skipflow_config, benchmark_name=spec.name).build()
    return BenchmarkComparison(
        benchmark=spec.name, suite=spec.suite, baseline=baseline,
        skipflow=skipflow, spec=spec,
    )


def compare_suite(specs: Iterable[BenchmarkSpec]) -> List[BenchmarkComparison]:
    """Run the baseline/SkipFlow comparison for every benchmark of a suite."""
    return [compare_configurations(spec) for spec in specs]
