"""Versioned benchmark trajectories: ``BENCH_<n>.json`` files plus a trend.

A *trajectory* records one benchmark run as rows of
(spec × policy × kernel) cells — solver steps, joins, and wall time — so
that successive runs of the same study become a numbered series the repo
can keep forever: ``BENCH_1.json`` is the first recorded run,
``BENCH_2.json`` the next, and so on.  The files are written by the study
runners (``benchmarks/run_arena_study.py`` writes the arena cold-solve
matrix) and read back by :func:`format_trend`, a tiny renderer that lines
the series up per cell and shows how the headline metric moved.

The payload is versioned (``trajectory_version``) independently of the
engine's code version: a trajectory is an *observation log*, not a cache —
old entries stay meaningful after the code changes, which is exactly what
makes the trend interesting.  Foreign-version files are skipped by
:func:`load_history`, never deleted.

Schema (version 1)::

    {
      "trajectory_version": 1,
      "study":    "arena-cold-solve",          # which runner wrote it
      "headline": {"name": "...", "value": x}, # the study's one number
      "rows": [
        {"spec": ..., "policy": ..., "kernel": ...,
         "steps": n, "joins": n, "wall_time_seconds": s},
        ...
      ],
      ...                                      # runners may add context
    }
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Bumped when the row shape or required keys change; ``load_history``
#: skips files carrying any other version.
TRAJECTORY_VERSION = 1

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")

#: Keys every row must carry (the spec × policy × kernel cell identity
#: plus the three measurements the trend renderer lines up).
ROW_KEYS = ("spec", "policy", "kernel", "steps", "joins",
            "wall_time_seconds")


@dataclass(frozen=True)
class TrajectoryRow:
    """One (spec, policy, kernel) cell of a recorded benchmark run."""

    spec: str
    policy: str
    kernel: str
    steps: int
    joins: int
    wall_time_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


class TrajectoryError(ValueError):
    """A payload that is not (or no longer) a readable trajectory."""


# ---------------------------------------------------------------------- #
# Naming
# ---------------------------------------------------------------------- #
def bench_path(directory, index: int) -> Path:
    """The path of trajectory ``index`` under ``directory``."""
    return Path(directory) / f"BENCH_{index}.json"


def existing_indices(directory) -> List[int]:
    """The recorded trajectory numbers under ``directory``, ascending."""
    root = Path(directory)
    if not root.is_dir():
        return []
    indices = []
    for path in root.iterdir():
        match = _BENCH_NAME.match(path.name)
        if match:
            indices.append(int(match.group(1)))
    return sorted(indices)


def next_index(directory) -> int:
    """The number the *next* trajectory should get (1 for an empty dir)."""
    taken = existing_indices(directory)
    return (taken[-1] + 1) if taken else 1


# ---------------------------------------------------------------------- #
# Write / read
# ---------------------------------------------------------------------- #
def write_trajectory(directory, *, study: str,
                     rows: Sequence[TrajectoryRow],
                     headline: Tuple[str, float],
                     extra: Optional[Dict[str, object]] = None,
                     index: Optional[int] = None) -> Path:
    """Persist one run as the next ``BENCH_<n>.json`` under ``directory``.

    ``headline`` is the study's one number — the value the trend renderer
    tracks across runs (the arena study passes its measured speedup).
    ``extra`` lands verbatim in the payload for human context (config
    labels, host notes); it is never interpreted.  Pass ``index`` to
    overwrite a specific slot (the CI smoke pins index 1 so reruns do not
    accumulate); by default the run gets a fresh number.
    """
    if not rows:
        raise TrajectoryError("a trajectory needs at least one row")
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    slot = next_index(root) if index is None else index
    name, value = headline
    payload: Dict[str, object] = dict(extra or {})
    payload.update({
        "trajectory_version": TRAJECTORY_VERSION,
        "study": study,
        "headline": {"name": name, "value": value},
        "rows": [row.as_dict() for row in rows],
    })
    target = bench_path(root, slot)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def parse_trajectory(payload: Dict[str, object]) -> List[TrajectoryRow]:
    """Validate a loaded payload and return its rows.

    Raises :class:`TrajectoryError` on a foreign version or malformed rows
    — the strict counterpart of :func:`load_history`'s skip-and-continue.
    """
    version = payload.get("trajectory_version")
    if version != TRAJECTORY_VERSION:
        raise TrajectoryError(
            f"unsupported trajectory version {version!r} "
            f"(expected {TRAJECTORY_VERSION})")
    raw_rows = payload.get("rows")
    if not isinstance(raw_rows, list) or not raw_rows:
        raise TrajectoryError("trajectory has no rows")
    rows = []
    for position, raw in enumerate(raw_rows):
        if not isinstance(raw, dict):
            raise TrajectoryError(f"row {position} is not an object")
        missing = [key for key in ROW_KEYS if key not in raw]
        if missing:
            raise TrajectoryError(
                f"row {position} is missing {', '.join(missing)}")
        rows.append(TrajectoryRow(
            spec=str(raw["spec"]), policy=str(raw["policy"]),
            kernel=str(raw["kernel"]), steps=int(raw["steps"]),
            joins=int(raw["joins"]),
            wall_time_seconds=float(raw["wall_time_seconds"])))
    return rows


def load_history(directory) -> List[Tuple[int, Dict[str, object]]]:
    """Every readable trajectory under ``directory`` as (index, payload).

    Unreadable JSON and foreign-version payloads are skipped, not raised:
    the trend keeps rendering around one bad file.
    """
    history = []
    for index in existing_indices(directory):
        try:
            payload = json.loads(bench_path(directory, index).read_text())
            parse_trajectory(payload)
        except (OSError, ValueError):
            continue
        history.append((index, payload))
    return history


# ---------------------------------------------------------------------- #
# Trend rendering
# ---------------------------------------------------------------------- #
def format_trend(history: Sequence[Tuple[int, Dict[str, object]]]) -> str:
    """A compact text trend over recorded trajectories.

    One line per run shows the headline metric; below it, each
    (spec, policy, kernel) cell present in *every* run gets a wall-time
    series, so a regression is visible as a rising tail.  Cells that come
    and go between runs are left out of the per-cell block (their series
    would not be comparable) but still counted in the row totals.
    """
    if not history:
        return "trajectory trend: no recorded runs"
    lines = ["trajectory trend:"]
    for index, payload in history:
        headline = payload.get("headline", {})
        rows = parse_trajectory(payload)
        lines.append(
            f"  BENCH_{index}: {payload.get('study', '?')} — "
            f"{headline.get('name', 'headline')} = "
            f"{_fmt(headline.get('value'))} ({len(rows)} rows)")

    def cell_key(row: TrajectoryRow) -> Tuple[str, str, str]:
        return (row.spec, row.policy, row.kernel)

    per_run = [
        {cell_key(row): row for row in parse_trajectory(payload)}
        for _, payload in history]
    shared = set(per_run[0])
    for cells in per_run[1:]:
        shared &= set(cells)
    if shared and len(history) > 1:
        lines.append("  wall-time series (seconds, oldest → newest):")
        for key in sorted(shared):
            spec, policy, kernel = key
            series = " → ".join(
                f"{cells[key].wall_time_seconds:.3f}" for cells in per_run)
            lines.append(f"    {spec} | {policy} | {kernel}: {series}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_directory(directory) -> str:
    """Load ``directory``'s trajectories and render the trend (CLI helper)."""
    return format_trend(load_history(directory))


if __name__ == "__main__":  # pragma: no cover — thin CLI shim
    import sys
    print(render_directory(sys.argv[1] if len(sys.argv) > 1 else "."))
