"""Graph exports: call graphs and PVPGs as Graphviz DOT text.

The paper's Figures 7 and 8 show PVPGs with the three edge kinds drawn
differently (solid use edges, dashed predicate edges, dotted observe edges)
and enabled flows highlighted.  :func:`pvpg_to_dot` reproduces that rendering
for any analyzed method; :func:`call_graph_to_dot` exports the computed call
graph.  Both return plain DOT text so no Graphviz installation is required.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.core.results import AnalysisResult


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def call_graph_to_dot(result: AnalysisResult, roots_only: bool = False) -> str:
    """Export the call graph of a solved analysis as DOT text."""
    lines: List[str] = ["digraph callgraph {", '  rankdir="LR";',
                        "  node [shape=box, fontsize=10];"]
    reachable = sorted(result.reachable_methods)
    entry_points = set(result.program.entry_points)
    for method in reachable:
        attributes = ' style="filled", fillcolor="lightblue",' if method in entry_points else ""
        lines.append(f'  "{_escape(method)}" [{attributes.strip()}];'
                     if attributes else f'  "{_escape(method)}";')
    for caller, callee in result.call_edges():
        lines.append(f'  "{_escape(caller)}" -> "{_escape(callee)}";')
    lines.append("}")
    return "\n".join(lines)


def pvpg_to_dot(result: AnalysisResult, method_names: Optional[Iterable[str]] = None) -> str:
    """Export the PVPG of one or more methods in the style of Figures 7 and 8.

    Enabled flows are drawn red, disabled flows grey; use edges are solid,
    predicate edges dashed with empty arrow heads, observe edges dotted.
    """
    if method_names is None:
        method_names = sorted(result.reachable_methods)
    selected = list(method_names)
    lines: List[str] = ["digraph pvpg {", "  node [shape=ellipse, fontsize=10];"]
    included_ids: Set[int] = set()
    flows = []
    for method_name in selected:
        graph = result.method_graph(method_name)
        if graph is None:
            continue
        lines.append(f'  subgraph "cluster_{_escape(method_name)}" {{')
        lines.append(f'    label="{_escape(method_name)}";')
        for flow in graph.flows:
            color = "red" if flow.enabled else "grey"
            label = _escape(f"{flow.label}\\n{flow.state!r}" if not flow.state.is_empty
                            else flow.label)
            lines.append(f'    n{flow.uid} [label="{label}", color={color}];')
            included_ids.add(flow.uid)
            flows.append(flow)
        lines.append("  }")
    pred_on = result.pvpg.pred_on
    lines.append(f'  n{pred_on.uid} [label="pred_on", color=red];')
    included_ids.add(pred_on.uid)
    flows.append(pred_on)
    for field_flow in result.pvpg.field_flows.values():
        lines.append(f'  n{field_flow.uid} [label="{_escape(field_flow.label)}", shape=box];')
        included_ids.add(field_flow.uid)
        flows.append(field_flow)

    for flow in flows:
        for target in flow.uses:
            if target.uid in included_ids:
                lines.append(f"  n{flow.uid} -> n{target.uid};")
        for target in flow.predicate_targets:
            if target.uid in included_ids:
                lines.append(
                    f"  n{flow.uid} -> n{target.uid} [style=dashed, arrowhead=empty];")
        for target in flow.observers:
            if target.uid in included_ids:
                lines.append(f"  n{flow.uid} -> n{target.uid} [style=dotted];")
    lines.append("}")
    return "\n".join(lines)
