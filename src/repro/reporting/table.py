"""Rendering of comparison tables: Table 1 and its N-way generalizations.

Three renderers live here:

* :func:`format_table1` — the paper's two-configuration table (PTA row,
  SkipFlow row with percentage deltas) over
  :class:`~repro.reporting.records.BenchmarkComparison` records;
* :func:`format_matrix_table` — the N-configuration generalization over
  engine :class:`~repro.engine.runner.MatrixRow` objects (duck-typed): one
  line per (benchmark, configuration), deltas against the first — the
  reference — configuration;
* :func:`format_analysis_comparison` — one program under N analyzers
  (:class:`~repro.api.report.AnalysisReport` columns, duck-typed): metrics
  as rows, analyzers as columns, used by ``AnalysisSession.compare`` and
  ``repro compare``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.reporting.records import METRIC_NAMES, BenchmarkComparison

_COLUMN_TITLES = {
    "analysis_time": "Analysis[s]",
    "total_time": "Total[s]",
    "reachable_methods": "Reach.Methods",
    "type_checks": "TypeChecks",
    "null_checks": "NullChecks",
    "prim_checks": "PrimChecks",
    "poly_calls": "PolyCalls",
    "binary_size": "Binary[MB]",
}


def _format_value(metric: str, value: float) -> str:
    if metric in ("analysis_time", "total_time"):
        return f"{value:.2f}"
    if metric == "binary_size":
        return f"{value / 1_000_000.0:.2f}"
    return f"{int(value)}"


def table1_rows(comparisons: Iterable[BenchmarkComparison]) -> List[Dict[str, str]]:
    """Structured rows (two per benchmark, PTA then SkipFlow with deltas)."""
    rows: List[Dict[str, str]] = []
    for comparison in comparisons:
        pta_row = {"suite": comparison.suite, "benchmark": comparison.benchmark,
                   "configuration": "PTA"}
        skip_row = {"suite": comparison.suite, "benchmark": comparison.benchmark,
                    "configuration": "SkipFlow"}
        for metric in METRIC_NAMES:
            base = comparison.metric(metric, "baseline")
            skip = comparison.metric(metric, "skipflow")
            delta = -comparison.reduction_percent(metric)
            pta_row[metric] = _format_value(metric, base)
            skip_row[metric] = f"{_format_value(metric, skip)} ({delta:+.1f}%)"
        rows.append(pta_row)
        rows.append(skip_row)
    return rows


def format_table1(comparisons: Sequence[BenchmarkComparison],
                  title: str = "Table 1") -> str:
    """Render the comparisons as a fixed-width text table."""
    rows = table1_rows(comparisons)
    headers = ["Benchmark", "Config"] + [_COLUMN_TITLES[m] for m in METRIC_NAMES]
    table: List[List[str]] = [headers]
    for row in rows:
        table.append(
            [row["benchmark"] if row["configuration"] == "PTA" else "",
             row["configuration"]]
            + [row[m] for m in METRIC_NAMES]
        )
    return _render_fixed_width(table, title)


def _render_fixed_width(table: List[List[str]], title: str) -> str:
    """Left-justified fixed-width rendering with a rule under the header."""
    widths = [max(len(line[col]) for line in table)
              for col in range(len(table[0]))]
    lines = [title, ""]
    for line_index, line in enumerate(table):
        rendered = "  ".join(cell.ljust(widths[col])
                             for col, cell in enumerate(line))
        lines.append(rendered.rstrip())
        if line_index == 0:
            lines.append("-" * len(rendered))
    return "\n".join(lines)


def matrix_table_rows(results: Sequence) -> List[Dict[str, str]]:
    """Structured rows for N-way engine results (one row per configuration).

    ``results`` are :class:`~repro.engine.runner.MatrixRow`-shaped objects
    (``benchmark``, ``suite``, ``names``, ``metric``, ``reduction_percent``).
    The first configuration is the reference: its rows carry plain values,
    every other configuration's rows carry values with percentage deltas
    against it, mirroring the PTA/SkipFlow layout of Table 1.
    """
    rows: List[Dict[str, str]] = []
    for result in results:
        reference = result.names[0]
        for name in result.names:
            row = {"suite": result.suite, "benchmark": result.benchmark,
                   "configuration": name}
            for metric in METRIC_NAMES:
                value = _format_value(metric, result.metric(metric, name))
                if name == reference:
                    row[metric] = value
                else:
                    delta = -result.reduction_percent(metric, name)
                    row[metric] = f"{value} ({delta:+.1f}%)"
            rows.append(row)
    return rows


def format_matrix_table(results: Sequence,
                        title: str = "N-way comparison") -> str:
    """Render N-way engine results as a fixed-width text table."""
    rows = matrix_table_rows(results)
    headers = ["Benchmark", "Config"] + [_COLUMN_TITLES[m] for m in METRIC_NAMES]
    table: List[List[str]] = [headers]
    previous_benchmark = None
    for row in rows:
        benchmark = row["benchmark"] if row["benchmark"] != previous_benchmark else ""
        previous_benchmark = row["benchmark"]
        table.append([benchmark, row["configuration"]]
                     + [row[m] for m in METRIC_NAMES])
    return _render_fixed_width(table, title)


#: The rows of an analyzer-comparison table: (label, extractor) pairs over
#: :class:`~repro.api.report.AnalysisReport`-shaped objects.  ``None``
#: values (metrics an algorithm cannot produce) render as ``n/a``.
_REPORT_ROWS = (
    ("reachable methods", lambda r: r.reachable_method_count),
    ("call edges", lambda r: r.call_edge_count),
    ("stub methods", lambda r: len(r.stub_methods)),
    ("poly calls", lambda r: r.poly_calls),
    ("solver steps", lambda r: r.solver_steps),
    ("analysis time [ms]", lambda r: f"{r.analysis_time_seconds * 1000:.1f}"),
)


def format_analysis_comparison(reports: Sequence,
                               title: Optional[str] = None) -> str:
    """Render N analyzer reports over one program, analyzers as columns.

    The first report is the reference: the reachable-methods row annotates
    every other column with its delta against it, which makes precision
    ladders (``cha → rta → pta → skipflow``) read directly off the table.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("format_analysis_comparison needs at least one report")
    headers = ["Metric"] + [report.analyzer for report in reports]
    table: List[List[str]] = [headers]
    reference = reports[0].reachable_method_count
    for label, extract in _REPORT_ROWS:
        cells = [label]
        for report in reports:
            value = extract(report)
            if value is None:
                cells.append("n/a")
                continue
            text = str(value)
            if label == "reachable methods" and report is not reports[0] and reference:
                delta = (value / reference - 1.0) * 100.0
                text = f"{text} ({delta:+.1f}%)"
            cells.append(text)
        table.append(cells)
    return _render_fixed_width(table, title or "Analysis comparison")


def summarize_reductions(comparisons: Sequence[BenchmarkComparison]) -> Dict[str, float]:
    """Max / min / average reachable-method reduction across a suite."""
    reductions = [c.reachable_method_reduction_percent for c in comparisons]
    if not reductions:
        return {"max": 0.0, "min": 0.0, "avg": 0.0}
    return {
        "max": max(reductions),
        "min": min(reductions),
        "avg": sum(reductions) / len(reductions),
    }
