"""Rendering of Table 1: per-benchmark results for PTA and SkipFlow."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.reporting.records import METRIC_NAMES, BenchmarkComparison

_COLUMN_TITLES = {
    "analysis_time": "Analysis[s]",
    "total_time": "Total[s]",
    "reachable_methods": "Reach.Methods",
    "type_checks": "TypeChecks",
    "null_checks": "NullChecks",
    "prim_checks": "PrimChecks",
    "poly_calls": "PolyCalls",
    "binary_size": "Binary[MB]",
}


def _format_value(metric: str, value: float) -> str:
    if metric in ("analysis_time", "total_time"):
        return f"{value:.2f}"
    if metric == "binary_size":
        return f"{value / 1_000_000.0:.2f}"
    return f"{int(value)}"


def table1_rows(comparisons: Iterable[BenchmarkComparison]) -> List[Dict[str, str]]:
    """Structured rows (two per benchmark, PTA then SkipFlow with deltas)."""
    rows: List[Dict[str, str]] = []
    for comparison in comparisons:
        pta_row = {"suite": comparison.suite, "benchmark": comparison.benchmark,
                   "configuration": "PTA"}
        skip_row = {"suite": comparison.suite, "benchmark": comparison.benchmark,
                    "configuration": "SkipFlow"}
        for metric in METRIC_NAMES:
            base = comparison.metric(metric, "baseline")
            skip = comparison.metric(metric, "skipflow")
            delta = -comparison.reduction_percent(metric)
            pta_row[metric] = _format_value(metric, base)
            skip_row[metric] = f"{_format_value(metric, skip)} ({delta:+.1f}%)"
        rows.append(pta_row)
        rows.append(skip_row)
    return rows


def format_table1(comparisons: Sequence[BenchmarkComparison],
                  title: str = "Table 1") -> str:
    """Render the comparisons as a fixed-width text table."""
    rows = table1_rows(comparisons)
    headers = ["Benchmark", "Config"] + [_COLUMN_TITLES[m] for m in METRIC_NAMES]
    table: List[List[str]] = [headers]
    for row in rows:
        table.append(
            [row["benchmark"] if row["configuration"] == "PTA" else "",
             row["configuration"]]
            + [row[m] for m in METRIC_NAMES]
        )
    widths = [max(len(line[col]) for line in table) for col in range(len(headers))]
    lines = [title, ""]
    for line_index, line in enumerate(table):
        rendered = "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(line))
        lines.append(rendered.rstrip())
        if line_index == 0:
            lines.append("-" * len(rendered))
    return "\n".join(lines)


def summarize_reductions(comparisons: Sequence[BenchmarkComparison]) -> Dict[str, float]:
    """Max / min / average reachable-method reduction across a suite."""
    reductions = [c.reachable_method_reduction_percent for c in comparisons]
    if not reductions:
        return {"max": 0.0, "min": 0.0, "avg": 0.0}
    return {
        "max": max(reductions),
        "min": min(reductions),
        "avg": sum(reductions) / len(reductions),
    }
