"""The saturation study: precision loss vs solver-cost savings per threshold.

The saturation cutoff (``AnalysisConfig.saturation_threshold``) trades
precision for solver effort, and this module renders that trade for one
benchmark swept over several thresholds.  Every sweep point is the SkipFlow
half of one engine :class:`~repro.engine.runner.ComparisonResult`; the
``None`` threshold (cutoff off — the paper's exact semantics) is the
reference everything else is measured against:

* **precision loss** — extra reachable methods and extra linked polymorphic
  call targets relative to the exact run (saturated flows jump to the
  closed-world top, so guards over them stop discharging);
* **solver savings** — fewer lattice joins and less analysis wall time on
  sufficiently wide flows.  All three cost counters can move either way:
  saturation skips joins into collapsed flows, yet the over-approximated
  reachable set adds flows (and joins, and steps) of its own, so narrow
  specs can get *more* expensive under the cutoff while the widest specs
  see the largest savings.  The table reports signed deltas so both regimes
  are visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # import-time cycle: engine.runner renders via this module
    from repro.engine.runner import ComparisonResult

#: Default sweep, smallest cutoff first; ``None`` is the exact reference.
DEFAULT_THRESHOLDS: Sequence[Optional[int]] = (2, 4, 8, 16, None)


@dataclass(frozen=True)
class SaturationPoint:
    """The SkipFlow-side measurements of one sweep point."""

    threshold: Optional[int]
    reachable_methods: int
    poly_calls: int
    solver_steps: int
    solver_joins: int
    saturated_flows: int
    analysis_time_seconds: float

    @property
    def threshold_label(self) -> str:
        return "off" if self.threshold is None else str(self.threshold)


def saturation_point(threshold: Optional[int],
                     result: ComparisonResult) -> SaturationPoint:
    """Extract the sweep-point measurements from one comparison result."""
    skipflow = result.skipflow
    return SaturationPoint(
        threshold=threshold,
        reachable_methods=skipflow.metrics.reachable_methods,
        poly_calls=skipflow.metrics.poly_calls,
        solver_steps=skipflow.solver_steps,
        solver_joins=skipflow.solver_joins,
        saturated_flows=skipflow.saturated_flows,
        analysis_time_seconds=skipflow.analysis_time_seconds,
    )


def saturation_series(results_by_threshold: Dict[Optional[int], ComparisonResult]
                      ) -> List[SaturationPoint]:
    """Sweep points ordered smallest threshold first, exact (``None``) last."""
    ordered = sorted(results_by_threshold,
                     key=lambda t: (t is None, t if t is not None else 0))
    return [saturation_point(t, results_by_threshold[t]) for t in ordered]


def _percent_change(value: float, reference: float) -> float:
    if reference == 0:
        return 0.0
    return 100.0 * (value - reference) / reference


def format_saturation_study(benchmark: str,
                            points: Sequence[SaturationPoint]) -> str:
    """Render one benchmark's sweep as a fixed-width text table.

    Deltas are relative to the exact (``off``) point, which must be present;
    positive reachable/poly-call deltas are precision losses, negative
    join/time deltas are savings.
    """
    exact = next((p for p in points if p.threshold is None), None)
    if exact is None:
        raise ValueError("saturation sweep needs the exact (threshold=None) point")

    headers = ["Threshold", "Reach.Methods", "PolyCalls", "Sat.Flows",
               "Steps", "Joins", "Analysis[ms]"]
    table: List[List[str]] = [headers]
    for point in points:
        reach_delta = _percent_change(point.reachable_methods, exact.reachable_methods)
        poly_delta = _percent_change(point.poly_calls, exact.poly_calls)
        joins_delta = _percent_change(point.solver_joins, exact.solver_joins)
        time_delta = _percent_change(point.analysis_time_seconds,
                                     exact.analysis_time_seconds)
        if point.threshold is None:
            reach = f"{point.reachable_methods}"
            poly = f"{point.poly_calls}"
            joins = f"{point.solver_joins}"
            elapsed = f"{point.analysis_time_seconds * 1000:.1f}"
        else:
            reach = f"{point.reachable_methods} ({reach_delta:+.1f}%)"
            poly = f"{point.poly_calls} ({poly_delta:+.1f}%)"
            joins = f"{point.solver_joins} ({joins_delta:+.1f}%)"
            elapsed = f"{point.analysis_time_seconds * 1000:.1f} ({time_delta:+.1f}%)"
        table.append([point.threshold_label, reach, poly,
                      f"{point.saturated_flows}", f"{point.solver_steps}",
                      joins, elapsed])

    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = [f"Saturation study: {benchmark} "
             "(deltas vs exact; +reach/+poly = precision loss, "
             "-joins/-time = savings)"]
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def summarize_sweep(points: Sequence[SaturationPoint]) -> Dict[str, float]:
    """Aggregate trade-off numbers for the most aggressive cutoff in a sweep.

    Returns the precision loss and savings of the *smallest* threshold
    relative to the exact point — the extreme ends of the trade-off curve.
    """
    exact = next(p for p in points if p.threshold is None)
    cutoffs = [p for p in points if p.threshold is not None]
    if not cutoffs:
        return {"reachable_loss_percent": 0.0, "joins_savings_percent": 0.0,
                "time_savings_percent": 0.0, "saturated_flows": 0.0}
    smallest = min(cutoffs, key=lambda p: p.threshold)
    return {
        "reachable_loss_percent": _percent_change(
            smallest.reachable_methods, exact.reachable_methods),
        "joins_savings_percent": -_percent_change(
            smallest.solver_joins, exact.solver_joins),
        "time_savings_percent": -_percent_change(
            smallest.analysis_time_seconds, exact.analysis_time_seconds),
        "saturated_flows": float(smallest.saturated_flows),
    }
