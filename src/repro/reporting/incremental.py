"""The incremental study: warm re-analysis cost versus cold re-solves.

Each point of the study is one edit step of an
:class:`~repro.workloads.edits.EditScriptSpec`: after applying the step's
delta, the *warm* numbers are the increment the resumed solve paid (the
state's cumulative counters diffed around the solve) and the *cold* numbers
are a from-scratch solve of the same edited program.  The headline metric —
``warm steps as % of cold steps`` — is what justifies keeping solver
snapshots around at all; the equivalence flag records that both solves
landed on the identical fixpoint (reachable set and call edges), which the
study checks on every step rather than assuming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class IncrementalPoint:
    """One edit step's warm-vs-cold measurement."""

    label: str
    warm_steps: int
    warm_joins: int
    warm_time_seconds: float
    cold_steps: int
    cold_joins: int
    cold_time_seconds: float
    reachable_methods: int
    fixpoints_match: bool

    @property
    def warm_step_percent(self) -> float:
        """Warm steps as a percentage of the cold solve's steps."""
        if self.cold_steps == 0:
            return 0.0
        return 100.0 * self.warm_steps / self.cold_steps

    @property
    def warm_time_percent(self) -> float:
        if self.cold_time_seconds == 0:
            return 0.0
        return 100.0 * self.warm_time_seconds / self.cold_time_seconds


def format_incremental_study(benchmark: str,
                             points: Sequence[IncrementalPoint]) -> str:
    """Render one benchmark's edit sequence as a text table."""
    headers = ["Step", "Reach.", "Warm steps", "Cold steps", "Warm%",
               "Warm joins", "Cold joins", "Warm[ms]", "Cold[ms]", "Fixpoint"]
    table: List[List[str]] = [headers]
    for point in points:
        table.append([
            point.label,
            f"{point.reachable_methods}",
            f"{point.warm_steps}",
            f"{point.cold_steps}",
            f"{point.warm_step_percent:.1f}%",
            f"{point.warm_joins}",
            f"{point.cold_joins}",
            f"{point.warm_time_seconds * 1000:.1f}",
            f"{point.cold_time_seconds * 1000:.1f}",
            "ok" if point.fixpoints_match else "MISMATCH",
        ])
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = [f"Incremental study: {benchmark} "
             "(warm = resumed increment, cold = from-scratch solve of the "
             "same edited program)"]
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def summarize_incremental(points: Sequence[IncrementalPoint]) -> dict:
    """Headline numbers for one benchmark's edit sequence."""
    if not points:
        return {"steps": 0, "all_fixpoints_match": True}
    percents = [point.warm_step_percent for point in points]
    total_warm = sum(point.warm_steps for point in points)
    total_cold = sum(point.cold_steps for point in points)
    return {
        "steps": len(points),
        "all_fixpoints_match": all(p.fixpoints_match for p in points),
        "max_warm_step_percent": max(percents),
        "mean_warm_step_percent": sum(percents) / len(percents),
        "first_step_warm_percent": percents[0],
        "total_warm_steps": total_warm,
        "total_cold_steps": total_cold,
        "total_saved_steps": total_cold - total_warm,
    }
