"""Rendering of the evaluation artifacts: Table 1, Figure 9, and DOT exports."""

from repro.reporting.records import BenchmarkComparison, compare_configurations
from repro.reporting.table import format_table1, table1_rows
from repro.reporting.figures import figure9_series, format_figure9
from repro.reporting.graphviz import call_graph_to_dot, pvpg_to_dot

__all__ = [
    "BenchmarkComparison",
    "call_graph_to_dot",
    "compare_configurations",
    "figure9_series",
    "format_figure9",
    "format_table1",
    "pvpg_to_dot",
    "table1_rows",
]
