"""Rendering of the evaluation artifacts: Table 1, Figure 9, the saturation,
policy, and incremental studies, and DOT exports."""

from repro.reporting.figures import figure9_series, format_figure9
from repro.reporting.graphviz import call_graph_to_dot, pvpg_to_dot
from repro.reporting.incremental import (
    IncrementalPoint,
    format_incremental_study,
    summarize_incremental,
)
from repro.reporting.policy import (
    PolicyPoint,
    format_policy_study,
    policy_points,
    summarize_policy_sweep,
)
from repro.reporting.records import BenchmarkComparison, compare_configurations
from repro.reporting.saturation import (
    SaturationPoint,
    format_saturation_study,
    saturation_series,
    summarize_sweep,
)
from repro.reporting.service import (
    LoadResult,
    ServicePoint,
    format_load_result,
    format_service_study,
    summarize_service,
)
from repro.reporting.table import (
    format_analysis_comparison,
    format_matrix_table,
    format_table1,
    matrix_table_rows,
    table1_rows,
)
from repro.reporting.trajectory import (
    TrajectoryRow,
    format_trend,
    load_history,
    write_trajectory,
)

__all__ = [
    "BenchmarkComparison",
    "IncrementalPoint",
    "LoadResult",
    "PolicyPoint",
    "SaturationPoint",
    "ServicePoint",
    "TrajectoryRow",
    "call_graph_to_dot",
    "compare_configurations",
    "figure9_series",
    "format_analysis_comparison",
    "format_figure9",
    "format_incremental_study",
    "format_load_result",
    "format_matrix_table",
    "format_policy_study",
    "format_saturation_study",
    "format_service_study",
    "format_table1",
    "format_trend",
    "load_history",
    "matrix_table_rows",
    "policy_points",
    "pvpg_to_dot",
    "saturation_series",
    "summarize_incremental",
    "summarize_policy_sweep",
    "summarize_service",
    "summarize_sweep",
    "table1_rows",
    "write_trajectory",
]
