"""Type sets: the reference part of value states, plus filtering helpers.

A *type set* is a ``frozenset`` of type names (``null`` modelled as the
special type ``"null"``).  The solver joins, compares, and filters type sets
on its hottest path, so type sets are hash-consed: :func:`intern_types`
returns one canonical ``frozenset`` instance per distinct set of names, which
makes the "did the join change anything?" checks in
:meth:`~repro.lattice.value_state.ValueState.join` O(1) identity comparisons
in the common no-change case.  The intern tables live in
:mod:`repro.lattice.value_state` (the lattice core has no further imports);
this module re-exports them as the public type-set API.

The filtering helpers implement the TypeCheck rule of Appendix C for
``instanceof`` filter flows, and the null-comparison convenience used by the
frontend tests.
"""

from __future__ import annotations


from repro.ir.types import NULL_TYPE_NAME, TypeHierarchy
from repro.lattice.value_state import TypeSet, ValueState, intern_types

__all__ = [
    "TypeSet",
    "intern_types",
    "filter_instanceof",
    "filter_null_comparison",
]


def filter_instanceof(
    state: ValueState,
    hierarchy: TypeHierarchy,
    type_name: str,
    negated: bool = False,
) -> ValueState:
    """Filter a value state through an ``instanceof`` (or negated) check.

    The positive check keeps exactly the subtypes of ``type_name``; ``null``
    never passes a positive ``instanceof`` (per Java semantics) and always
    passes the negated check.  The primitive part never passes a type check.
    """
    kept = []
    for candidate in state.types:
        if candidate == NULL_TYPE_NAME:
            passes = False
        else:
            passes = hierarchy.is_subtype(candidate, type_name)
        if passes != negated:
            kept.append(candidate)
    return ValueState.of_types(kept)


def filter_null_comparison(state: ValueState, keep_null: bool) -> ValueState:
    """Filter a state for a ``== null`` / ``!= null`` check.

    ``keep_null=True`` corresponds to the branch where the value *is* null
    (only ``null`` survives); ``keep_null=False`` to the branch where it is
    not (``null`` is removed).
    """
    if keep_null:
        if state.contains_null:
            return ValueState.null()
        return ValueState.empty()
    return state.without_null().only_types()
