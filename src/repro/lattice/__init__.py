"""The value lattice of SkipFlow (Figure 6 and Appendix B.2).

Value states combine the primitive lattice ``P`` (``Empty``, concrete integer
constants, ``Any``) with the subset lattice ``S`` over program types, where
``null`` is modelled as a special type.  The join of two distinct primitive
constants is immediately ``Any``; neither intervals nor constant sets are
tracked, matching the scalability-driven design of the paper.
"""

from repro.lattice.primitive import ANY, AnyValue, join_constants, primitive_leq
from repro.lattice.typeset import filter_instanceof, filter_null_comparison
from repro.lattice.value_state import ValueState

__all__ = [
    "ANY",
    "AnyValue",
    "ValueState",
    "join_constants",
    "primitive_leq",
    "filter_instanceof",
    "filter_null_comparison",
]
