"""Value states: elements of the combined lattice ``L`` (Appendix B.2).

A value state is a set whose members are type names (strings, with ``null``
modelled as the special type ``"null"``) and at most one primitive element
(an integer constant or ``Any``).  Joining two different integer constants
yields ``Any``, matching the primitive lattice ``P``; joining type sets is
set union, matching the subset lattice ``S``.

Value states are immutable and hashable so they can be compared cheaply by
the fixed-point solver to detect changes.  On top of that, both the type
sets and the value states themselves are *hash-consed*: every factory and
every lattice operation routes through intern tables, so structurally equal
states produced on the solver's hot path are usually the very same object
and equality checks short-circuit on identity.  Interning is purely an
optimization — ``__eq__`` stays structural, so directly constructed
(non-interned) instances still compare correctly — which also means the
bounded intern tables can be dropped at any time without affecting results.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple, Union

from repro.ir.types import NULL_TYPE_NAME
from repro.lattice.primitive import ANY, AnyValue, PrimitiveElement, join_constants

#: A canonical (interned) set of type names: the reference part of a state.
TypeSet = FrozenSet[str]

#: Intern tables are bounded so a long-lived process running many benchmarks
#: back to back cannot grow them without limit; when full they are simply
#: cleared (safe: interning is only a fast path, never a correctness need).
_INTERN_LIMIT = 1 << 16

_TYPE_SET_TABLE: Dict[TypeSet, TypeSet] = {}
_EMPTY_TYPE_SET: TypeSet = frozenset()


def intern_types(types: Iterable[str]) -> TypeSet:
    """Return the canonical ``frozenset`` for ``types``.

    Two calls with equal contents return the *same* object, so callers can
    compare interned type sets with ``is`` before falling back to ``==``.
    """
    key = types if isinstance(types, frozenset) else frozenset(types)
    if not key:
        return _EMPTY_TYPE_SET
    cached = _TYPE_SET_TABLE.get(key)
    if cached is not None:
        return cached
    if len(_TYPE_SET_TABLE) >= _INTERN_LIMIT:
        _TYPE_SET_TABLE.clear()
    _TYPE_SET_TABLE[key] = key
    return key


class ValueState:
    """An immutable element of the lattice ``L``.

    The state is decomposed into a reference part (``types``: a frozenset of
    type names, possibly containing ``null``) and a primitive part
    (``primitive``: ``None`` for Empty, an ``int`` constant, or ``ANY``).
    Well-typed programs only ever populate one of the two parts for a given
    flow; keeping both makes the solver uniform and robust.
    """

    __slots__ = ("_types", "_primitive", "_ref_types")

    def __init__(self, types: Iterable[str] = (), primitive: PrimitiveElement = None):
        self._types: TypeSet = intern_types(types)
        self._primitive: PrimitiveElement = primitive
        # Lazily memoized ``types - {null}`` (hot in invoke/field linking).
        self._ref_types: Optional[TypeSet] = None

    # ------------------------------------------------------------------ #
    # Hash-consing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(types: Iterable[str], primitive: PrimitiveElement) -> "ValueState":
        """The interning constructor every factory and lattice op routes through."""
        canonical = intern_types(types)
        key = (canonical, primitive)
        cached = _STATE_TABLE.get(key)
        if cached is not None:
            return cached
        if len(_STATE_TABLE) >= _INTERN_LIMIT:
            _STATE_TABLE.clear()
        state = ValueState(canonical, primitive)
        _STATE_TABLE[key] = state
        return state

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def of(types: Iterable[str] = (), primitive: PrimitiveElement = None) -> "ValueState":
        """General interning factory: prefer this over direct construction."""
        return ValueState._make(types, primitive)

    @staticmethod
    def empty() -> "ValueState":
        return _EMPTY

    @staticmethod
    def of_type(type_name: str) -> "ValueState":
        return ValueState._make((type_name,), None)

    @staticmethod
    def of_types(type_names: Iterable[str]) -> "ValueState":
        return ValueState._make(type_names, None)

    @staticmethod
    def null() -> "ValueState":
        return ValueState._make((NULL_TYPE_NAME,), None)

    @staticmethod
    def of_int(constant: int) -> "ValueState":
        return ValueState._make((), int(constant))

    @staticmethod
    def any_primitive() -> "ValueState":
        return ValueState._make((), ANY)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def types(self) -> TypeSet:
        """The reference part of the state (type names, possibly ``null``)."""
        return self._types

    @property
    def primitive(self) -> PrimitiveElement:
        """The primitive part: ``None`` (Empty), an ``int``, or ``ANY``."""
        return self._primitive

    @property
    def is_empty(self) -> bool:
        return not self._types and self._primitive is None

    @property
    def has_any(self) -> bool:
        return isinstance(self._primitive, AnyValue)

    @property
    def is_constant(self) -> bool:
        """True when the state is a single known primitive constant."""
        return (
            not self._types
            and self._primitive is not None
            and not isinstance(self._primitive, AnyValue)
        )

    @property
    def constant_value(self) -> Optional[int]:
        if self.is_constant:
            assert isinstance(self._primitive, int)
            return self._primitive
        return None

    @property
    def contains_null(self) -> bool:
        return NULL_TYPE_NAME in self._types

    @property
    def reference_types(self) -> TypeSet:
        """Type names excluding ``null``."""
        ref = self._ref_types
        if ref is None:
            if NULL_TYPE_NAME in self._types:
                ref = intern_types(self._types - {NULL_TYPE_NAME})
            else:
                ref = self._types
            self._ref_types = ref
        return ref

    @property
    def is_null_only(self) -> bool:
        return self._types == frozenset({NULL_TYPE_NAME}) and self._primitive is None

    def contains_type(self, type_name: str) -> bool:
        return type_name in self._types

    # ------------------------------------------------------------------ #
    # Lattice operations
    # ------------------------------------------------------------------ #
    def join(self, other: "ValueState") -> "ValueState":
        """Least upper bound in ``L``.

        Returns ``self`` (the identical object) whenever the join adds
        nothing, so the solver's change detection can use ``is``.
        """
        if self is other:
            return self
        # Check ``other`` first: when both operands are empty this returns
        # ``self`` unchanged, keeping the "join returned the identical object
        # iff nothing changed" contract even for non-interned empty states.
        if other.is_empty:
            return self
        if self.is_empty:
            return other
        if self._types is other._types:
            types = self._types
        else:
            types = self._types | other._types
        primitive = join_constants(self._primitive, other._primitive)
        if types == self._types and primitive == self._primitive:
            return self
        if types == other._types and primitive == other._primitive:
            return other
        return ValueState._make(types, primitive)

    def leq(self, other: "ValueState") -> bool:
        """Partial order: ``self <= other`` iff joining adds nothing to ``other``."""
        return other.join(self) == other

    def with_types(self, types: Iterable[str]) -> "ValueState":
        """A copy with the reference part replaced (primitive part preserved)."""
        return ValueState._make(types, self._primitive)

    def with_primitive(self, primitive: PrimitiveElement) -> "ValueState":
        return ValueState._make(self._types, primitive)

    def only_types(self) -> "ValueState":
        return ValueState._make(self._types, None)

    def only_primitive(self) -> "ValueState":
        return ValueState._make((), self._primitive)

    def without_null(self) -> "ValueState":
        if NULL_TYPE_NAME not in self._types:
            return self
        return ValueState._make(self._types - {NULL_TYPE_NAME}, self._primitive)

    def widen_primitive(self) -> "ValueState":
        """Collapse any primitive constant to ``Any``.

        Used by the baseline configuration that does not track primitive
        constants (``track_primitives=False``).
        """
        if self._primitive is None or isinstance(self._primitive, AnyValue):
            return self
        return ValueState._make(self._types, ANY)

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        """Pickle through the interning factory.

        Snapshots of solver state (:mod:`repro.core.state`) pickle whole
        PVPGs full of value states; routing unpickling through
        :meth:`ValueState.of` re-interns every state so the solver's
        ``is``-based change detection keeps its fast path after a restore
        (correctness never depends on it — ``__eq__`` stays structural).
        """
        return (ValueState.of, (tuple(sorted(self._types)), self._primitive))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ValueState):
            return NotImplemented
        return self._types == other._types and self._primitive == other._primitive

    def __hash__(self) -> int:
        return hash((self._types, self._primitive))

    def __bool__(self) -> bool:
        return not self.is_empty

    def __len__(self) -> int:
        return len(self._types) + (0 if self._primitive is None else 1)

    def __iter__(self) -> Iterator[Union[str, int, AnyValue]]:
        yield from sorted(self._types)
        if self._primitive is not None:
            yield self._primitive

    def __repr__(self) -> str:
        parts = [repr(t) for t in sorted(self._types)]
        if self._primitive is not None:
            parts.append(repr(self._primitive))
        return "ValueState({" + ", ".join(parts) + "})"


_STATE_TABLE: Dict[Tuple[TypeSet, PrimitiveElement], ValueState] = {}

_EMPTY = ValueState()
_STATE_TABLE[(_EMPTY_TYPE_SET, None)] = _EMPTY
