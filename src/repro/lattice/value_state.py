"""Value states: elements of the combined lattice ``L`` (Appendix B.2).

A value state is a set whose members are type names (strings, with ``null``
modelled as the special type ``"null"``) and at most one primitive element
(an integer constant or ``Any``).  Joining two different integer constants
yields ``Any``, matching the primitive lattice ``P``; joining type sets is
set union, matching the subset lattice ``S``.

Value states are immutable and hashable so they can be compared cheaply by
the fixed-point solver to detect changes.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Tuple, Union

from repro.lattice.primitive import ANY, AnyValue, PrimitiveElement, join_constants

from repro.ir.types import NULL_TYPE_NAME


class ValueState:
    """An immutable element of the lattice ``L``.

    The state is decomposed into a reference part (``types``: a frozenset of
    type names, possibly containing ``null``) and a primitive part
    (``primitive``: ``None`` for Empty, an ``int`` constant, or ``ANY``).
    Well-typed programs only ever populate one of the two parts for a given
    flow; keeping both makes the solver uniform and robust.
    """

    __slots__ = ("_types", "_primitive")

    def __init__(self, types: Iterable[str] = (), primitive: PrimitiveElement = None):
        self._types: FrozenSet[str] = frozenset(types)
        self._primitive: PrimitiveElement = primitive

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "ValueState":
        return _EMPTY

    @staticmethod
    def of_type(type_name: str) -> "ValueState":
        return ValueState(types=(type_name,))

    @staticmethod
    def of_types(type_names: Iterable[str]) -> "ValueState":
        return ValueState(types=type_names)

    @staticmethod
    def null() -> "ValueState":
        return ValueState(types=(NULL_TYPE_NAME,))

    @staticmethod
    def of_int(constant: int) -> "ValueState":
        return ValueState(primitive=int(constant))

    @staticmethod
    def any_primitive() -> "ValueState":
        return ValueState(primitive=ANY)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def types(self) -> FrozenSet[str]:
        """The reference part of the state (type names, possibly ``null``)."""
        return self._types

    @property
    def primitive(self) -> PrimitiveElement:
        """The primitive part: ``None`` (Empty), an ``int``, or ``ANY``."""
        return self._primitive

    @property
    def is_empty(self) -> bool:
        return not self._types and self._primitive is None

    @property
    def has_any(self) -> bool:
        return isinstance(self._primitive, AnyValue)

    @property
    def is_constant(self) -> bool:
        """True when the state is a single known primitive constant."""
        return (
            not self._types
            and self._primitive is not None
            and not isinstance(self._primitive, AnyValue)
        )

    @property
    def constant_value(self) -> Optional[int]:
        if self.is_constant:
            assert isinstance(self._primitive, int)
            return self._primitive
        return None

    @property
    def contains_null(self) -> bool:
        return NULL_TYPE_NAME in self._types

    @property
    def reference_types(self) -> FrozenSet[str]:
        """Type names excluding ``null``."""
        return self._types - {NULL_TYPE_NAME}

    @property
    def is_null_only(self) -> bool:
        return self._types == frozenset({NULL_TYPE_NAME}) and self._primitive is None

    def contains_type(self, type_name: str) -> bool:
        return type_name in self._types

    # ------------------------------------------------------------------ #
    # Lattice operations
    # ------------------------------------------------------------------ #
    def join(self, other: "ValueState") -> "ValueState":
        """Least upper bound in ``L``."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        types = self._types | other._types
        primitive = join_constants(self._primitive, other._primitive)
        if types == self._types and primitive == self._primitive:
            return self
        if types == other._types and primitive == other._primitive:
            return other
        return ValueState(types=types, primitive=primitive)

    def leq(self, other: "ValueState") -> bool:
        """Partial order: ``self <= other`` iff joining adds nothing to ``other``."""
        return other.join(self) == other

    def with_types(self, types: Iterable[str]) -> "ValueState":
        """A copy with the reference part replaced (primitive part preserved)."""
        return ValueState(types=types, primitive=self._primitive)

    def with_primitive(self, primitive: PrimitiveElement) -> "ValueState":
        return ValueState(types=self._types, primitive=primitive)

    def only_types(self) -> "ValueState":
        return ValueState(types=self._types)

    def only_primitive(self) -> "ValueState":
        return ValueState(primitive=self._primitive)

    def without_null(self) -> "ValueState":
        if NULL_TYPE_NAME not in self._types:
            return self
        return ValueState(types=self._types - {NULL_TYPE_NAME}, primitive=self._primitive)

    def widen_primitive(self) -> "ValueState":
        """Collapse any primitive constant to ``Any``.

        Used by the baseline configuration that does not track primitive
        constants (``track_primitives=False``).
        """
        if self._primitive is None or isinstance(self._primitive, AnyValue):
            return self
        return ValueState(types=self._types, primitive=ANY)

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueState):
            return NotImplemented
        return self._types == other._types and self._primitive == other._primitive

    def __hash__(self) -> int:
        return hash((self._types, self._primitive))

    def __bool__(self) -> bool:
        return not self.is_empty

    def __len__(self) -> int:
        return len(self._types) + (0 if self._primitive is None else 1)

    def __iter__(self) -> Iterator[Union[str, int, AnyValue]]:
        yield from sorted(self._types)
        if self._primitive is not None:
            yield self._primitive

    def __repr__(self) -> str:
        parts = [repr(t) for t in sorted(self._types)]
        if self._primitive is not None:
            parts.append(repr(self._primitive))
        return "ValueState({" + ", ".join(parts) + "})"


_EMPTY = ValueState()
