"""The primitive value lattice ``P`` of Figure 6.

::

                Any
       ... -2 -1 0 1 2 ...
               Empty

Only concrete integer constants are modelled (booleans are the integers 0
and 1, Section 5).  The join of two different constants is immediately
``Any``; there are no intervals or constant sets.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union


class AnyValue:
    """Singleton sentinel for the top element ``Any`` of the primitive lattice."""

    _instance: Optional["AnyValue"] = None

    def __new__(cls) -> "AnyValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Any"

    def __hash__(self) -> int:
        return hash("repro.lattice.Any")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AnyValue)


#: The top element of the primitive lattice.
ANY = AnyValue()

#: A primitive lattice element: ``None`` (Empty), an ``int`` constant, or ``ANY``.
PrimitiveElement = Union[None, int, AnyValue]


def join_constants(left: PrimitiveElement, right: PrimitiveElement) -> PrimitiveElement:
    """Join two elements of ``P``: different constants collapse to ``Any``."""
    if left is None:
        return right
    if right is None:
        return left
    if isinstance(left, AnyValue) or isinstance(right, AnyValue):
        return ANY
    if left == right:
        return left
    return ANY


def join_all_constants(elements: Iterable[PrimitiveElement]) -> PrimitiveElement:
    result: PrimitiveElement = None
    for element in elements:
        result = join_constants(result, element)
        if isinstance(result, AnyValue):
            return ANY
    return result


def primitive_leq(left: PrimitiveElement, right: PrimitiveElement) -> bool:
    """Ordering of ``P``: ``Empty <= c <= Any`` and constants are incomparable."""
    if left is None:
        return True
    if isinstance(right, AnyValue):
        return True
    if isinstance(left, AnyValue):
        return False
    if right is None:
        return False
    return left == right
