"""The common analysis report: one facade over every analyzer's result.

The codebase grows results in two shapes: the propagation engine (PTA,
SkipFlow, and the ablations) produces a rich
:class:`~repro.core.results.AnalysisResult` with value states and solver
counters, while the classical call-graph baselines (CHA, RTA) produce a
lean :class:`~repro.baselines.cha.CallGraphResult`.  :class:`AnalysisReport`
wraps both behind one call-graph/metrics interface — reachable methods,
call edges, poly-call counts and solver statistics where available — so the
session API, the N-way comparison tables, and the CLI never need to know
which algorithm ran.

Fields that only the propagation engine can produce (``poly_calls``,
``solver_stats``) are ``None`` for the call-graph baselines; the original
result object stays reachable through ``raw`` for callers that need the
full shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Protocol, Tuple, runtime_checkable

from repro.api.errors import SchemaVersionError
from repro.baselines.cha import CallGraphResult
from repro.core.results import AnalysisResult, SolverStats
from repro.image.metrics import collect_counter_metrics

#: Version of the JSON report schema produced by :meth:`AnalysisReport.
#: to_dict` and consumed by :meth:`AnalysisReport.from_dict`.  One wire
#: format backs ``repro analyze --json``, the analysis daemon's responses,
#: and any stored report; bump it whenever a field changes meaning or shape,
#: and ``from_dict`` will refuse payloads it does not speak.
SCHEMA_VERSION = 1


@runtime_checkable
class CallGraphView(Protocol):
    """The call-graph slice every analysis result can answer for.

    Structural typing only: :class:`AnalysisReport` satisfies it, and so does
    any object exposing reachable methods and (caller, callee) edges.
    """

    @property
    def reachable_methods(self) -> FrozenSet[str]: ...

    @property
    def call_edges(self) -> Tuple[Tuple[str, str], ...]: ...

    def is_method_reachable(self, qualified_name: str) -> bool: ...

    def callees_of(self, qualified_name: str) -> FrozenSet[str]: ...


@dataclass(frozen=True)
class AnalysisReport:
    """What one analyzer computed for one program, algorithm-agnostic.

    ``analyzer`` is the registry name of the analysis that produced the
    report.  ``poly_calls`` and ``solver_stats`` are ``None`` when the
    algorithm does not produce them (CHA/RTA); everything else is defined
    for every analyzer, which is what makes N-way comparisons and precision
    ladders uniform.
    """

    analyzer: str
    reachable_methods: FrozenSet[str]
    stub_methods: FrozenSet[str]
    call_edges: Tuple[Tuple[str, str], ...]
    analysis_time_seconds: float
    poly_calls: Optional[int] = None
    solver_stats: Optional[SolverStats] = None
    raw: object = None

    # ------------------------------------------------------------------ #
    # CallGraphView
    # ------------------------------------------------------------------ #
    @property
    def reachable_method_count(self) -> int:
        return len(self.reachable_methods)

    @property
    def call_edge_count(self) -> int:
        return len(self.call_edges)

    def is_method_reachable(self, qualified_name: str) -> bool:
        return qualified_name in self.reachable_methods

    def callees_of(self, qualified_name: str) -> FrozenSet[str]:
        return frozenset(callee for caller, callee in self.call_edges
                         if caller == qualified_name)

    def callers_of(self, qualified_name: str) -> FrozenSet[str]:
        return frozenset(caller for caller, callee in self.call_edges
                         if callee == qualified_name)

    @property
    def solver_steps(self) -> Optional[int]:
        return self.solver_stats.steps if self.solver_stats is not None else None

    def as_dict(self) -> dict:
        """The scalar metrics of this report (for tables and JSON dumps)."""
        return {
            "analyzer": self.analyzer,
            "reachable_methods": self.reachable_method_count,
            "call_edges": self.call_edge_count,
            "stub_methods": len(self.stub_methods),
            "poly_calls": self.poly_calls,
            "solver_steps": self.solver_steps,
            "analysis_time_seconds": self.analysis_time_seconds,
        }

    # ------------------------------------------------------------------ #
    # The wire format (SCHEMA_VERSION)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """The full JSON-serializable report under :data:`SCHEMA_VERSION`.

        This is the one wire format shared by ``repro analyze --json``, the
        analysis daemon, and round-trip persistence: scalar ``metrics`` (the
        contents of :meth:`as_dict`, minus the analyzer name), the complete
        ``call_graph`` (see :func:`call_graph_to_dict`), and the solver
        counters when the algorithm produced them.  The output is
        deterministic — sets are sorted — so serializing the same report
        twice yields identical JSON, and ``from_dict``/``to_dict`` round-trip
        exactly.
        """
        metrics = self.as_dict()
        del metrics["analyzer"]
        return {
            "schema_version": SCHEMA_VERSION,
            "analyzer": self.analyzer,
            "metrics": metrics,
            "call_graph": call_graph_to_dict(self),
            "solver_stats": (self.solver_stats.as_dict()
                             if self.solver_stats is not None else None),
        }

    @staticmethod
    def from_dict(payload: dict) -> "AnalysisReport":
        """Rebuild a report from its :meth:`to_dict` payload.

        Raises :class:`~repro.api.errors.SchemaVersionError` on a payload
        written under a schema version this code does not speak.  The
        rebuilt report has no ``raw`` result (the deep PVPG does not travel
        over the wire); everything else — call graph, metrics, solver
        counters — round-trips exactly.
        """
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"unsupported report schema version {version!r}; this code "
                f"speaks version {SCHEMA_VERSION}")
        graph = payload["call_graph"]
        metrics = payload["metrics"]
        stats = payload.get("solver_stats")
        return AnalysisReport(
            analyzer=payload["analyzer"],
            reachable_methods=frozenset(graph["reachable_methods"]),
            stub_methods=frozenset(graph["stub_methods"]),
            call_edges=tuple(
                (caller, callee) for caller, callee in graph["call_edges"]),
            analysis_time_seconds=metrics["analysis_time_seconds"],
            poly_calls=metrics["poly_calls"],
            solver_stats=SolverStats(**stats) if stats is not None else None,
            raw=None,
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_analysis_result(result: AnalysisResult,
                             analyzer: Optional[str] = None) -> "AnalysisReport":
        """Wrap a propagation-engine result (PTA, SkipFlow, ablations)."""
        return AnalysisReport(
            analyzer=analyzer or getattr(result.config, "name", "unknown"),
            reachable_methods=frozenset(result.reachable_methods),
            stub_methods=frozenset(result.stub_methods),
            call_edges=tuple(result.call_edges()),
            analysis_time_seconds=result.analysis_time_seconds,
            poly_calls=collect_counter_metrics(result).poly_calls,
            solver_stats=result.stats,
            raw=result,
        )

    @staticmethod
    def from_call_graph_result(result: CallGraphResult,
                               analyzer: Optional[str] = None,
                               analysis_time_seconds: float = 0.0
                               ) -> "AnalysisReport":
        """Wrap a call-graph baseline result (CHA, RTA)."""
        return AnalysisReport(
            analyzer=analyzer or result.algorithm,
            reachable_methods=frozenset(result.reachable_methods),
            stub_methods=frozenset(result.stub_methods),
            call_edges=tuple(sorted(result.call_edges)),
            analysis_time_seconds=analysis_time_seconds,
            poly_calls=None,
            solver_stats=None,
            raw=result,
        )


def call_graph_to_dict(view: CallGraphView) -> dict:
    """The JSON shape of any :class:`CallGraphView` (sorted, deterministic).

    Works for an :class:`AnalysisReport` and for anything else satisfying
    the protocol; the daemon and ``repro analyze --json`` both emit this
    shape inside the versioned report envelope.
    """
    return {
        "reachable_methods": sorted(view.reachable_methods),
        "stub_methods": sorted(getattr(view, "stub_methods", ())),
        "call_edges": sorted(
            [caller, callee] for caller, callee in view.call_edges),
    }


def wrap_result(result: object, analyzer: Optional[str] = None,
                analysis_time_seconds: float = 0.0) -> AnalysisReport:
    """Wrap either result shape into an :class:`AnalysisReport`."""
    if isinstance(result, AnalysisResult):
        return AnalysisReport.from_analysis_result(result, analyzer=analyzer)
    if isinstance(result, CallGraphResult):
        return AnalysisReport.from_call_graph_result(
            result, analyzer=analyzer,
            analysis_time_seconds=analysis_time_seconds)
    raise TypeError(f"cannot wrap {type(result).__name__}: expected an "
                    f"AnalysisResult or a CallGraphResult")
