"""The common analysis report: one facade over every analyzer's result.

The codebase grows results in two shapes: the propagation engine (PTA,
SkipFlow, and the ablations) produces a rich
:class:`~repro.core.results.AnalysisResult` with value states and solver
counters, while the classical call-graph baselines (CHA, RTA) produce a
lean :class:`~repro.baselines.cha.CallGraphResult`.  :class:`AnalysisReport`
wraps both behind one call-graph/metrics interface — reachable methods,
call edges, poly-call counts and solver statistics where available — so the
session API, the N-way comparison tables, and the CLI never need to know
which algorithm ran.

Fields that only the propagation engine can produce (``poly_calls``,
``solver_stats``) are ``None`` for the call-graph baselines; the original
result object stays reachable through ``raw`` for callers that need the
full shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Protocol, Tuple, runtime_checkable

from repro.baselines.cha import CallGraphResult
from repro.core.results import AnalysisResult, SolverStats
from repro.image.metrics import collect_counter_metrics


@runtime_checkable
class CallGraphView(Protocol):
    """The call-graph slice every analysis result can answer for.

    Structural typing only: :class:`AnalysisReport` satisfies it, and so does
    any object exposing reachable methods and (caller, callee) edges.
    """

    @property
    def reachable_methods(self) -> FrozenSet[str]: ...

    @property
    def call_edges(self) -> Tuple[Tuple[str, str], ...]: ...

    def is_method_reachable(self, qualified_name: str) -> bool: ...

    def callees_of(self, qualified_name: str) -> FrozenSet[str]: ...


@dataclass(frozen=True)
class AnalysisReport:
    """What one analyzer computed for one program, algorithm-agnostic.

    ``analyzer`` is the registry name of the analysis that produced the
    report.  ``poly_calls`` and ``solver_stats`` are ``None`` when the
    algorithm does not produce them (CHA/RTA); everything else is defined
    for every analyzer, which is what makes N-way comparisons and precision
    ladders uniform.
    """

    analyzer: str
    reachable_methods: FrozenSet[str]
    stub_methods: FrozenSet[str]
    call_edges: Tuple[Tuple[str, str], ...]
    analysis_time_seconds: float
    poly_calls: Optional[int] = None
    solver_stats: Optional[SolverStats] = None
    raw: object = None

    # ------------------------------------------------------------------ #
    # CallGraphView
    # ------------------------------------------------------------------ #
    @property
    def reachable_method_count(self) -> int:
        return len(self.reachable_methods)

    @property
    def call_edge_count(self) -> int:
        return len(self.call_edges)

    def is_method_reachable(self, qualified_name: str) -> bool:
        return qualified_name in self.reachable_methods

    def callees_of(self, qualified_name: str) -> FrozenSet[str]:
        return frozenset(callee for caller, callee in self.call_edges
                         if caller == qualified_name)

    def callers_of(self, qualified_name: str) -> FrozenSet[str]:
        return frozenset(caller for caller, callee in self.call_edges
                         if callee == qualified_name)

    @property
    def solver_steps(self) -> Optional[int]:
        return self.solver_stats.steps if self.solver_stats is not None else None

    def as_dict(self) -> dict:
        """The scalar metrics of this report (for tables and JSON dumps)."""
        return {
            "analyzer": self.analyzer,
            "reachable_methods": self.reachable_method_count,
            "call_edges": self.call_edge_count,
            "stub_methods": len(self.stub_methods),
            "poly_calls": self.poly_calls,
            "solver_steps": self.solver_steps,
            "analysis_time_seconds": self.analysis_time_seconds,
        }

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_analysis_result(result: AnalysisResult,
                             analyzer: Optional[str] = None) -> "AnalysisReport":
        """Wrap a propagation-engine result (PTA, SkipFlow, ablations)."""
        return AnalysisReport(
            analyzer=analyzer or getattr(result.config, "name", "unknown"),
            reachable_methods=frozenset(result.reachable_methods),
            stub_methods=frozenset(result.stub_methods),
            call_edges=tuple(result.call_edges()),
            analysis_time_seconds=result.analysis_time_seconds,
            poly_calls=collect_counter_metrics(result).poly_calls,
            solver_stats=result.stats,
            raw=result,
        )

    @staticmethod
    def from_call_graph_result(result: CallGraphResult,
                               analyzer: Optional[str] = None,
                               analysis_time_seconds: float = 0.0
                               ) -> "AnalysisReport":
        """Wrap a call-graph baseline result (CHA, RTA)."""
        return AnalysisReport(
            analyzer=analyzer or result.algorithm,
            reachable_methods=frozenset(result.reachable_methods),
            stub_methods=frozenset(result.stub_methods),
            call_edges=tuple(sorted(result.call_edges)),
            analysis_time_seconds=analysis_time_seconds,
            poly_calls=None,
            solver_stats=None,
            raw=result,
        )


def wrap_result(result: object, analyzer: Optional[str] = None,
                analysis_time_seconds: float = 0.0) -> AnalysisReport:
    """Wrap either result shape into an :class:`AnalysisReport`."""
    if isinstance(result, AnalysisResult):
        return AnalysisReport.from_analysis_result(result, analyzer=analyzer)
    if isinstance(result, CallGraphResult):
        return AnalysisReport.from_call_graph_result(
            result, analyzer=analyzer,
            analysis_time_seconds=analysis_time_seconds)
    raise TypeError(f"cannot wrap {type(result).__name__}: expected an "
                    f"AnalysisResult or a CallGraphResult")
