"""The analysis session: one program, any number of named analyses.

An :class:`AnalysisSession` owns the three things every analysis run needs
and that used to be scattered across the CLI, the benchmark engine, and the
per-analysis wrappers:

* **program loading** — from surface-language source (:meth:`AnalysisSession.
  from_source` / :meth:`~AnalysisSession.from_file`), from an already-built
  :class:`~repro.ir.program.Program`, or from a benchmark spec with stored
  IR through the engine's :class:`~repro.engine.program_store.ProgramStore`
  (:meth:`~AnalysisSession.from_spec`);
* **root resolution** — :func:`resolve_roots` is the single place that turns
  "explicit roots / program entry points / the ``Main.main`` convention"
  into a validated root list, raising :class:`NoEntryPointError` instead of
  silently analyzing nothing (the historical ``compile_source`` fallback
  made a program without entry points look like an empty-but-successful
  analysis);
* **running and comparing** — :meth:`~AnalysisSession.run` resolves an
  analyzer by registry name, :meth:`~AnalysisSession.compare` runs any
  number of them over the same program and roots and returns one
  :class:`SessionComparison`, e.g. the classic precision ladder
  ``session.compare(["cha", "rta", "pta", "skipflow"])``;
* **evolving and re-analyzing** — :meth:`~AnalysisSession.update` applies a
  :class:`~repro.ir.delta.ProgramDelta` to the session's program, and
  ``run(name, resume=previous_report)`` warm-starts the solve from the
  previous fixpoint instead of solving cold.  The session tracks whether
  every update since the resumed state was monotone; when one was not (or
  the state does not fit — different configuration, foreign snapshot whose
  fingerprint rejects the program), the run falls back to a cold solve and
  says so with a :class:`ResumeFallbackWarning` rather than failing or,
  worse, resuming unsoundly.

The program is treated as read-only by every registered analyzer, so one
session can run arbitrarily many analyses over the same object (reflection
configs are applied once at load time; :meth:`~AnalysisSession.update` is
the one sanctioned mutation path, and it bumps the session's generation
counter so resumable states can be told apart from stale ones).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.api.errors import NoEntryPointError
from repro.api.registry import get_analyzer, has_engine_config
from repro.api.report import AnalysisReport
from repro.core.results import AnalysisResult
from repro.core.state import SolverState, SolverStateError
from repro.ir.delta import AppliedDelta, ProgramDelta
from repro.ir.program import Program
from repro.lang.api import compile_source

#: The conventional entry point used when nothing else is specified.
DEFAULT_ENTRY_POINT = "Main.main"


class ResumeFallbackWarning(UserWarning):
    """A requested warm resume was not sound; the session ran cold instead.

    Emitted — never silently swallowed — whenever ``run(..., resume=...)``
    cannot honor the resume: a non-monotone update happened since the state
    was produced, the state was solved under a different configuration, the
    analyzer has no propagation engine, or a stamped snapshot rejects the
    current program.  The cold result is correct either way; the warning
    exists so the *cost* surprise is visible.
    """


#: What ``run(..., resume=...)`` accepts: a report or result of a previous
#: session run, or a bare solver state (e.g. restored from a snapshot).
ResumeSource = Union[AnalysisReport, AnalysisResult, SolverState]


def resolve_roots(program: Program,
                  roots: Optional[Iterable[str]] = None) -> List[str]:
    """The analysis roots for ``program``, validated against its methods.

    Resolution order: explicit ``roots`` if given, else the program's
    declared entry points, else the ``Main.main`` convention.  Every
    resolved root must name a method the program defines; anything else
    raises :class:`NoEntryPointError` with the offending names.
    """
    if roots is not None:
        resolved = list(roots)
        origin = "explicit roots"
        if not resolved:
            raise NoEntryPointError(
                "an empty roots list was given; pass at least one "
                "qualified method name (Class.method)")
    elif program.entry_points:
        resolved = list(program.entry_points)
        origin = "program entry points"
    elif program.has_method(DEFAULT_ENTRY_POINT):
        return [DEFAULT_ENTRY_POINT]
    else:
        raise NoEntryPointError(
            f"no entry point: the program defines neither entry points nor "
            f"{DEFAULT_ENTRY_POINT}; pass explicit roots (CLI: --entry)")
    missing = [name for name in resolved if not program.has_method(name)]
    if missing:
        raise NoEntryPointError(
            f"{origin} name methods the program does not define: "
            f"{', '.join(missing)}")
    return resolved


@dataclass(frozen=True)
class SessionComparison:
    """N analyses of one program over the same roots, in request order."""

    program_name: str
    reports: Tuple[AnalysisReport, ...]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(report.analyzer for report in self.reports)

    def report(self, analyzer: str) -> AnalysisReport:
        """The report for one analyzer, accepting registry aliases too."""
        wanted = analyzer
        try:
            wanted = get_analyzer(analyzer).name
        except KeyError:
            pass  # Not (or no longer) registered: match the literal name.
        for report in self.reports:
            if report.analyzer == wanted:
                return report
        raise KeyError(f"no report for {analyzer!r}; "
                       f"available: {', '.join(self.names)}")

    def reachable_counts(self) -> Dict[str, int]:
        return {report.analyzer: report.reachable_method_count
                for report in self.reports}

    def is_monotone_precision_ladder(self) -> bool:
        """Whether reachable methods never *grow* along the request order.

        With analyses ordered least-precise-first (``cha, rta, pta,
        skipflow``) a sound implementation must produce a non-increasing
        reachable-method sequence — each rung only removes spurious targets.
        """
        counts = [report.reachable_method_count for report in self.reports]
        return all(left >= right for left, right in zip(counts, counts[1:]))

    def table(self, title: Optional[str] = None) -> str:
        """Render the comparison as an N-column text table."""
        from repro.reporting.table import format_analysis_comparison

        return format_analysis_comparison(
            self.reports, title=title or f"Comparison ({self.program_name})")


@dataclass(frozen=True)
class SessionUpdate:
    """The record of one :meth:`AnalysisSession.update` application."""

    generation: int
    monotone: bool
    reasons: Tuple[str, ...]
    applied: AppliedDelta

    def summary(self) -> str:
        return f"generation {self.generation}: {self.applied.summary()}"


class AnalysisSession:
    """Run named analyses over one program with shared root resolution."""

    def __init__(self, program: Program, *, name: str = "program",
                 roots: Optional[Iterable[str]] = None) -> None:
        self.program = program
        self.name = name
        self._default_roots = list(roots) if roots is not None else None
        #: Bumped by every update(); stamped onto the states run() produces.
        self._generation = 0
        #: Generation of the most recent non-monotone update: states from
        #: before it cannot be resumed (the warm barrier).
        self._warm_barrier = 0
        #: Why that update was non-monotone (the offending classes/methods),
        #: kept so fallback warnings can name the offenders.
        self._warm_barrier_reasons: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_program(cls, program: Program, *, name: str = "program",
                     roots: Optional[Iterable[str]] = None) -> "AnalysisSession":
        return cls(program, name=name, roots=roots)

    @classmethod
    def from_source(cls, source: str, *,
                    entry_points: Optional[Iterable[str]] = None,
                    roots: Optional[Iterable[str]] = None,
                    reflection=None, name: str = "source",
                    validate: bool = True) -> "AnalysisSession":
        """Compile surface-language source and wrap it in a session.

        ``entry_points`` are compiled *into* the program (they must name
        defined methods, or compilation raises a
        :class:`~repro.ir.program.ProgramError`); ``roots`` instead become
        the session's default analysis roots, validated lazily by
        :func:`resolve_roots` — misspellings surface as
        :class:`NoEntryPointError`, the taxonomy's root-resolution failure.
        ``reflection`` is an optional :class:`~repro.image.reflection.
        ReflectionConfig`; it is applied once here so that every analysis of
        the session sees the same (augmented) program.
        """
        program = compile_source(source, entry_points=entry_points,
                                 validate=validate)
        if reflection is not None:
            reflection.apply_to(program)
        return cls(program, name=name, roots=roots)

    @classmethod
    def from_file(cls, path, *, entry_points: Optional[Iterable[str]] = None,
                  roots: Optional[Iterable[str]] = None,
                  reflection=None, validate: bool = True) -> "AnalysisSession":
        path = Path(path)
        return cls.from_source(path.read_text(), entry_points=entry_points,
                               roots=roots, reflection=reflection,
                               name=path.name, validate=validate)

    @classmethod
    def from_spec(cls, spec, *, store=None) -> "AnalysisSession":
        """A session over a benchmark spec's generated program.

        With an engine :class:`~repro.engine.program_store.ProgramStore`,
        the IR is unpickled from (or freshly stored into) the shared blob
        store instead of being regenerated — results are bit-identical
        either way.
        """
        if store is not None:
            program, _ = store.load_or_build(spec)
        else:
            from repro.workloads.generator import generate_benchmark

            program = generate_benchmark(spec)
        return cls(program, name=spec.name)

    # ------------------------------------------------------------------ #
    # Program evolution
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """How many updates this session's program has absorbed."""
        return self._generation

    @property
    def warm_barrier(self) -> int:
        """Generation of the last non-monotone update (0 = none yet).

        States stamped with a generation below the barrier resume cold.
        """
        return self._warm_barrier

    @property
    def warm_barrier_reasons(self) -> Tuple[str, ...]:
        """Why the last non-monotone update moved the barrier.

        The per-offender reasons of the update that set
        :attr:`warm_barrier` (e.g. ``"method Probe.check is added to
        pre-existing class Probe (resolution for already-linked receivers
        could change)"``); empty while no non-monotone update happened.
        """
        return self._warm_barrier_reasons

    def adopt_generations(self, generation: int, warm_barrier: int = 0,
                          barrier_reasons: Iterable[str] = ()) -> None:
        """Re-adopt generation counters after rehydrating a persisted session.

        The service layer evicts idle sessions to disk and rebuilds them
        later from the pickled program; the rebuilt session must keep the
        original generation history, or solver states stamped before the
        eviction would be judged against a reset warm barrier.
        """
        if generation < 0 or not 0 <= warm_barrier <= generation:
            raise ValueError(
                f"invalid generation counters: generation={generation}, "
                f"warm_barrier={warm_barrier}")
        self._generation = generation
        self._warm_barrier = warm_barrier
        self._warm_barrier_reasons = tuple(barrier_reasons)

    def update(self, delta: ProgramDelta) -> SessionUpdate:
        """Apply an edit script to the session's program in place.

        Structurally invalid deltas raise (:class:`~repro.ir.delta.
        DeltaError`) without touching the program.  Valid deltas are applied
        whether or not they are monotone; a non-monotone application moves
        the session's *warm barrier*, after which earlier states resume
        cold (with a :class:`ResumeFallbackWarning`) instead of unsoundly
        warm.  Returns the application record, including the monotonicity
        verdict and its reasons.
        """
        applied = delta.apply_to(self.program, require_monotone=False)
        self._generation += 1
        if not applied.monotone:
            self._warm_barrier = self._generation
            self._warm_barrier_reasons = applied.reasons
        return SessionUpdate(
            generation=self._generation,
            monotone=applied.monotone,
            reasons=applied.reasons,
            applied=applied,
        )

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def resolve_roots(self, roots: Optional[Iterable[str]] = None) -> List[str]:
        """This session's validated analysis roots (see :func:`resolve_roots`)."""
        return resolve_roots(
            self.program, roots if roots is not None else self._default_roots)

    def _resolve_resume(self, resume: ResumeSource,
                        analyzer) -> Tuple[Optional[SolverState], str]:
        """The state to resume from, or (None, why a cold run is needed)."""
        if not has_engine_config(analyzer):
            return None, (f"analysis {analyzer.name!r} has no propagation "
                          f"engine to resume")
        state: Optional[SolverState]
        if isinstance(resume, SolverState):
            state = resume
        elif isinstance(resume, AnalysisReport):
            raw = resume.raw
            state = getattr(raw, "solver_state", None)
        elif isinstance(resume, AnalysisResult):
            state = resume.solver_state
        else:
            raise TypeError(
                f"resume must be an AnalysisReport, AnalysisResult, or "
                f"SolverState, not {type(resume).__name__}")
        if state is None:
            return None, "the previous result carries no solver state"
        generation = getattr(state, "session_generation", None)
        if generation is not None and generation < self._warm_barrier:
            return None, ("a non-monotone update was applied after this "
                          "state was produced"
                          + self._barrier_detail())
        if (generation is None and self._warm_barrier > 0
                and state.fingerprint is None):
            # A foreign, unstamped state in a session whose program has seen
            # a non-monotone update: nothing can prove the state predates or
            # postdates the break, so warm is not defensible.
            return None, ("the session's program had a non-monotone update "
                          + self._barrier_detail()
                          + " and the state carries neither a session "
                          "generation nor a fingerprint to prove it is "
                          "still valid")
        return state, ""

    def _barrier_detail(self) -> str:
        """The offending edits behind the warm barrier, for messages."""
        if not self._warm_barrier_reasons:
            return ""
        return " (" + "; ".join(self._warm_barrier_reasons) + ")"

    def run(self, analysis: str, *, roots: Optional[Iterable[str]] = None,
            resume: Optional[ResumeSource] = None,
            **options) -> AnalysisReport:
        """Run one registered analysis by name and return its report.

        With ``resume``, the solve warm-starts from a previous state (a
        report/result of an earlier run, or a restored snapshot) instead of
        starting cold — sound because the session refuses states from
        before the last non-monotone update and the state itself refuses
        foreign programs (see :class:`ResumeFallbackWarning`).  Resuming
        *consumes* the state: it is mutated in place, and the previous
        report's deep PVPG views (``raw``) follow the continued solve while
        its scalar fields stay as captured.  Fork the state first to keep a
        reusable branch point.  Counters on a resumed report are cumulative
        across the state's solves.
        """
        analyzer = get_analyzer(analysis)
        resolved = self.resolve_roots(roots)
        if resume is not None:
            state, reason = self._resolve_resume(resume, analyzer)
            if state is None:
                warnings.warn(f"falling back to a cold solve: {reason}",
                              ResumeFallbackWarning, stacklevel=2)
            else:
                try:
                    report = analyzer.analyze(self.program, resolved,
                                              resume=state, **options)
                except SolverStateError as error:
                    warnings.warn(f"falling back to a cold solve: {error}",
                                  ResumeFallbackWarning, stacklevel=2)
                else:
                    self._stamp(report)
                    return report
        report = analyzer.analyze(self.program, resolved, **options)
        self._stamp(report)
        return report

    def _stamp(self, report: AnalysisReport) -> None:
        """Tag the report's state with the session generation it solved."""
        state = getattr(report.raw, "solver_state", None)
        if state is not None:
            state.session_generation = self._generation

    def compare(self, analyses: Sequence[str], *,
                roots: Optional[Iterable[str]] = None,
                **options) -> SessionComparison:
        """Run N registered analyses over the same roots and collect them.

        ``analyses`` must name at least two distinct analyzers.  ``options``
        (e.g. ``saturation_threshold``) are routed per analyzer: each one
        receives only the options it declares in ``supported_options``, so
        a ladder mixing CHA/RTA with engine configurations can still sweep
        engine-only knobs.  An option no requested analyzer supports is an
        error (it would otherwise be silently ignored everywhere); analyzers
        that declare no ``supported_options`` attribute receive everything.
        """
        names = list(analyses)
        if len(names) < 2:
            raise ValueError(
                f"compare needs at least two analyses, got {names}")
        analyzers = [get_analyzer(name) for name in names]
        canonical = [analyzer.name for analyzer in analyzers]
        if len(set(canonical)) != len(canonical):
            raise ValueError(f"duplicate analyses in comparison: {names}")
        for option in options:
            if not any(option in getattr(analyzer, "supported_options", {option})
                       for analyzer in analyzers):
                raise ValueError(
                    f"option {option!r} is not supported by any of the "
                    f"requested analyses ({', '.join(canonical)})")
        resolved = self.resolve_roots(roots)
        reports = tuple(
            analyzer.analyze(self.program, resolved, **{
                key: value for key, value in options.items()
                if key in getattr(analyzer, "supported_options", options)})
            for analyzer in analyzers)
        return SessionComparison(program_name=self.name, reports=reports)
