"""The unified analysis API: registry, report facade, and sessions.

Everything the evaluation is built from — CHA, RTA, the PTA baseline,
SkipFlow, and its ablations — is reachable through three pieces:

* the **registry** (:mod:`repro.api.registry`): analyses are named,
  discoverable plug-ins satisfying the :class:`Analyzer` protocol;
* the **report facade** (:mod:`repro.api.report`): every analysis returns
  one :class:`AnalysisReport`, whatever shape its native result has;
* the **session** (:mod:`repro.api.session`): :class:`AnalysisSession` owns
  program loading and root resolution, and runs or N-way-compares analyses
  by name.

Quick tour::

    from repro.api import AnalysisSession, available_analyzers

    session = AnalysisSession.from_file("examples/app.java")
    report = session.run("skipflow")
    ladder = session.compare(["cha", "rta", "pta", "skipflow"])
    assert ladder.is_monotone_precision_ladder()

The old per-analysis entry points (``run_skipflow``, ``run_baseline``,
``run_pta``, ``ClassHierarchyAnalysis(...).run()``) keep working as thin
shims; see ``docs/api.md`` for the migration table.
"""

from repro.api.errors import (
    CheckFailedError,
    NoEntryPointError,
    ReproError,
    SchemaVersionError,
    ServiceProtocolError,
    SessionExistsError,
    SessionNotFoundError,
    SessionRehydrationError,
    UnknownAnalyzerError,
    exit_code_for,
    http_status_for,
)
from repro.api.registry import (
    Analyzer,
    CallGraphAnalyzer,
    ConfigAnalyzer,
    available_analyzers,
    config_backed_analyzers,
    get_analyzer,
    has_engine_config,
    register_analyzer,
    require_config_analyzer,
    unregister_analyzer,
)
from repro.api.report import (
    SCHEMA_VERSION,
    AnalysisReport,
    CallGraphView,
    call_graph_to_dict,
    wrap_result,
)
from repro.api.session import (
    AnalysisSession,
    ResumeFallbackWarning,
    SessionComparison,
    SessionUpdate,
    resolve_roots,
)
from repro.core.kernel import (
    SolverPolicy,
    available_saturation_policies,
    available_scheduling_policies,
)

__all__ = [
    "AnalysisReport",
    "AnalysisSession",
    "Analyzer",
    "CallGraphAnalyzer",
    "CallGraphView",
    "ConfigAnalyzer",
    "CheckFailedError",
    "NoEntryPointError",
    "ReproError",
    "ResumeFallbackWarning",
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "ServiceProtocolError",
    "SessionComparison",
    "SessionExistsError",
    "SessionNotFoundError",
    "SessionRehydrationError",
    "SessionUpdate",
    "SolverPolicy",
    "UnknownAnalyzerError",
    "available_analyzers",
    "available_saturation_policies",
    "available_scheduling_policies",
    "call_graph_to_dict",
    "config_backed_analyzers",
    "exit_code_for",
    "get_analyzer",
    "has_engine_config",
    "http_status_for",
    "register_analyzer",
    "require_config_analyzer",
    "resolve_roots",
    "unregister_analyzer",
    "wrap_result",
]
