"""The analyzer registry: every analysis is a named, discoverable plug-in.

An *analyzer* is anything satisfying the :class:`Analyzer` protocol: it has
a ``name``, a ``description``, a ``precision_rank`` (its place in the
classic call-graph precision ladder, lower = less precise), and an
``analyze(program, roots, **options)`` method returning an
:class:`~repro.api.report.AnalysisReport`.  Two implementations cover the
whole codebase:

* :class:`ConfigAnalyzer` wraps one :class:`~repro.core.analysis.
  AnalysisConfig` of the shared propagation engine (PTA, SkipFlow, and the
  two ablations);
* :class:`CallGraphAnalyzer` wraps a call-graph construction class
  (CHA, RTA).

The registry maps lowercase names (plus aliases) to analyzer instances;
:func:`available_analyzers` lists them in precision order, which is exactly
the ``cha → rta → pta → skipflow`` ladder the evaluation sweeps.  New
analyses plug in with :func:`register_analyzer` — no other layer needs to
change, because the engine, the session, the image builder, and the CLI all
resolve analyses by name through this module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.api.errors import UnknownAnalyzerError
from repro.api.report import AnalysisReport
from repro.baselines.cha import ClassHierarchyAnalysis
from repro.baselines.rta import RapidTypeAnalysis
from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.kernel.policy import SolverPolicy
from repro.core.state import SolverState
from repro.ir.program import Program


@runtime_checkable
class Analyzer(Protocol):
    """What the registry stores: a named whole-program analysis."""

    name: str
    description: str
    precision_rank: int

    def analyze(self, program: Program,
                roots: Optional[Iterable[str]] = None,
                **options) -> AnalysisReport: ...


@dataclass(frozen=True)
class ConfigAnalyzer:
    """An analyzer backed by the propagation engine and one configuration.

    ``options`` accepted by :meth:`analyze`: the solver-kernel knobs — either
    a bundled ``policy`` (:class:`~repro.core.kernel.policy.SolverPolicy`)
    *or* the individual ``saturation_threshold`` (the megamorphic-flow
    cutoff; ``None`` keeps the exact paper semantics), ``saturation_policy``
    (the sentinel a saturated flow collapses to), and ``scheduling`` (the
    worklist order) — but not both forms at once — plus ``kernel``
    (``object``/``arena``/``parallel``, the bit-identical
    propagation-kernel choice, orthogonal to both forms) and
    ``partitions`` (the parallel kernel's worker count; ignored by the
    serial kernels).  ``resume`` additionally
    accepts the :class:`~repro.core.state.SolverState` of a previous solve
    to warm-start from instead of solving cold; it is deliberately *not* in
    ``supported_options`` because one state cannot back several analyzers of
    a comparison (``AnalysisSession.run`` routes it explicitly).
    """

    name: str
    description: str
    config_factory: Callable[[], AnalysisConfig] = field(repr=False)
    precision_rank: int = 100

    #: Keyword options ``analyze`` understands; ``AnalysisSession.compare``
    #: uses this to route an option only to the analyzers that support it.
    supported_options = frozenset(
        {"saturation_threshold", "saturation_policy", "scheduling", "policy",
         "kernel", "partitions"})

    def config(self, saturation_threshold: Optional[int] = None,
               saturation_policy: Optional[str] = None,
               scheduling: Optional[str] = None,
               policy: Optional[SolverPolicy] = None,
               kernel: Optional[str] = None,
               partitions: Optional[int] = None) -> AnalysisConfig:
        """The analyzer's engine configuration under the requested kernel knobs."""
        config = self.config_factory()
        if kernel is not None:
            config = config.with_kernel(kernel)
        if partitions is not None:
            config = config.with_partitions(partitions)
        if policy is not None:
            if (saturation_threshold is not None or saturation_policy is not None
                    or scheduling is not None):
                raise ValueError(
                    "pass either a bundled policy or the individual "
                    "scheduling/saturation knobs, not both")
            return config.with_policy(policy)
        if saturation_threshold is not None:
            config = config.with_saturation_threshold(saturation_threshold)
        if saturation_policy is not None:
            config = config.with_saturation_policy(saturation_policy)
        if scheduling is not None:
            config = config.with_scheduling(scheduling)
        return config

    def analyze(self, program: Program,
                roots: Optional[Iterable[str]] = None,
                *, saturation_threshold: Optional[int] = None,
                saturation_policy: Optional[str] = None,
                scheduling: Optional[str] = None,
                policy: Optional[SolverPolicy] = None,
                kernel: Optional[str] = None,
                partitions: Optional[int] = None,
                resume: Optional[SolverState] = None) -> AnalysisReport:
        config = self.config(saturation_threshold, saturation_policy,
                             scheduling, policy, kernel, partitions)
        result = SkipFlowAnalysis(program, config, state=resume).run(roots)
        return AnalysisReport.from_analysis_result(result, analyzer=self.name)


@dataclass(frozen=True)
class CallGraphAnalyzer:
    """An analyzer backed by a call-graph construction class (CHA, RTA)."""

    name: str
    description: str
    algorithm: Callable[[Program], ClassHierarchyAnalysis] = field(repr=False)
    precision_rank: int = 0

    #: CHA/RTA have no propagation engine, hence no tunable options.
    supported_options = frozenset()

    def analyze(self, program: Program,
                roots: Optional[Iterable[str]] = None,
                *, saturation_threshold: Optional[int] = None,
                saturation_policy: Optional[str] = None,
                scheduling: Optional[str] = None,
                policy: Optional[SolverPolicy] = None,
                resume: Optional[SolverState] = None) -> AnalysisReport:
        rejected = next(
            (label for label, value in (
                ("saturation_threshold", saturation_threshold),
                ("saturation_policy", saturation_policy),
                ("scheduling", scheduling),
                ("policy", policy),
                ("resume", resume))
             if value is not None), None)
        if rejected is not None:
            raise ValueError(
                f"the {self.name!r} analyzer has no propagation engine and "
                f"does not support {rejected}")
        started = time.perf_counter()
        result = self.algorithm(program).run(roots)
        elapsed = time.perf_counter() - started
        return AnalysisReport.from_call_graph_result(
            result, analyzer=self.name, analysis_time_seconds=elapsed)


# ---------------------------------------------------------------------- #
# The registry
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, Analyzer] = {}
_ALIASES: Dict[str, str] = {}


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_analyzer(analyzer: Analyzer, *, aliases: Iterable[str] = (),
                      replace: bool = False) -> Analyzer:
    """Register an analyzer (and optional aliases) under its lowercase name.

    Raises :class:`ValueError` when a name or alias is already taken, unless
    ``replace`` is set — which also *removes* whatever previously answered
    to any of the names (canonical entries and stale aliases alike), so a
    replacement is reachable under exactly the names it registers.  Returns
    the analyzer so the call can be used as a decorator-style expression.
    """
    key = _normalize(analyzer.name)
    new_names = [key] + [_normalize(alias) for alias in aliases]
    if len(set(new_names)) != len(new_names):
        raise ValueError(f"duplicate names in registration: {new_names}")
    if not replace:
        taken = set(_REGISTRY) | set(_ALIASES)
        for name in new_names:
            if name in taken:
                raise ValueError(
                    f"analyzer name {name!r} is already registered; pass "
                    f"replace=True to override it")
    else:
        for name in new_names:
            # Clear both directions: a canonical entry under this name, any
            # alias previously pointing elsewhere under this name, and any
            # old aliases that pointed at this name.
            _REGISTRY.pop(name, None)
            _ALIASES.pop(name, None)
            for alias in [a for a, target in _ALIASES.items() if target == name]:
                del _ALIASES[alias]
    _REGISTRY[key] = analyzer
    for alias in new_names[1:]:
        _ALIASES[alias] = key
    return analyzer


def unregister_analyzer(name: str) -> None:
    """Remove an analyzer and every alias pointing at it (test hygiene)."""
    key = _ALIASES.get(_normalize(name), _normalize(name))
    _REGISTRY.pop(key, None)
    for alias in [a for a, target in _ALIASES.items() if target == key]:
        del _ALIASES[alias]


def get_analyzer(name: str) -> Analyzer:
    """Look an analyzer up by (case-insensitive) name or alias."""
    key = _normalize(name)
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownAnalyzerError(
            f"unknown analysis {name!r}; available: "
            f"{', '.join(available_analyzers())}") from None


def available_analyzers() -> Tuple[str, ...]:
    """Canonical analyzer names, least precise first (the precision ladder)."""
    return tuple(sorted(
        _REGISTRY, key=lambda key: (_REGISTRY[key].precision_rank, key)))


def has_engine_config(analyzer: Analyzer) -> bool:
    """Whether an analyzer exposes an engine ``AnalysisConfig`` (duck-typed)."""
    return callable(getattr(analyzer, "config", None))


def config_backed_analyzers() -> Tuple[str, ...]:
    """The analyzers that expose an engine ``AnalysisConfig`` (PVPG-based).

    These are the ones the image builder, the PVPG exporter, and the
    benchmark engine can drive; CHA/RTA produce call graphs only.
    """
    return tuple(name for name in available_analyzers()
                 if has_engine_config(get_analyzer(name)))


def require_config_analyzer(name: str,
                            purpose: str = "this operation") -> Analyzer:
    """The analyzer for ``name``, rejecting call-graph-only baselines.

    The single guard behind every consumer that needs the propagation
    engine (the image builder, ``repro callgraph``/``pvpg``); the error
    message lists the analyzers that do qualify.
    """
    analyzer = get_analyzer(name)
    if not has_engine_config(analyzer):
        raise ValueError(
            f"analysis {analyzer.name!r} produces a call graph only and "
            f"cannot drive {purpose}; use one of: "
            f"{', '.join(config_backed_analyzers())}")
    return analyzer


# ---------------------------------------------------------------------- #
# Built-in analyses: the call-graph precision ladder of the paper
# ---------------------------------------------------------------------- #
register_analyzer(CallGraphAnalyzer(
    name="cha",
    description="Class Hierarchy Analysis: every subtype of the declared "
                "receiver type (Dean, Grove & Chambers 1995)",
    algorithm=ClassHierarchyAnalysis,
    precision_rank=0,
))

register_analyzer(CallGraphAnalyzer(
    name="rta",
    description="Rapid Type Analysis: CHA restricted to instantiated "
                "receiver types (Bacon & Sweeney 1996)",
    algorithm=RapidTypeAnalysis,
    precision_rank=10,
))

register_analyzer(ConfigAnalyzer(
    name="pta",
    description="The paper's baseline points-to analysis: type-based, "
                "flow-insensitive, context-insensitive",
    config_factory=AnalysisConfig.baseline_pta,
    precision_rank=20,
), aliases=("baseline",))

register_analyzer(ConfigAnalyzer(
    name="predicates-only",
    description="Ablation: predicate edges without primitive constant "
                "tracking",
    config_factory=AnalysisConfig.predicates_only,
    precision_rank=30,
), aliases=("skipflow-predicates-only",))

register_analyzer(ConfigAnalyzer(
    name="primitives-only",
    description="Ablation: primitive constant tracking without predicate "
                "edges",
    config_factory=AnalysisConfig.primitives_only,
    precision_rank=30,
), aliases=("skipflow-primitives-only",))

register_analyzer(ConfigAnalyzer(
    name="skipflow",
    description="The full SkipFlow analysis: predicate edges plus primitive "
                "constant tracking",
    config_factory=AnalysisConfig.skipflow,
    precision_rank=40,
))
