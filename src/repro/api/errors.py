"""The typed error taxonomy of the analysis API, with wire/CLI mappings.

Every error a caller can *act on* — bad analysis names, programs without
roots, non-monotone deltas, unknown service sessions — is a typed exception
here (or registered here, for errors whose natural home is a lower layer,
like :class:`~repro.ir.delta.NonMonotoneDeltaError`).  Two mappings make the
taxonomy consistent across surfaces:

* :func:`exit_code_for` — the CLI exit code of an error.  ``repro``
  historically exited 2 for *everything*; the taxonomy splits that into
  usage errors (2), root-resolution failures (3), compile/program errors
  (4), delta errors (5), and service/session errors (6), so scripts can
  branch on the failure class instead of parsing stderr.
* :func:`http_status_for` — the HTTP status the analysis daemon
  (:mod:`repro.service`) answers with: 404 for unknown names and sessions,
  409 for non-monotone conflicts, 422 for inputs that parse but cannot be
  analyzed, 400 for malformed requests, 500 for internal failures.

Exceptions defined elsewhere keep their historical bases (so existing
``except ValueError`` / ``except KeyError`` callers are unaffected); the
classes here layer :class:`ReproError` on top, which is what carries the
``exit_code`` / ``http_status`` class attributes.
"""

from __future__ import annotations

#: CLI exit codes, from least to most specific failure class.
EXIT_FAILURE = 1        # generic/internal failure (also: non-monotone verdicts)
EXIT_USAGE = 2          # bad flags, unknown analysis names, invalid options
EXIT_NO_ENTRY = 3       # no analysis roots could be resolved
EXIT_COMPILE = 4        # the input program does not compile / is malformed
EXIT_DELTA = 5          # a structurally invalid or non-monotone delta
EXIT_SESSION = 6        # service-session errors (unknown, lost, duplicate)
EXIT_CHECK = 7          # diagnostics gate: error-severity check findings


class ReproError(Exception):
    """Base of the typed taxonomy: carries exit code and HTTP status.

    Subclasses override the two class attributes; foreign exception types
    (defined in layers that must not import the API) are registered in the
    mapping tables consulted by :func:`exit_code_for` /
    :func:`http_status_for` instead.
    """

    exit_code = EXIT_USAGE
    http_status = 400


class NoEntryPointError(ReproError, ValueError):
    """No analysis roots could be resolved for a program.

    Raised instead of silently analyzing nothing: a program without roots
    has an empty reachable set under every analysis, which historically
    masked misspelled ``--entry`` names and missing ``Main.main`` methods.
    """

    exit_code = EXIT_NO_ENTRY
    http_status = 422


class UnknownAnalyzerError(ReproError, KeyError, ValueError):
    """An analysis name that resolves to nothing in the registry.

    Subclasses both :class:`KeyError` (it is a failed lookup) and
    :class:`ValueError` (callers validating user input, like the CLI, catch
    value errors); ``str()`` is overridden to drop ``KeyError``'s quoting.
    """

    exit_code = EXIT_USAGE
    http_status = 404

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class SessionNotFoundError(ReproError, KeyError):
    """A service request named a session the daemon does not hold."""

    exit_code = EXIT_SESSION
    http_status = 404

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class SessionExistsError(ReproError, ValueError):
    """``open`` named a session that is already open (and ``replace`` was off)."""

    exit_code = EXIT_SESSION
    http_status = 409


class SessionRehydrationError(ReproError, RuntimeError):
    """An evicted session could not be restored from its spilled blobs."""

    exit_code = EXIT_SESSION
    http_status = 500


class ServiceProtocolError(ReproError, ValueError):
    """A malformed service request: bad JSON, missing or conflicting fields."""

    exit_code = EXIT_USAGE
    http_status = 400


class SchemaVersionError(ReproError, ValueError):
    """A serialized report whose schema version this code does not speak."""

    exit_code = EXIT_USAGE
    http_status = 400


class CheckFailedError(ReproError, RuntimeError):
    """A diagnostics gate failed: error-severity check findings exist.

    Raised where an artifact that failed its post-solve audit must not be
    handed out (the daemon's audit-on-analyze path); the CLI maps the same
    condition to :data:`EXIT_CHECK` directly.  The message carries the
    rendered findings.
    """

    exit_code = EXIT_CHECK
    http_status = 500


def _foreign_types():
    """The (type, exit code, HTTP status) table for errors homed elsewhere.

    Imported lazily so this module stays import-cycle-free (it is imported
    by :mod:`repro.api.registry` and :mod:`repro.api.session`, which lower
    layers must never depend on).  Order matters: the first matching type
    wins, so subclasses precede their bases.
    """
    from repro.ir.delta import DeltaError, NonMonotoneDeltaError
    from repro.ir.program import ProgramError
    from repro.ir.validate import ValidationError
    from repro.lang.errors import LangError

    return (
        (NonMonotoneDeltaError, EXIT_DELTA, 409),
        (DeltaError, EXIT_DELTA, 422),
        (LangError, EXIT_COMPILE, 422),
        (ProgramError, EXIT_COMPILE, 422),
        (ValidationError, EXIT_COMPILE, 422),
    )


def exit_code_for(error: BaseException) -> int:
    """The CLI exit code for ``error`` under the taxonomy.

    Typed errors carry their own code; registered foreign types map through
    the table; any other :class:`ValueError` is a usage error (the
    historical exit 2); everything else is a generic failure.
    """
    if isinstance(error, ReproError):
        return error.exit_code
    for kind, exit_code, _ in _foreign_types():
        if isinstance(error, kind):
            return exit_code
    if isinstance(error, ValueError):
        return EXIT_USAGE
    return EXIT_FAILURE


def http_status_for(error: BaseException) -> int:
    """The daemon HTTP status for ``error`` under the taxonomy."""
    if isinstance(error, ReproError):
        return error.http_status
    for kind, _, status in _foreign_types():
        if isinstance(error, kind):
            return status
    if isinstance(error, ValueError):
        return 400
    return 500
