"""SSA intermediate representation: the base language of SkipFlow (Appendix B).

The IR mirrors the base language used by the paper's formalism: a Java-like
managed language in static single assignment form with explicit basic blocks,
``start``/``merge``/``label`` block headers, field loads and stores, virtual
method invocations, and ``if`` terminators restricted to ``=``, ``<`` and
``instanceof`` conditions.
"""

from repro.ir.blocks import BasicBlock
from repro.ir.builder import MethodBuilder, ProgramBuilder
from repro.ir.cfg import ControlFlowGraph
from repro.ir.delta import (
    AppliedDelta,
    DeltaError,
    FingerprintDelta,
    NonMonotoneDeltaError,
    ProgramDelta,
    ProgramFingerprint,
    diff_fingerprints,
    diff_programs,
)
from repro.ir.instructions import (
    Assign,
    BlockBegin,
    BlockEnd,
    CompareOp,
    Condition,
    If,
    InstanceOfCondition,
    Invoke,
    InvokeKind,
    Jump,
    Label,
    LoadField,
    Merge,
    Phi,
    Return,
    Start,
    Statement,
    StoreField,
    flip_compare_op,
    invert_compare_op,
)
from repro.ir.method import Method
from repro.ir.printer import format_method, format_program
from repro.ir.program import Program
from repro.ir.types import (
    NULL_TYPE_NAME,
    ClassType,
    FieldDecl,
    MethodSignature,
    TypeHierarchy,
)
from repro.ir.validate import ValidationError, validate_method, validate_program
from repro.ir.values import ConstantExpr, ConstKind, Value

__all__ = [
    "AppliedDelta",
    "Assign",
    "BasicBlock",
    "BlockBegin",
    "BlockEnd",
    "ClassType",
    "CompareOp",
    "Condition",
    "ConstKind",
    "ConstantExpr",
    "ControlFlowGraph",
    "DeltaError",
    "FieldDecl",
    "FingerprintDelta",
    "If",
    "InstanceOfCondition",
    "Invoke",
    "InvokeKind",
    "Jump",
    "Label",
    "LoadField",
    "Merge",
    "Method",
    "MethodBuilder",
    "MethodSignature",
    "NULL_TYPE_NAME",
    "NonMonotoneDeltaError",
    "Phi",
    "Program",
    "ProgramBuilder",
    "ProgramDelta",
    "ProgramFingerprint",
    "Return",
    "Start",
    "Statement",
    "StoreField",
    "TypeHierarchy",
    "ValidationError",
    "Value",
    "validate_method",
    "validate_program",
    "diff_fingerprints",
    "diff_programs",
    "format_method",
    "format_program",
    "invert_compare_op",
    "flip_compare_op",
]
