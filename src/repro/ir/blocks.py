"""Basic blocks of the SSA base language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.ir.instructions import (
    Assign,
    If,
    Invoke,
    Jump,
    Label,
    LoadField,
    Merge,
    Return,
    Start,
    StoreField,
)

BlockBeginT = Union[Start, Merge, Label]
StatementT = Union[Assign, LoadField, StoreField, Invoke]
BlockEndT = Union[Return, Jump, If]


@dataclass
class BasicBlock:
    """A basic block: a block begin, a list of statements, and a block end.

    Block identity is the ``name``:

    * for the entry block the name is ``"entry"``;
    * for a block beginning with ``merge ... m`` the name is ``m``;
    * for a block beginning with ``label l`` the name is ``l``.
    """

    name: str
    begin: BlockBeginT
    statements: List[StatementT] = field(default_factory=list)
    end: Optional[BlockEndT] = None

    @property
    def is_entry(self) -> bool:
        return isinstance(self.begin, Start)

    @property
    def is_merge(self) -> bool:
        return isinstance(self.begin, Merge)

    @property
    def is_label(self) -> bool:
        return isinstance(self.begin, Label)

    def successor_names(self) -> List[str]:
        """Names of the successor blocks derived from the block end."""
        if isinstance(self.end, Jump):
            return [self.end.target]
        if isinstance(self.end, If):
            return [self.end.then_label, self.end.else_label]
        return []

    def append(self, statement: StatementT) -> None:
        self.statements.append(statement)

    def __str__(self) -> str:
        lines = [str(self.begin)]
        lines.extend(f"  {s}" for s in self.statements)
        if self.end is not None:
            lines.append(f"  {self.end}")
        return "\n".join(lines)
