"""Attach-side views over a frozen arena buffer.

:class:`ProgramArena` is the raw column view: it decodes nothing at attach
time beyond the section index — every table is a zero-copy ``memoryview``
over the (typically ``mmap``-ed) buffer, strings are decoded lazily and
memoized, and method bodies unpickle individually on first touch.

:class:`ArenaProgram` dresses an arena up as a :class:`~repro.ir.program.Program`:
a real :class:`~repro.ir.types.TypeHierarchy` is rebuilt from the (small)
type/field/signature tables, while ``methods`` is a lazy mapping producing
:class:`ArenaMethod` views whose ``blocks`` thaw on demand — the arena
solver kernel never touches them.  Two duck-typed attributes let the rest
of the system skip object-graph walks entirely:

* ``program_fingerprint`` — the :class:`~repro.ir.delta.ProgramFingerprint`
  stamped at freeze time (``ProgramFingerprint.of`` returns it directly
  instead of re-digesting every body);
* ``allocation_site_index`` — qualified method name to NEW'd type names,
  which the allocated-type saturation policies scan instead of iterating
  instructions.

An :class:`ArenaProgram` is read-only by convention: its method mapping
does not support insertion, so mutating passes must :func:`thaw` first.
"""

from __future__ import annotations

import pickle
from functools import cached_property
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.ir.arena import schema
from repro.ir.arena.layout import ArenaFormatError, BufferLike, BufferReader
from repro.ir.method import Method
from repro.ir.program import Program
from repro.ir.types import OBJECT_TYPE_NAME, MethodSignature, TypeHierarchy

#: Every integer-column section a valid arena carries, bound eagerly at
#: attach (each binding is an index lookup plus a memoryview cast).
_INT_SECTIONS = (
    "str_offsets",
    "type_name", "type_super", "type_flags",
    "type_ifaces_ptr", "type_ifaces_val",
    "type_fields_ptr", "type_sigs_ptr",
    "field_class", "field_name", "field_type",
    "sig_class", "sig_name", "sig_return", "sig_static",
    "sig_params_ptr", "sig_params_val",
    "method_name",
    "method_sig_class", "method_sig_name", "method_sig_return",
    "method_sig_static", "method_sig_params_ptr", "method_sig_params_val",
    "method_never_returns", "method_instr_count",
    "method_flow_lo", "method_flow_hi",
    "method_pred_ptr", "method_pred_val",
    "method_param_ptr", "method_param_val",
    "method_ret_ptr", "method_ret_val",
    "method_inv_ptr", "method_inv_val",
    "method_alloc_ptr", "method_alloc_val",
    "method_body_ptr", "method_br_ptr",
    "br_kind", "br_then", "br_else", "br_block",
    "br_then_label", "br_else_label", "br_is_instanceof",
    "br_val_name", "br_val_type", "br_type_name", "br_negated",
    "br_op", "br_left_name", "br_left_type", "br_right_name", "br_right_type",
    "entry_points",
    "flow_kind", "flow_label", "flow_method", "flow_aux1", "flow_aux2",
    "use_ptr", "use_val", "obs_ptr", "obs_val",
    "ptgt_ptr", "ptgt_val", "pin_ptr", "pin_val",
    "const_kind", "const_int", "const_type",
    "cs_kind", "cs_method_name", "cs_target_class",
    "cs_result_name", "cs_result_type", "cs_recv_name", "cs_recv_type",
    "cs_args_ptr", "cs_args_name", "cs_args_type",
    "inv_args_ptr", "inv_args_val",
)


class ProgramArena:
    """Typed-column view over one frozen program buffer."""

    if TYPE_CHECKING:
        # The integer columns of _INT_SECTIONS are bound by setattr below.
        def __getattr__(self, name: str) -> memoryview: ...

    def __init__(self, buffer: BufferLike) -> None:
        reader = BufferReader(buffer)
        self.reader = reader
        for name in _INT_SECTIONS:
            setattr(self, name, reader.ints(name))
        self.str_blob = reader.bytes_("str_blob")
        self.body_blob = reader.bytes_("body_blob")
        self.fingerprint_blob = reader.bytes_("fingerprint_blob")
        self._strings: List[Optional[str]] = [None] * (len(self.str_offsets) - 1)
        self._fingerprint = None
        self._name_to_mid: Optional[Dict[str, int]] = None
        self._field_fids: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------ #
    # Table sizes
    # ------------------------------------------------------------------ #
    @property
    def num_types(self) -> int:
        return len(self.type_name)

    @property
    def num_fields(self) -> int:
        return len(self.field_name)

    @property
    def num_methods(self) -> int:
        return len(self.method_name)

    @property
    def num_flows(self) -> int:
        return len(self.flow_kind)

    def to_bytes(self) -> bytes:
        """The serialized buffer this arena reads from (a copy).

        Lets a consumer holding only an attached arena persist it again —
        e.g. the service spilling an arena-backed session back into the
        program store — without re-freezing anything.
        """
        return bytes(self.reader.raw)

    # ------------------------------------------------------------------ #
    # Strings
    # ------------------------------------------------------------------ #
    def string(self, sid: int) -> str:
        """Decode (and memoize) string ``sid`` from the UTF-8 blob."""
        text = self._strings[sid]
        if text is None:
            text = str(
                self.str_blob[self.str_offsets[sid]:self.str_offsets[sid + 1]],
                "utf-8")
            self._strings[sid] = text
        return text

    def opt_string(self, sid: int) -> Optional[str]:
        return None if sid == schema.NONE_ID else self.string(sid)

    # ------------------------------------------------------------------ #
    # Decoded views
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self):
        """The :class:`ProgramFingerprint` stamped at freeze time."""
        if self._fingerprint is None:
            self._fingerprint = pickle.loads(self.fingerprint_blob)
        return self._fingerprint

    def qualified_name(self, mid: int) -> str:
        return self.string(self.method_name[mid])

    def mid_of(self, qualified_name: str) -> Optional[int]:
        """The method id of a qualified name, or ``None``."""
        if self._name_to_mid is None:
            self._name_to_mid = {
                self.qualified_name(mid): mid for mid in range(self.num_methods)}
        return self._name_to_mid.get(qualified_name)

    def field_fid(self, qualified_field_name: str) -> Optional[int]:
        """The flow id of a declared field (fids ``1..num_fields``)."""
        if self._field_fids is None:
            self._field_fids = {
                f"{self.string(self.field_class[row])}."
                f"{self.string(self.field_name[row])}": 1 + row
                for row in range(self.num_fields)}
        return self._field_fids.get(qualified_field_name)

    def method_signature(self, mid: int) -> MethodSignature:
        lo = self.method_sig_params_ptr[mid]
        hi = self.method_sig_params_ptr[mid + 1]
        return MethodSignature(
            declaring_class=self.string(self.method_sig_class[mid]),
            name=self.string(self.method_sig_name[mid]),
            param_types=tuple(
                self.string(sid) for sid in self.method_sig_params_val[lo:hi]),
            return_type=self.string(self.method_sig_return[mid]),
            is_static=bool(self.method_sig_static[mid]),
        )

    def method_blocks(self, mid: int) -> list:
        """Thaw one method body (independent per-method pickles)."""
        blob = self.body_blob[
            self.method_body_ptr[mid]:self.method_body_ptr[mid + 1]]
        return pickle.loads(blob)

    def allocation_sites(self, mid: int) -> Tuple[str, ...]:
        lo = self.method_alloc_ptr[mid]
        hi = self.method_alloc_ptr[mid + 1]
        return tuple(self.string(sid) for sid in self.method_alloc_val[lo:hi])

    def entry_point_names(self) -> List[str]:
        return [self.string(sid) for sid in self.entry_points]

    def build_hierarchy(self) -> TypeHierarchy:
        """Rebuild a real :class:`TypeHierarchy` from the flat type tables."""
        hierarchy = TypeHierarchy()
        for row in range(self.num_types):
            name = self.string(self.type_name[row])
            if name == OBJECT_TYPE_NAME:
                cls = hierarchy.get(name)
            else:
                flags = self.type_flags[row]
                ilo = self.type_ifaces_ptr[row]
                ihi = self.type_ifaces_ptr[row + 1]
                cls = hierarchy.declare_class(
                    name,
                    superclass=self.opt_string(self.type_super[row]),
                    interfaces=tuple(
                        self.string(sid)
                        for sid in self.type_ifaces_val[ilo:ihi]),
                    is_interface=bool(flags & schema.TYPE_FLAG_INTERFACE),
                    is_abstract=bool(flags & schema.TYPE_FLAG_ABSTRACT),
                )
            for field_row in range(self.type_fields_ptr[row],
                                   self.type_fields_ptr[row + 1]):
                cls.declare_field(
                    self.string(self.field_name[field_row]),
                    self.string(self.field_type[field_row]))
            for sig_row in range(self.type_sigs_ptr[row],
                                 self.type_sigs_ptr[row + 1]):
                plo = self.sig_params_ptr[sig_row]
                phi = self.sig_params_ptr[sig_row + 1]
                cls.declare_method(MethodSignature(
                    declaring_class=self.string(self.sig_class[sig_row]),
                    name=self.string(self.sig_name[sig_row]),
                    param_types=tuple(
                        self.string(sid)
                        for sid in self.sig_params_val[plo:phi]),
                    return_type=self.string(self.sig_return[sig_row]),
                    is_static=bool(self.sig_static[sig_row]),
                ))
        return hierarchy


def _plain_method(signature: MethodSignature, blocks: list,
                  never_returns: bool) -> Method:
    return Method(signature=signature, blocks=blocks,
                  never_returns=never_returns)


class ArenaMethod(Method):
    """A :class:`Method` whose body stays frozen until someone reads it.

    ``signature``/``never_returns`` come from integer columns at attach;
    ``blocks`` unpickles this method's private body blob on first access
    and ``instruction_count`` answers from a column without thawing.
    Pickling an :class:`ArenaMethod` produces a plain, self-contained
    :class:`Method`.
    """

    _arena: ProgramArena
    _mid: int

    @staticmethod
    def attach(arena: ProgramArena, mid: int,
               signature: Optional[MethodSignature] = None) -> "ArenaMethod":
        method = object.__new__(ArenaMethod)
        method.signature = signature or arena.method_signature(mid)
        method.never_returns = bool(arena.method_never_returns[mid])
        method._arena = arena
        method._mid = mid
        method._blocks = None
        return method

    @property  # type: ignore[override]
    def blocks(self) -> list:
        if self._blocks is None:
            self._blocks = self._arena.method_blocks(self._mid)
        return self._blocks

    @property
    def instruction_count(self) -> int:
        return int(self._arena.method_instr_count[self._mid])

    def __reduce__(self):
        return (_plain_method, (self.signature, self.blocks, self.never_returns))


def _signature_for(arena: ProgramArena, mid: int,
                   hierarchy: TypeHierarchy) -> MethodSignature:
    """Reuse the hierarchy's declared signature object when it exists."""
    signature = arena.method_signature(mid)
    if signature.declaring_class in hierarchy:
        declared = hierarchy.get(signature.declaring_class).declared_methods.get(
            signature.name)
        if declared == signature:
            return declared
    return signature


class LazyMethodMap(Mapping):
    """Read-only ``qualified name -> ArenaMethod`` mapping over an arena."""

    def __init__(self, arena: ProgramArena, hierarchy: TypeHierarchy) -> None:
        self._arena = arena
        self._hierarchy = hierarchy
        self._names = [arena.qualified_name(mid)
                       for mid in range(arena.num_methods)]
        self._cache: Dict[str, ArenaMethod] = {}

    def __getitem__(self, name: str) -> ArenaMethod:
        method = self._cache.get(name)
        if method is None:
            mid = self._arena.mid_of(name)
            if mid is None:
                raise KeyError(name)
            method = ArenaMethod.attach(
                self._arena, mid,
                _signature_for(self._arena, mid, self._hierarchy))
            self._cache[name] = method
        return method

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __reduce__(self):
        # Pickling thaws everything: the copy must outlive the buffer.
        return (dict, (dict(self),))


class ArenaProgram(Program):
    """A :class:`Program` façade over an attached arena (read-only)."""

    def __init__(self, arena: ProgramArena) -> None:
        hierarchy = arena.build_hierarchy()
        super().__init__(
            hierarchy=hierarchy,
            methods=LazyMethodMap(arena, hierarchy),
            entry_points=arena.entry_point_names(),
        )
        self.arena = arena

    @cached_property
    def allocation_site_index(self) -> Dict[str, Tuple[str, ...]]:
        """Qualified method name -> types NEW'd in its body (frozen order)."""
        arena = self.arena
        return {arena.qualified_name(mid): arena.allocation_sites(mid)
                for mid in range(arena.num_methods)}

    @property
    def program_fingerprint(self):
        return self.arena.fingerprint


def open_program(buffer: BufferLike) -> ArenaProgram:
    """Attach a frozen buffer as a lazily-decoded read-only program."""
    return ArenaProgram(ProgramArena(buffer))


def thaw(source) -> Program:
    """Fully decode an arena (or buffer) back into a plain mutable Program."""
    arena = source if isinstance(source, ProgramArena) else ProgramArena(source)
    hierarchy = arena.build_hierarchy()
    program = Program(hierarchy=hierarchy)
    for mid in range(arena.num_methods):
        program.add_method(Method(
            signature=_signature_for(arena, mid, hierarchy),
            blocks=arena.method_blocks(mid),
            never_returns=bool(arena.method_never_returns[mid]),
        ))
    for name in arena.entry_point_names():
        program.add_entry_point(name)
    return program


__all__ = [
    "ArenaFormatError",
    "ArenaMethod",
    "ArenaProgram",
    "LazyMethodMap",
    "ProgramArena",
    "open_program",
    "thaw",
]
