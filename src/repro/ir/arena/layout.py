"""The arena's physical layout: named sections in one contiguous buffer.

An arena is a *single* buffer so that engine workers can attach it with one
``mmap`` and read every table through zero-copy ``memoryview`` casts — no
per-worker unpickle, no object graph to rebuild.  The buffer is a sequence
of named sections of two kinds:

* **integer columns** — ``array('q')`` payloads (little-endian signed 64-bit
  on every platform CPython supports) exposed as ``memoryview.cast('q')``;
  these carry the id tables and CSR edge ranges of the arena schema;
* **byte blobs** — opaque payloads (the UTF-8 string table, the per-method
  pickled bodies, the pickled program fingerprint) that are only decoded
  lazily, if ever.

Layout::

    +-------------------------------+
    | magic  "RPRA"        (4 B)    |
    | version              (u32 LE) |
    | index offset         (u64 LE) |
    | index length         (u64 LE) |
    +-------------------------------+
    | section payloads, 8-aligned   |
    |  ...                          |
    +-------------------------------+
    | index: pickled                |
    |   {name: (offset, len, kind)} |
    +-------------------------------+

The index is tiny (one entry per section, a few dozen total) and is the
only thing decoded at attach time; everything else stays raw bytes until a
table is actually indexed into.  Integers in the header are little-endian
regardless of host order, and integer columns are rejected at attach time
if the host's ``array('q')`` item size is not 8 bytes.
"""

from __future__ import annotations

import pickle
import struct
from array import array
from typing import Dict, Tuple, Union

MAGIC = b"RPRA"

#: Bumped whenever the schema (section set or column meaning) changes;
#: attach refuses other versions so stale buffers read as misses upstream.
ARENA_VERSION = 1

_HEADER = struct.Struct("<4sIQQ")

_KIND_INTS = 0
_KIND_BYTES = 1


class ArenaFormatError(ValueError):
    """A buffer that is not (or no longer) a readable arena."""


def _check_int_width() -> None:
    if array("q").itemsize != 8:
        raise ArenaFormatError(
            "this platform's array('q') is not 8 bytes wide; "
            "arena buffers are not portable to it")


class BufferWriter:
    """Accumulates named sections and serializes them into one buffer."""

    def __init__(self) -> None:
        self._sections: Dict[str, Tuple[int, bytes]] = {}

    def add_ints(self, name: str, values) -> None:
        """Add an integer column (stored as a little-endian ``array('q')``)."""
        _check_int_width()
        column = values if isinstance(values, array) else array("q", values)
        if column.typecode != "q":
            raise ArenaFormatError(f"section {name!r}: expected array('q')")
        self._add(name, _KIND_INTS, column.tobytes())

    def add_bytes(self, name: str, blob: bytes) -> None:
        """Add an opaque byte blob section."""
        self._add(name, _KIND_BYTES, bytes(blob))

    def _add(self, name: str, kind: int, payload: bytes) -> None:
        if name in self._sections:
            raise ArenaFormatError(f"section {name!r} written twice")
        self._sections[name] = (kind, payload)

    def to_bytes(self) -> bytes:
        parts = [b"\x00" * _HEADER.size]
        offset = _HEADER.size
        index: Dict[str, Tuple[int, int, int]] = {}
        for name, (kind, payload) in self._sections.items():
            pad = (-offset) % 8
            if pad:
                parts.append(b"\x00" * pad)
                offset += pad
            index[name] = (offset, len(payload), kind)
            parts.append(payload)
            offset += len(payload)
        index_blob = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
        parts.append(index_blob)
        parts[0] = _HEADER.pack(MAGIC, ARENA_VERSION, offset, len(index_blob))
        return b"".join(parts)


class BufferReader:
    """Zero-copy view over a serialized arena buffer (bytes or mmap)."""

    def __init__(self, buffer) -> None:
        self._view = memoryview(buffer)
        if len(self._view) < _HEADER.size:
            raise ArenaFormatError("buffer too short to be an arena")
        magic, version, index_offset, index_length = _HEADER.unpack_from(
            self._view, 0)
        if magic != MAGIC:
            raise ArenaFormatError("bad magic: not an arena buffer")
        if version != ARENA_VERSION:
            raise ArenaFormatError(
                f"unsupported arena version {version} "
                f"(expected {ARENA_VERSION})")
        if index_offset + index_length > len(self._view):
            raise ArenaFormatError("truncated arena buffer")
        try:
            self._index: Dict[str, Tuple[int, int, int]] = pickle.loads(
                self._view[index_offset:index_offset + index_length])
        except Exception as error:  # pickle raises a wide range here
            raise ArenaFormatError(f"unreadable arena index: {error}") from error

    def section_names(self) -> Tuple[str, ...]:
        return tuple(self._index)

    @property
    def raw(self) -> memoryview:
        """The whole serialized buffer (lets an attached arena be re-written)."""
        return self._view

    def _section(self, name: str, kind: int) -> memoryview:
        try:
            offset, length, stored_kind = self._index[name]
        except KeyError:
            raise ArenaFormatError(f"arena has no section {name!r}") from None
        if stored_kind != kind:
            raise ArenaFormatError(f"section {name!r} has the wrong kind")
        if offset + length > len(self._view):
            raise ArenaFormatError(f"section {name!r} is truncated")
        return self._view[offset:offset + length]

    def ints(self, name: str) -> memoryview:
        """An integer column as a ``memoryview`` of signed 64-bit ints."""
        _check_int_width()
        return self._section(name, _KIND_INTS).cast("q")

    def bytes_(self, name: str) -> memoryview:
        """A byte-blob section (decode lazily at the call site)."""
        return self._section(name, _KIND_BYTES)


BufferLike = Union[bytes, bytearray, memoryview]
