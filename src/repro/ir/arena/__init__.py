"""Flat shared-memory program arena (struct-of-arrays IR encoding).

``freeze(program)`` lowers a built program into one contiguous buffer of
integer-id tables; ``open_program(buffer)`` attaches it (zero-copy, lazy
bodies) as a read-only :class:`~repro.ir.arena.program.ArenaProgram`;
``thaw(buffer)`` decodes it back into a plain mutable Program.  See
``docs/architecture.md`` (Arena section) for the layout and id schema.
"""

from repro.ir.arena.freeze import freeze
from repro.ir.arena.layout import ARENA_VERSION, ArenaFormatError, BufferLike
from repro.ir.arena.program import (
    ArenaMethod,
    ArenaProgram,
    LazyMethodMap,
    ProgramArena,
    open_program,
    thaw,
)

__all__ = [
    "ARENA_VERSION",
    "ArenaFormatError",
    "ArenaMethod",
    "ArenaProgram",
    "BufferLike",
    "LazyMethodMap",
    "ProgramArena",
    "freeze",
    "open_program",
    "thaw",
]
