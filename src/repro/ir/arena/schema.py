"""Shared id encodings of the arena schema (enum <-> integer tables).

Both the freeze pass (:mod:`repro.ir.arena.freeze`) and the attach-side
views (:mod:`repro.ir.arena.program`, the arena kernel) need the same
integer encodings for the IR's enums and the flow-kind discriminator.  The
encodings are positional over the enums' declaration order, which is part
of the schema: reordering an enum means bumping
:data:`~repro.ir.arena.layout.ARENA_VERSION`.
"""

from __future__ import annotations

from repro.core.flows import FlowKind
from repro.core.pvpg import BranchKind
from repro.ir.instructions import CompareOp, InvokeKind
from repro.ir.values import ConstKind

# Flow kinds, in FlowKind declaration order.
FLOW_KINDS = tuple(FlowKind)
KIND_INDEX = {kind: index for index, kind in enumerate(FLOW_KINDS)}

K_PRED_ON = KIND_INDEX[FlowKind.PRED_ON]
K_SOURCE = KIND_INDEX[FlowKind.SOURCE]
K_PARAMETER = KIND_INDEX[FlowKind.PARAMETER]
K_PHI = KIND_INDEX[FlowKind.PHI]
K_PHI_PRED = KIND_INDEX[FlowKind.PHI_PRED]
K_FILTER_TYPE = KIND_INDEX[FlowKind.FILTER_TYPE]
K_FILTER_COMPARE = KIND_INDEX[FlowKind.FILTER_COMPARE]
K_LOAD_FIELD = KIND_INDEX[FlowKind.LOAD_FIELD]
K_STORE_FIELD = KIND_INDEX[FlowKind.STORE_FIELD]
K_INVOKE = KIND_INDEX[FlowKind.INVOKE]
K_RETURN = KIND_INDEX[FlowKind.RETURN]
K_FIELD = KIND_INDEX[FlowKind.FIELD]

# IR enums, positionally encoded.
CONST_KINDS = tuple(ConstKind)
CONST_INDEX = {kind: index for index, kind in enumerate(CONST_KINDS)}

INVOKE_KINDS = tuple(InvokeKind)
INVOKE_INDEX = {kind: index for index, kind in enumerate(INVOKE_KINDS)}

COMPARE_OPS = tuple(CompareOp)
OP_INDEX = {op: index for index, op in enumerate(COMPARE_OPS)}

BRANCH_KINDS = tuple(BranchKind)
BRANCH_INDEX = {kind: index for index, kind in enumerate(BRANCH_KINDS)}

# Class flag bits of the ``type_flags`` column.
TYPE_FLAG_INTERFACE = 1
TYPE_FLAG_ABSTRACT = 2

#: Sentinel for "no value" in id columns (string ids, flow ids, rows).
NONE_ID = -1
