"""``freeze(program)``: flatten a built program into one arena buffer.

The freeze pass runs the PVPG builder over *every* method of the program
once (the object solver builds method graphs lazily per reachable method;
freezing all of them up front is a one-time cost paid when the program is
stored) and lowers the resulting object graph into the struct-of-arrays
schema of :mod:`repro.ir.arena.layout`:

* every flow gets a dense integer id (*fid*): fid 0 is ``pred_on``, fids
  ``1..NF`` are the program's declared fields in declaration order, and
  each method owns the contiguous fid range of its flows in registration
  order — so "activate a method" becomes "enable an fid range";
* build-time edges (uses / observers / predicate targets / incoming
  predicates) become CSR ranges over fids.  Edges created *during* a solve
  (field linking, call linking, ``pred_on`` fan-out to activated methods)
  are intentionally absent: the kernel adds them to dynamic side tables,
  exactly as the object solver grows the object graph;
* per-kind flow payloads (constants, call sites, compared operands, ...)
  become integer columns over small auxiliary tables;
* method bodies are pickled *individually* so an attached program can thaw
  one method without touching the rest — and the arena kernel never thaws
  any;
* the whole buffer is stamped with the pickled
  :class:`~repro.ir.delta.ProgramFingerprint` of the source program, so
  attach-side consumers validate against exactly what was frozen.

``filtering_enabled`` of filter flows is *not* encoded: it is a property
of the analysis config, reapplied when flows are inflated, which keeps the
frozen structure config-independent (one arena serves every config).
"""

from __future__ import annotations

import pickle
from array import array
from typing import Dict, List, Optional

from repro.core.flows import Flow, FlowKind
from repro.core.pvpg import MethodPVPG, ProgramPVPG
from repro.core.pvpg_builder import PVPGBuilder
from repro.ir.arena import schema
from repro.ir.arena.layout import BufferWriter
from repro.ir.delta import ProgramFingerprint
from repro.ir.instructions import (
    Assign,
    Condition,
    InstanceOfCondition,
)
from repro.ir.program import Program
from repro.ir.types import FieldDecl
from repro.ir.values import ConstantExpr, ConstKind


class _FreezeConfig:
    """Build-time stand-in config: filters on, structure config-independent."""

    filter_type_checks = True
    filter_comparisons = True


class _Strings:
    """Interning UTF-8 string table (``str_offsets`` + ``str_blob``)."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._parts: List[bytes] = []
        self._offsets = array("q", [0])
        self._size = 0

    def intern(self, text: str) -> int:
        sid = self._ids.get(text)
        if sid is None:
            sid = len(self._ids)
            self._ids[text] = sid
            encoded = text.encode("utf-8")
            self._parts.append(encoded)
            self._size += len(encoded)
            self._offsets.append(self._size)
        return sid

    def opt(self, text: Optional[str]) -> int:
        return schema.NONE_ID if text is None else self.intern(text)

    def write(self, writer: BufferWriter) -> None:
        writer.add_ints("str_offsets", self._offsets)
        writer.add_bytes("str_blob", b"".join(self._parts))


def _add_csr(writer: BufferWriter, ptr_name: str, val_name: str,
             rows: List[List[int]]) -> None:
    ptr = array("q", [0])
    val = array("q")
    total = 0
    for row in rows:
        total += len(row)
        ptr.append(total)
        val.extend(row)
    writer.add_ints(ptr_name, ptr)
    writer.add_ints(val_name, val)


def _allocation_sites(method) -> List[str]:
    """Types NEW'd in a method body, deduplicated in order of appearance."""
    seen: Dict[str, None] = {}
    for statement in method.iter_statements():
        if isinstance(statement, Assign) and statement.expr.kind is ConstKind.NEW:
            seen.setdefault(statement.expr.type_name)
    return list(seen)


def freeze(program: Program) -> bytes:
    """Flatten ``program`` into a single serialized arena buffer."""
    strings = _Strings()
    writer = BufferWriter()
    fingerprint = ProgramFingerprint.of(program)

    # ------------------------------------------------------------------ #
    # Type hierarchy, signature, and field tables
    # ------------------------------------------------------------------ #
    field_ids: Dict[str, int] = {}  # qualified field name -> field row
    field_decls: List[FieldDecl] = []
    type_name = array("q")
    type_super = array("q")
    type_flags = array("q")
    iface_rows: List[List[int]] = []
    fields_ptr = array("q", [0])
    sigs_ptr = array("q", [0])
    field_class = array("q")
    field_name = array("q")
    field_type = array("q")
    sig_class = array("q")
    sig_name = array("q")
    sig_return = array("q")
    sig_static = array("q")
    sig_param_rows: List[List[int]] = []

    for cls in program.hierarchy:
        type_name.append(strings.intern(cls.name))
        type_super.append(strings.opt(cls.superclass))
        type_flags.append(
            (schema.TYPE_FLAG_INTERFACE if cls.is_interface else 0)
            | (schema.TYPE_FLAG_ABSTRACT if cls.is_abstract else 0))
        iface_rows.append([strings.intern(name) for name in cls.interfaces])
        for decl in cls.fields.values():
            field_ids[decl.qualified_name] = len(field_decls)
            field_decls.append(decl)
            field_class.append(strings.intern(decl.declaring_class))
            field_name.append(strings.intern(decl.name))
            field_type.append(strings.intern(decl.declared_type))
        fields_ptr.append(len(field_decls))
        for sig in cls.declared_methods.values():
            sig_class.append(strings.intern(sig.declaring_class))
            sig_name.append(strings.intern(sig.name))
            sig_return.append(strings.intern(sig.return_type))
            sig_static.append(1 if sig.is_static else 0)
            sig_param_rows.append([strings.intern(p) for p in sig.param_types])
        sigs_ptr.append(len(sig_class))

    writer.add_ints("type_name", type_name)
    writer.add_ints("type_super", type_super)
    writer.add_ints("type_flags", type_flags)
    _add_csr(writer, "type_ifaces_ptr", "type_ifaces_val", iface_rows)
    writer.add_ints("type_fields_ptr", fields_ptr)
    writer.add_ints("type_sigs_ptr", sigs_ptr)
    writer.add_ints("field_class", field_class)
    writer.add_ints("field_name", field_name)
    writer.add_ints("field_type", field_type)
    writer.add_ints("sig_class", sig_class)
    writer.add_ints("sig_name", sig_name)
    writer.add_ints("sig_return", sig_return)
    writer.add_ints("sig_static", sig_static)
    _add_csr(writer, "sig_params_ptr", "sig_params_val", sig_param_rows)

    # ------------------------------------------------------------------ #
    # Build every method's PVPG within one shared program graph
    # ------------------------------------------------------------------ #
    pvpg = ProgramPVPG()
    builder = PVPGBuilder(program, pvpg, _FreezeConfig())
    graphs: List[MethodPVPG] = []
    pred_rows_flows: List[List[Flow]] = []  # pred_on targets per method
    for method in program.methods.values():
        before = len(pvpg.pred_on.predicate_targets)
        graph = pvpg.add_method_graph(builder.build_method(method))
        graphs.append(graph)
        pred_rows_flows.append(pvpg.pred_on.predicate_targets[before:])

    # Dense flow ids: 0 = pred_on, 1..NF = fields, then per-method ranges.
    fid_of: Dict[int, int] = {pvpg.pred_on.uid: 0}
    num_fields = len(field_decls)
    flow_lo = array("q")
    flow_hi = array("q")
    next_fid = 1 + num_fields
    for graph in graphs:
        flow_lo.append(next_fid)
        for flow in graph.flows:
            fid_of[flow.uid] = next_fid
            next_fid += 1
        flow_hi.append(next_fid)
    num_flows = next_fid

    # ------------------------------------------------------------------ #
    # Method table
    # ------------------------------------------------------------------ #
    method_name = array("q")
    m_sig_class = array("q")
    m_sig_name = array("q")
    m_sig_return = array("q")
    m_sig_static = array("q")
    m_sig_param_rows: List[List[int]] = []
    m_never_returns = array("q")
    m_instr_count = array("q")
    pred_rows: List[List[int]] = []
    param_rows: List[List[int]] = []
    ret_rows: List[List[int]] = []
    inv_rows: List[List[int]] = []
    alloc_rows: List[List[int]] = []
    body_ptr = array("q", [0])
    body_parts: List[bytes] = []
    body_size = 0
    br_ptr = array("q", [0])
    br_count = 0

    branch_cols = {name: array("q") for name in (
        "br_kind", "br_then", "br_else", "br_block",
        "br_then_label", "br_else_label", "br_is_instanceof",
        "br_val_name", "br_val_type", "br_type_name", "br_negated",
        "br_op", "br_left_name", "br_left_type",
        "br_right_name", "br_right_type",
    )}

    for graph, method, pred_targets in zip(
            graphs, program.methods.values(), pred_rows_flows):
        sig = method.signature
        method_name.append(strings.intern(method.qualified_name))
        m_sig_class.append(strings.intern(sig.declaring_class))
        m_sig_name.append(strings.intern(sig.name))
        m_sig_return.append(strings.intern(sig.return_type))
        m_sig_static.append(1 if sig.is_static else 0)
        m_sig_param_rows.append([strings.intern(p) for p in sig.param_types])
        m_never_returns.append(1 if method.never_returns else 0)
        m_instr_count.append(method.instruction_count)
        pred_rows.append([fid_of[f.uid] for f in pred_targets])
        param_rows.append([fid_of[f.uid] for f in graph.parameter_flows])
        ret_rows.append([fid_of[f.uid] for f in graph.return_flows])
        inv_rows.append([fid_of[f.uid] for f in graph.invoke_flows])
        alloc_rows.append(
            [strings.intern(name) for name in _allocation_sites(method)])
        blob = pickle.dumps(method.blocks, protocol=pickle.HIGHEST_PROTOCOL)
        body_parts.append(blob)
        body_size += len(blob)
        body_ptr.append(body_size)

        for record in graph.branch_records:
            instruction = record.instruction
            condition = instruction.condition
            cols = branch_cols
            cols["br_kind"].append(schema.BRANCH_INDEX[record.kind])
            cols["br_then"].append(fid_of[record.then_predicate.uid])
            cols["br_else"].append(fid_of[record.else_predicate.uid])
            cols["br_block"].append(fid_of[record.block_predicate.uid])
            cols["br_then_label"].append(strings.intern(instruction.then_label))
            cols["br_else_label"].append(strings.intern(instruction.else_label))
            if isinstance(condition, InstanceOfCondition):
                cols["br_is_instanceof"].append(1)
                cols["br_val_name"].append(strings.intern(condition.value.name))
                cols["br_val_type"].append(
                    strings.opt(condition.value.declared_type))
                cols["br_type_name"].append(strings.intern(condition.type_name))
                cols["br_negated"].append(1 if condition.negated else 0)
                for name in ("br_op", "br_left_name", "br_left_type",
                             "br_right_name", "br_right_type"):
                    cols[name].append(schema.NONE_ID)
            else:
                assert isinstance(condition, Condition)
                cols["br_is_instanceof"].append(0)
                for name in ("br_val_name", "br_val_type",
                             "br_type_name", "br_negated"):
                    cols[name].append(schema.NONE_ID)
                cols["br_op"].append(schema.OP_INDEX[condition.op])
                cols["br_left_name"].append(strings.intern(condition.left.name))
                cols["br_left_type"].append(
                    strings.opt(condition.left.declared_type))
                cols["br_right_name"].append(strings.intern(condition.right.name))
                cols["br_right_type"].append(
                    strings.opt(condition.right.declared_type))
            br_count += 1
        br_ptr.append(br_count)

    writer.add_ints("method_name", method_name)
    writer.add_ints("method_sig_class", m_sig_class)
    writer.add_ints("method_sig_name", m_sig_name)
    writer.add_ints("method_sig_return", m_sig_return)
    writer.add_ints("method_sig_static", m_sig_static)
    _add_csr(writer, "method_sig_params_ptr", "method_sig_params_val",
             m_sig_param_rows)
    writer.add_ints("method_never_returns", m_never_returns)
    writer.add_ints("method_instr_count", m_instr_count)
    writer.add_ints("method_flow_lo", flow_lo)
    writer.add_ints("method_flow_hi", flow_hi)
    _add_csr(writer, "method_pred_ptr", "method_pred_val", pred_rows)
    _add_csr(writer, "method_param_ptr", "method_param_val", param_rows)
    _add_csr(writer, "method_ret_ptr", "method_ret_val", ret_rows)
    _add_csr(writer, "method_inv_ptr", "method_inv_val", inv_rows)
    _add_csr(writer, "method_alloc_ptr", "method_alloc_val", alloc_rows)
    writer.add_ints("method_body_ptr", body_ptr)
    writer.add_bytes("body_blob", b"".join(body_parts))
    writer.add_ints("method_br_ptr", br_ptr)
    for name, column in branch_cols.items():
        writer.add_ints(name, column)

    writer.add_ints(
        "entry_points",
        array("q", [strings.intern(name) for name in program.entry_points]))

    # ------------------------------------------------------------------ #
    # Flow table: kind/label/method/aux columns + edge CSRs
    # ------------------------------------------------------------------ #
    flow_kind = array("q")
    flow_label = array("q")
    flow_method = array("q")
    flow_aux1 = array("q")
    flow_aux2 = array("q")
    use_rows: List[List[int]] = [[] for _ in range(num_flows)]
    obs_rows: List[List[int]] = [[] for _ in range(num_flows)]
    ptgt_rows: List[List[int]] = [[] for _ in range(num_flows)]
    pin_rows: List[List[int]] = [[] for _ in range(num_flows)]

    const_ids: Dict[ConstantExpr, int] = {}
    const_kind = array("q")
    const_int = array("q")
    const_type = array("q")

    cs_cols = {name: array("q") for name in (
        "cs_kind", "cs_method_name", "cs_target_class",
        "cs_result_name", "cs_result_type", "cs_recv_name", "cs_recv_type",
    )}
    cs_arg_name_rows: List[List[int]] = []
    cs_arg_type_rows: List[List[int]] = []
    inv_arg_rows: List[List[int]] = []

    def const_row(expr: ConstantExpr) -> int:
        row = const_ids.get(expr)
        if row is None:
            row = len(const_ids)
            const_ids[expr] = row
            const_kind.append(schema.CONST_INDEX[expr.kind])
            const_int.append(expr.int_value if expr.kind is ConstKind.INT else 0)
            const_type.append(strings.opt(expr.type_name))
        return row

    def emit_flow(flow: Flow, method_id: int) -> None:
        kind = flow.kind
        flow_kind.append(schema.KIND_INDEX[kind])
        flow_label.append(strings.intern(flow.label))
        flow_method.append(method_id)
        aux1 = aux2 = schema.NONE_ID
        if kind is FlowKind.SOURCE:
            aux1 = const_row(flow.expr)
        elif kind is FlowKind.PARAMETER:
            aux1 = flow.index
            aux2 = strings.opt(flow.declared_type)
        elif kind is FlowKind.FILTER_TYPE:
            aux1 = strings.intern(flow.type_name)
            aux2 = 1 if flow.negated else 0
        elif kind is FlowKind.FILTER_COMPARE:
            aux1 = schema.OP_INDEX[flow.op]
            aux2 = (schema.NONE_ID if flow.observed is None
                    else fid_of[flow.observed.uid])
        elif kind in (FlowKind.LOAD_FIELD, FlowKind.STORE_FIELD):
            aux1 = strings.intern(flow.field_name)
            aux2 = fid_of[flow.receiver.uid]
        elif kind is FlowKind.INVOKE:
            invoke = flow.invoke
            aux1 = len(cs_cols["cs_kind"])
            aux2 = (schema.NONE_ID if flow.receiver is None
                    else fid_of[flow.receiver.uid])
            cs_cols["cs_kind"].append(schema.INVOKE_INDEX[invoke.kind])
            cs_cols["cs_method_name"].append(strings.intern(invoke.method_name))
            cs_cols["cs_target_class"].append(strings.opt(invoke.target_class))
            if invoke.result is None:
                cs_cols["cs_result_name"].append(schema.NONE_ID)
                cs_cols["cs_result_type"].append(schema.NONE_ID)
            else:
                cs_cols["cs_result_name"].append(
                    strings.intern(invoke.result.name))
                cs_cols["cs_result_type"].append(
                    strings.opt(invoke.result.declared_type))
            if invoke.receiver is None:
                cs_cols["cs_recv_name"].append(schema.NONE_ID)
                cs_cols["cs_recv_type"].append(schema.NONE_ID)
            else:
                cs_cols["cs_recv_name"].append(
                    strings.intern(invoke.receiver.name))
                cs_cols["cs_recv_type"].append(
                    strings.opt(invoke.receiver.declared_type))
            cs_arg_name_rows.append(
                [strings.intern(value.name) for value in invoke.arguments])
            cs_arg_type_rows.append(
                [strings.opt(value.declared_type) for value in invoke.arguments])
            inv_arg_rows.append([fid_of[f.uid] for f in flow.argument_flows])
        elif kind is FlowKind.RETURN:
            aux1 = 1 if flow.artificial_on_enable is not None else 0
        flow_aux1.append(aux1)
        flow_aux2.append(aux2)

        fid = fid_of[flow.uid]
        use_rows[fid] = [fid_of[t.uid] for t in flow.uses]
        obs_rows[fid] = [fid_of[t.uid] for t in flow.observers]
        if kind is not FlowKind.PRED_ON:
            # pred_on's build-time fan-out lives in method_pred_val; the
            # kernel replays it per method activation, in activation order.
            ptgt_rows[fid] = [fid_of[t.uid] for t in flow.predicate_targets]
        pin_rows[fid] = [fid_of[p.uid] for p in flow.predicates]

    emit_flow(pvpg.pred_on, schema.NONE_ID)
    for index, decl in enumerate(field_decls):
        flow_kind.append(schema.K_FIELD)
        flow_label.append(strings.intern(decl.qualified_name))
        flow_method.append(schema.NONE_ID)
        flow_aux1.append(index)
        flow_aux2.append(schema.NONE_ID)
    for method_id, graph in enumerate(graphs):
        for flow in graph.flows:
            emit_flow(flow, method_id)

    writer.add_ints("flow_kind", flow_kind)
    writer.add_ints("flow_label", flow_label)
    writer.add_ints("flow_method", flow_method)
    writer.add_ints("flow_aux1", flow_aux1)
    writer.add_ints("flow_aux2", flow_aux2)
    _add_csr(writer, "use_ptr", "use_val", use_rows)
    _add_csr(writer, "obs_ptr", "obs_val", obs_rows)
    _add_csr(writer, "ptgt_ptr", "ptgt_val", ptgt_rows)
    _add_csr(writer, "pin_ptr", "pin_val", pin_rows)

    writer.add_ints("const_kind", const_kind)
    writer.add_ints("const_int", const_int)
    writer.add_ints("const_type", const_type)
    for name, column in cs_cols.items():
        writer.add_ints(name, column)
    _add_csr(writer, "cs_args_ptr", "cs_args_name", cs_arg_name_rows)
    # cs_args_type shares cs_args_ptr (one name and one type per argument).
    writer.add_ints(
        "cs_args_type",
        array("q", [sid for row in cs_arg_type_rows for sid in row]))
    _add_csr(writer, "inv_args_ptr", "inv_args_val", inv_arg_rows)

    writer.add_bytes(
        "fingerprint_blob",
        pickle.dumps(fingerprint, protocol=pickle.HIGHEST_PROTOCOL))

    strings.write(writer)
    return writer.to_bytes()
