"""Whole programs: a type hierarchy, a set of methods, and entry points."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.ir.method import Method
from repro.ir.types import MethodSignature, TypeHierarchy


class ProgramError(Exception):
    """Raised for structurally invalid programs (duplicate methods, bad roots)."""


@dataclass
class Program:
    """A closed-world program.

    ``methods`` maps qualified names (``Class.method``) to method bodies.
    ``entry_points`` lists the root methods from which reachability starts
    (the ``main`` method of an application, plus any reflection roots added by
    :mod:`repro.image.reflection`).
    """

    hierarchy: TypeHierarchy = field(default_factory=TypeHierarchy)
    methods: Dict[str, Method] = field(default_factory=dict)
    entry_points: List[str] = field(default_factory=list)

    def add_method(self, method: Method) -> Method:
        name = method.qualified_name
        if name in self.methods:
            raise ProgramError(f"method {name!r} defined twice")
        self.methods[name] = method
        declaring = method.signature.declaring_class
        if declaring in self.hierarchy:
            self.hierarchy.get(declaring).declare_method(method.signature)
        return method

    def add_entry_point(self, qualified_name: str) -> None:
        if qualified_name not in self.methods:
            raise ProgramError(f"entry point {qualified_name!r} is not a defined method")
        if qualified_name not in self.entry_points:
            self.entry_points.append(qualified_name)

    def method(self, qualified_name: str) -> Method:
        try:
            return self.methods[qualified_name]
        except KeyError:
            raise ProgramError(f"unknown method {qualified_name!r}") from None

    def has_method(self, qualified_name: str) -> bool:
        return qualified_name in self.methods

    def method_for_signature(self, signature: MethodSignature) -> Optional[Method]:
        return self.methods.get(signature.qualified_name)

    def __iter__(self) -> Iterator[Method]:
        return iter(self.methods.values())

    def __len__(self) -> int:
        return len(self.methods)

    @property
    def total_instruction_count(self) -> int:
        return sum(method.instruction_count for method in self.methods.values())

    def summary(self) -> str:
        return (
            f"Program with {len(self.hierarchy.class_names)} classes, "
            f"{len(self.methods)} methods, {len(self.entry_points)} entry points"
        )
