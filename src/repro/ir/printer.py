"""Textual pretty-printer for IR methods and programs."""

from __future__ import annotations

from typing import List

from repro.ir.method import Method
from repro.ir.program import Program


def format_method(method: Method) -> str:
    """Render a method as readable text (one block per paragraph)."""
    signature = method.signature
    params = ", ".join(signature.param_types)
    static = "static " if signature.is_static else ""
    lines: List[str] = [
        f"{static}{signature.return_type} {signature.qualified_name}({params}) {{"
    ]
    for block in method.blocks:
        lines.append(f"  {block.begin}")
        for statement in block.statements:
            lines.append(f"    {statement}")
        if block.end is not None:
            lines.append(f"    {block.end}")
    lines.append("}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render a whole program: class hierarchy followed by every method."""
    lines: List[str] = ["// " + program.summary()]
    for cls in program.hierarchy:
        if cls.name == "Object":
            continue
        kind = "interface" if cls.is_interface else "class"
        extends = f" extends {cls.superclass}" if cls.superclass else ""
        implements = (
            " implements " + ", ".join(cls.interfaces) if cls.interfaces else ""
        )
        lines.append(f"{kind} {cls.name}{extends}{implements} {{")
        for field in cls.fields.values():
            lines.append(f"  {field.declared_type} {field.name};")
        lines.append("}")
    for name in sorted(program.methods):
        lines.append("")
        lines.append(format_method(program.methods[name]))
    return "\n".join(lines)
