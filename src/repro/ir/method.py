"""Method bodies: an ordered list of basic blocks plus the signature."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.ir.blocks import BasicBlock
from repro.ir.instructions import Invoke, Return, Start
from repro.ir.types import MethodSignature
from repro.ir.values import Value


@dataclass
class Method:
    """A method with a body.

    The first block must begin with ``start(p0, ..., pn)``.  Blocks are stored
    in the order they were created, which for bodies produced by the builder
    and the frontend is a valid reverse postorder of the control-flow graph.
    """

    signature: MethodSignature
    blocks: List[BasicBlock] = field(default_factory=list)
    #: Optional marker for methods that provably never return normally
    #: (e.g. ``Assert.fail``-style helpers); used only by workload generators,
    #: the analysis discovers non-returning methods on its own.
    never_returns: bool = False

    @property
    def qualified_name(self) -> str:
        return self.signature.qualified_name

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"method {self.qualified_name} has no blocks")
        return self.blocks[0]

    @property
    def parameters(self) -> List[Value]:
        begin = self.entry_block.begin
        if not isinstance(begin, Start):
            raise ValueError(
                f"method {self.qualified_name} does not begin with a start instruction"
            )
        return list(begin.params)

    def block_by_name(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name!r} in {self.qualified_name}")

    def block_map(self) -> Dict[str, BasicBlock]:
        return {block.name: block for block in self.blocks}

    def iter_statements(self) -> Iterator:
        for block in self.blocks:
            yield from block.statements

    def iter_invokes(self) -> Iterator[Invoke]:
        for statement in self.iter_statements():
            if isinstance(statement, Invoke):
                yield statement

    def iter_returns(self) -> Iterator[Return]:
        for block in self.blocks:
            if isinstance(block.end, Return):
                yield block.end

    @property
    def instruction_count(self) -> int:
        """Number of statements plus block ends; used by the binary-size model."""
        count = 0
        for block in self.blocks:
            count += len(block.statements)
            if block.end is not None:
                count += 1
        return count

    def __str__(self) -> str:
        header = f"method {self.qualified_name}"
        return header + "\n" + "\n".join(str(b) for b in self.blocks)
