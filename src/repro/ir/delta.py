"""Program deltas: additive edit scripts over closed-world programs.

The analysis core can resume a solved fixpoint instead of starting cold
(:mod:`repro.core.state`), but warm resumption is only sound when the
program changed *monotonically*: everything the old solve saw must still be
there, unchanged, and the new parts must not alter how the old parts
resolve.  This module owns both halves of that contract:

* :class:`ProgramDelta` is an *edit script* — new classes, fields, methods,
  entry points, and call sites — built with the same fluent surface as
  :class:`~repro.ir.builder.ProgramBuilder` (so the workload pattern
  generators can write whole modules straight into a delta) and applied to
  an existing :class:`~repro.ir.program.Program` in place;
* :class:`ProgramFingerprint` captures a program's structure (class shapes,
  method-body digests, entry points) so that two arbitrary programs — or a
  snapshot and the program it is being resumed against — can be diffed into
  a :class:`FingerprintDelta` whose ``violations`` list the reasons warm
  resumption would be unsound.

Monotonicity, concretely
------------------------
A delta is *monotone* for a program when a warm solve resumed after applying
it must reach the same fixpoint as a cold solve of the edited program.  The
solver's lattice argument (states only grow, flows only enable, edges are
only added) makes additions safe, but three kinds of edits silently change
what the *old* program means and are therefore rejected:

* **removals or body edits** — anything the old solve already propagated
  could become stale;
* **new methods on pre-existing classes** — virtual or static resolution
  for receiver types the old solve already linked could now land on the new
  method, and the solver never revisits a linked call site unless its
  receiver state grows;
* **new fields on pre-existing classes** — field lookup walks the
  superclass chain to the *first* declaration, so a new declaration can
  shadow the one existing load/store flows already linked against.

New classes (including subclasses of existing ones, with their own methods,
fields, and overrides), new entry points, and new call sites inside new
methods are all monotone: they only ever reach old flows through value
states that grow, which is exactly what the solver's re-linking machinery
watches.  Non-monotone deltas are still *appliable* (they are ordinary
valid edits); callers that wanted to resume fall back to a cold solve —
loudly — instead.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.builder import MethodBuilder
from repro.ir.method import Method
from repro.ir.printer import format_method
from repro.ir.program import Program
from repro.ir.types import MethodSignature

_DIGEST_ABBREV = 16


class DeltaError(Exception):
    """A structurally invalid delta (redeclarations, unknown classes, ...)."""


class NonMonotoneDeltaError(DeltaError):
    """A delta rejected because warm resumption over it would be unsound."""

    def __init__(self, reasons: Sequence[str]):
        super().__init__(
            "delta is not monotone: " + "; ".join(reasons))
        self.reasons: Tuple[str, ...] = tuple(reasons)


# --------------------------------------------------------------------------- #
# Fingerprints: diffing two programs (or a snapshot against a program)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ClassShape:
    """The resolution-relevant shape of one class declaration."""

    superclass: Optional[str]
    interfaces: Tuple[str, ...]
    is_interface: bool
    is_abstract: bool
    fields: Tuple[Tuple[str, str], ...]  # (field name, declared type), sorted


def _method_digest(method: Method) -> str:
    """A stable digest of one method body (the printed text, hashed)."""
    rendered = format_method(method)
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()[:_DIGEST_ABBREV]


@dataclass(frozen=True)
class ProgramFingerprint:
    """Everything a warm resume needs to know about the program it solved.

    Small (names, shapes, and digests — never bodies), deterministic, and
    picklable, so solver-state snapshots can carry one and validate
    themselves against whatever program they are resumed over.
    """

    classes: Tuple[Tuple[str, ClassShape], ...]
    methods: Tuple[Tuple[str, str], ...]  # (qualified name, body digest)
    entry_points: Tuple[str, ...]

    @staticmethod
    def of(program: Program) -> "ProgramFingerprint":
        # Duck-typed fast path: arena-attached programs carry the
        # fingerprint stamped at freeze time, so no body is re-digested.
        stamped = getattr(program, "program_fingerprint", None)
        if stamped is not None:
            return stamped
        classes = tuple(sorted(
            (cls.name, ClassShape(
                superclass=cls.superclass,
                interfaces=tuple(cls.interfaces),
                is_interface=cls.is_interface,
                is_abstract=cls.is_abstract,
                fields=tuple(sorted(
                    (name, decl.declared_type)
                    for name, decl in cls.fields.items())),
            ))
            for cls in program.hierarchy))
        methods = tuple(sorted(
            (name, _method_digest(method))
            for name, method in program.methods.items()))
        return ProgramFingerprint(
            classes=classes,
            methods=methods,
            entry_points=tuple(program.entry_points),
        )


@dataclass(frozen=True)
class FingerprintDelta:
    """What changed between two program fingerprints, and whether it is monotone.

    ``violations`` lists every reason warm resumption would be unsound; an
    empty list means the new program is a monotone extension of the old one.
    The ``added_*`` fields describe the extension itself.
    """

    added_classes: Tuple[str, ...]
    added_methods: Tuple[str, ...]
    added_fields: Tuple[str, ...]  # qualified "Class.field" names on new classes
    added_entry_points: Tuple[str, ...]
    violations: Tuple[str, ...]

    @property
    def is_monotone(self) -> bool:
        return not self.violations

    @property
    def is_empty(self) -> bool:
        return not (self.added_classes or self.added_methods
                    or self.added_fields or self.added_entry_points
                    or self.violations)

    def summary(self) -> str:
        verdict = "monotone" if self.is_monotone else "NON-MONOTONE"
        return (f"{verdict}: +{len(self.added_classes)} classes, "
                f"+{len(self.added_methods)} methods, "
                f"+{len(self.added_fields)} fields, "
                f"+{len(self.added_entry_points)} entry points"
                + (f", {len(self.violations)} violations"
                   if self.violations else ""))


def diff_fingerprints(old: ProgramFingerprint,
                      new: ProgramFingerprint) -> FingerprintDelta:
    """Diff two fingerprints into additions plus monotonicity violations."""
    old_classes: Dict[str, ClassShape] = dict(old.classes)
    new_classes: Dict[str, ClassShape] = dict(new.classes)
    violations: List[str] = []
    added_fields: List[str] = []

    for name in sorted(old_classes.keys() - new_classes.keys()):
        violations.append(f"class {name} was removed")
    for name in sorted(old_classes.keys() & new_classes.keys()):
        before, after = old_classes[name], new_classes[name]
        if before == after:
            continue
        if (before.superclass != after.superclass
                or before.interfaces != after.interfaces
                or before.is_interface != after.is_interface
                or before.is_abstract != after.is_abstract):
            violations.append(f"class {name} changed its declaration")
        if before.fields != after.fields:
            violations.append(
                f"class {name} changed its fields (new or altered field "
                f"declarations on a pre-existing class can shadow linked "
                f"field flows)")
    added_classes = sorted(new_classes.keys() - old_classes.keys())
    for name in added_classes:
        added_fields.extend(
            f"{name}.{field_name}"
            for field_name, _ in new_classes[name].fields)

    old_methods = dict(old.methods)
    new_methods = dict(new.methods)
    for name in sorted(old_methods.keys() - new_methods.keys()):
        violations.append(f"method {name} was removed")
    for name in sorted(old_methods.keys() & new_methods.keys()):
        if old_methods[name] != new_methods[name]:
            violations.append(f"method {name} changed its body")
    added_methods = sorted(new_methods.keys() - old_methods.keys())
    for name in added_methods:
        declaring = name.split(".", 1)[0]
        if declaring in old_classes:
            violations.append(
                f"method {name} was added to pre-existing class {declaring} "
                f"(resolution for already-linked receivers could change)")

    old_entries = set(old.entry_points)
    for name in old.entry_points:
        if name not in new.entry_points:
            violations.append(f"entry point {name} was removed")
    added_entries = [name for name in new.entry_points
                     if name not in old_entries]

    return FingerprintDelta(
        added_classes=tuple(added_classes),
        added_methods=tuple(added_methods),
        added_fields=tuple(sorted(added_fields)),
        added_entry_points=tuple(added_entries),
        violations=tuple(violations),
    )


def diff_programs(old: Program, new: Program) -> FingerprintDelta:
    """Structural diff of two programs (see :func:`diff_fingerprints`)."""
    return diff_fingerprints(ProgramFingerprint.of(old),
                             ProgramFingerprint.of(new))


def delta_between(old: Program, new: Program,
                  name: str = "delta") -> "ProgramDelta":
    """The additive edit script turning ``old`` into ``new``.

    The bridge between "here is the whole edited program" callers (an IDE
    buffer, a service ``update`` request carrying full source) and the
    delta machinery: the two programs are structurally diffed, and the
    additions — new classes with their fields and methods, new entry points
    — are lifted out of ``new`` into a :class:`ProgramDelta` that can be
    applied to ``old`` (or to any session holding an identical program).

    Only monotone differences are expressible as an additive script, so a
    non-monotone diff (removals, body edits, members grafted onto
    pre-existing classes) raises :class:`NonMonotoneDeltaError` carrying the
    violations instead of silently dropping them.  Callers that want to
    proceed anyway rebuild from ``new`` and solve cold — exactly what the
    service layer does when a client passes ``allow_rebuild``.
    """
    diff = diff_programs(old, new)
    if not diff.is_monotone:
        raise NonMonotoneDeltaError(diff.violations)
    delta = ProgramDelta(name)
    for class_name in diff.added_classes:
        shape = new.hierarchy.get(class_name)
        delta.declare_class(class_name, superclass=shape.superclass,
                            interfaces=shape.interfaces,
                            is_interface=shape.is_interface,
                            is_abstract=shape.is_abstract)
        for field_name, decl in sorted(shape.fields.items()):
            delta.declare_field(class_name, field_name, decl.declared_type)
    for qualified_name in diff.added_methods:
        delta.add_method(new.methods[qualified_name])
    for entry_point in diff.added_entry_points:
        delta.add_entry_point(entry_point)
    return delta


# --------------------------------------------------------------------------- #
# The edit script
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ClassDecl:
    name: str
    superclass: Optional[str]
    interfaces: Tuple[str, ...]
    is_interface: bool
    is_abstract: bool


@dataclass(frozen=True)
class _FieldDecl:
    class_name: str
    field_name: str
    declared_type: str


@dataclass(frozen=True)
class AppliedDelta:
    """The record of one delta application (what landed, and how)."""

    delta_name: str
    monotone: bool
    reasons: Tuple[str, ...] = ()
    added_classes: Tuple[str, ...] = ()
    added_fields: Tuple[str, ...] = ()
    added_methods: Tuple[str, ...] = ()
    added_entry_points: Tuple[str, ...] = ()

    def summary(self) -> str:
        verdict = "monotone" if self.monotone else "NON-MONOTONE"
        return (f"applied {self.delta_name} ({verdict}): "
                f"+{len(self.added_classes)} classes, "
                f"+{len(self.added_fields)} fields, "
                f"+{len(self.added_methods)} methods, "
                f"+{len(self.added_entry_points)} entry points")


class ProgramDelta:
    """An additive edit script, built like a :class:`ProgramBuilder`.

    The delta records declarations instead of applying them, so one script
    can be checked (:meth:`non_monotone_reasons`), reported, and applied to
    a program later — or to several programs, e.g. a session's live object
    and a fresh cold-solve copy.  The builder surface is intentionally the
    subset of :class:`~repro.ir.builder.ProgramBuilder` that the workload
    pattern generators use (``declare_class`` / ``declare_field`` /
    ``method`` / ``finish_method``), so ``add_guarded_module`` and friends
    can generate whole modules directly into a delta.
    """

    def __init__(self, name: str = "delta") -> None:
        self.name = name
        self._classes: List[_ClassDecl] = []
        self._fields: List[_FieldDecl] = []
        self._methods: List[Method] = []
        self._entry_points: List[str] = []
        self._call_sites = 0

    # ------------------------------------------------------------------ #
    # Builder surface (mirrors ProgramBuilder)
    # ------------------------------------------------------------------ #
    def declare_class(self, name: str, superclass: str = "Object",
                      interfaces: Sequence[str] = (),
                      is_interface: bool = False,
                      is_abstract: bool = False) -> _ClassDecl:
        if name in self.class_names:
            raise DeltaError(f"class {name!r} declared twice in delta")
        decl = _ClassDecl(name, superclass, tuple(interfaces),
                          is_interface, is_abstract)
        self._classes.append(decl)
        return decl

    def declare_field(self, class_name: str, field_name: str,
                      declared_type: str) -> _FieldDecl:
        decl = _FieldDecl(class_name, field_name, declared_type)
        if decl in self._fields:
            raise DeltaError(
                f"field {class_name}.{field_name} declared twice in delta")
        self._fields.append(decl)
        return decl

    def method(self, class_name: str, method_name: str,
               params: Sequence[str] = (), return_type: str = "void",
               is_static: bool = False,
               param_names: Optional[Sequence[str]] = None) -> MethodBuilder:
        signature = MethodSignature(
            declaring_class=class_name,
            name=method_name,
            param_types=tuple(params),
            return_type=return_type,
            is_static=is_static,
        )
        return MethodBuilder(signature, param_names)

    def finish_method(self, builder: MethodBuilder) -> Method:
        return self.add_method(builder.build())

    def add_method(self, method: Method) -> Method:
        """Record an already-built :class:`~repro.ir.method.Method`.

        The escape hatch behind :func:`delta_between`: methods lifted out of
        a freshly compiled program carry finished bodies, so they enter the
        script directly instead of through a :class:`~repro.ir.builder.
        MethodBuilder`.
        """
        if method.qualified_name in self.method_names:
            raise DeltaError(
                f"method {method.qualified_name!r} defined twice in delta")
        self._methods.append(method)
        return method

    def add_entry_point(self, qualified_name: str) -> None:
        if qualified_name not in self._entry_points:
            self._entry_points.append(qualified_name)

    def add_call_site(self, target_class: str, target_method: str,
                      caller_class: Optional[str] = None) -> str:
        """Add a new call site into existing code: a static bridge method.

        The bridge lives on a fresh class and becomes a new entry point, so
        the call is rooted without touching any pre-existing method body —
        which is what keeps "call this existing API from new code" a
        monotone edit.  Returns the bridge's qualified name.
        """
        index = self._call_sites
        self._call_sites += 1
        bridge = caller_class or f"{target_class}Call{index}"
        self.declare_class(bridge)
        mb = self.method(bridge, "invoke", is_static=True)
        mb.invoke_static(target_class, target_method)
        mb.return_void()
        self.finish_method(mb)
        qualified = f"{bridge}.invoke"
        self.add_entry_point(qualified)
        return qualified

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def class_names(self) -> Tuple[str, ...]:
        return tuple(decl.name for decl in self._classes)

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(f"{decl.class_name}.{decl.field_name}"
                     for decl in self._fields)

    @property
    def method_names(self) -> Tuple[str, ...]:
        return tuple(method.qualified_name for method in self._methods)

    @property
    def entry_points(self) -> Tuple[str, ...]:
        return tuple(self._entry_points)

    @property
    def is_empty(self) -> bool:
        return not (self._classes or self._fields or self._methods
                    or self._entry_points)

    def summary(self) -> str:
        return (f"delta {self.name!r}: +{len(self._classes)} classes, "
                f"+{len(self._fields)} fields, +{len(self._methods)} methods, "
                f"+{len(self._entry_points)} entry points")

    # ------------------------------------------------------------------ #
    # Monotonicity and application
    # ------------------------------------------------------------------ #
    def non_monotone_reasons(self, program: Program) -> List[str]:
        """Why resuming a solve over this delta would be unsound (if at all).

        Empty list = monotone.  Only *appliable* edits are reported here;
        structurally impossible ones (class redeclarations, unknown
        superclasses, entry points naming nothing) raise from
        :meth:`apply_to` instead.
        """
        new_classes = set(self.class_names)
        reasons: List[str] = []
        for decl in self._fields:
            if decl.class_name not in new_classes and decl.class_name in program.hierarchy:
                reasons.append(
                    f"field {decl.class_name}.{decl.field_name} is added to "
                    f"pre-existing class {decl.class_name} (can shadow "
                    f"already-linked field flows)")
        for method in self._methods:
            declaring = method.signature.declaring_class
            if declaring not in new_classes and declaring in program.hierarchy:
                reasons.append(
                    f"method {method.qualified_name} is added to pre-existing "
                    f"class {declaring} (resolution for already-linked "
                    f"receivers could change)")
        return reasons

    def is_monotone_for(self, program: Program) -> bool:
        return not self.non_monotone_reasons(program)

    def _check_structure(self, program: Program) -> None:
        known = set(program.hierarchy.class_names) | set(self.class_names)
        for decl in self._classes:
            if decl.name in program.hierarchy:
                raise DeltaError(
                    f"delta redeclares existing class {decl.name!r}")
            if decl.superclass is not None and decl.superclass not in known:
                raise DeltaError(
                    f"class {decl.name!r} extends unknown class "
                    f"{decl.superclass!r}")
        for fdecl in self._fields:
            if fdecl.class_name not in known:
                raise DeltaError(
                    f"field {fdecl.class_name}.{fdecl.field_name} is declared "
                    f"on unknown class {fdecl.class_name!r}")
        defined = set(program.methods) | set(self.method_names)
        for method in self._methods:
            if method.qualified_name in program.methods:
                raise DeltaError(
                    f"delta redefines existing method "
                    f"{method.qualified_name!r}")
            if method.signature.declaring_class not in known:
                raise DeltaError(
                    f"method {method.qualified_name} is declared on unknown "
                    f"class {method.signature.declaring_class!r}")
        for entry in self._entry_points:
            if entry not in defined:
                raise DeltaError(
                    f"entry point {entry!r} names no method of the program "
                    f"or the delta")

    def apply_to(self, program: Program, *,
                 require_monotone: bool = False) -> AppliedDelta:
        """Apply the script to ``program`` in place.

        Structural problems always raise :class:`DeltaError`; with
        ``require_monotone`` the application additionally raises
        :class:`NonMonotoneDeltaError` instead of applying a delta that
        would invalidate warm resumption.  The returned record carries the
        monotonicity verdict either way, so callers deciding between warm
        and cold re-analysis have it in hand.
        """
        self._check_structure(program)
        reasons = self.non_monotone_reasons(program)
        if require_monotone and reasons:
            raise NonMonotoneDeltaError(reasons)
        for decl in self._classes:
            program.hierarchy.declare_class(
                decl.name, decl.superclass, decl.interfaces,
                decl.is_interface, decl.is_abstract)
        for fdecl in self._fields:
            program.hierarchy.get(fdecl.class_name).declare_field(
                fdecl.field_name, fdecl.declared_type)
        for method in self._methods:
            program.add_method(method)
        for entry in self._entry_points:
            program.add_entry_point(entry)
        return AppliedDelta(
            delta_name=self.name,
            monotone=not reasons,
            reasons=tuple(reasons),
            added_classes=self.class_names,
            added_fields=self.field_names,
            added_methods=self.method_names,
            added_entry_points=self.entry_points,
        )
