"""Fluent builders for constructing SSA methods and programs by hand.

The builders are the primary way tests and examples construct IR directly;
the surface-language frontend (:mod:`repro.lang`) lowers parsed source through
the same builders so that every method body in the system goes through one
construction path.

Example::

    hierarchy = TypeHierarchy()
    hierarchy.declare_class("Thread")
    pb = ProgramBuilder(hierarchy)
    mb = pb.method("Thread", "isVirtual", params=[], return_type="int")
    this = mb.receiver
    t = mb.if_instanceof(this, "BaseVirtualThread", "is_virtual", "not_virtual")
    mb.label("is_virtual")
    one = mb.assign_int(1)
    mb.jump("done", [one])
    mb.label("not_virtual")
    zero = mb.assign_int(0)
    mb.jump("done", [zero])
    result = mb.merge("done", ["result"])[0]
    mb.return_(result)
    pb.finish_method(mb)
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.blocks import BasicBlock
from repro.ir.instructions import (
    Assign,
    CompareOp,
    Condition,
    If,
    InstanceOfCondition,
    Invoke,
    InvokeKind,
    Jump,
    Label,
    LoadField,
    Merge,
    Phi,
    Return,
    Start,
    StoreField,
)
from repro.ir.method import Method
from repro.ir.program import Program
from repro.ir.types import MethodSignature, TypeHierarchy
from repro.ir.values import ConstantExpr, Value


class BuilderError(Exception):
    """Raised when the builder API is used out of order."""


class MethodBuilder:
    """Builds one SSA method block by block.

    The builder keeps a *current block*; statements are appended to it and a
    terminator (``return_``, ``jump``, or one of the ``if_*`` helpers) closes
    it.  New blocks are opened with :meth:`label` or :meth:`merge`.
    """

    def __init__(self, signature: MethodSignature, param_names: Optional[Sequence[str]] = None):
        self.signature = signature
        self._temp_counter = itertools.count()
        self._blocks: List[BasicBlock] = []
        self._current: Optional[BasicBlock] = None
        self._block_names: Dict[str, BasicBlock] = {}

        params: List[Value] = []
        names = list(param_names) if param_names is not None else None
        if not signature.is_static:
            params.append(Value("this", signature.declaring_class))
        for index, ptype in enumerate(signature.param_types):
            if names is not None and index < len(names):
                pname = names[index]
            else:
                pname = f"p{index}"
            params.append(Value(pname, ptype))
        entry = BasicBlock("entry", Start(tuple(params)))
        self._blocks.append(entry)
        self._block_names["entry"] = entry
        self._current = entry
        self._params = params

    # ------------------------------------------------------------------ #
    # Values and parameters
    # ------------------------------------------------------------------ #
    @property
    def parameters(self) -> List[Value]:
        return list(self._params)

    @property
    def receiver(self) -> Value:
        if self.signature.is_static:
            raise BuilderError("static methods have no receiver")
        return self._params[0]

    def param(self, index: int) -> Value:
        """Explicit parameter by index (excluding the receiver)."""
        offset = 0 if self.signature.is_static else 1
        return self._params[offset + index]

    def fresh_value(self, hint: str = "t", declared_type: Optional[str] = None) -> Value:
        return Value(f"{hint}{next(self._temp_counter)}", declared_type)

    # ------------------------------------------------------------------ #
    # Block management
    # ------------------------------------------------------------------ #
    @property
    def current_block(self) -> BasicBlock:
        if self._current is None:
            raise BuilderError("no open block; start one with label() or merge()")
        return self._current

    def _require_open(self) -> BasicBlock:
        block = self.current_block
        if block.end is not None:
            raise BuilderError(f"block {block.name!r} is already terminated")
        return block

    def _close_current(self, end) -> None:
        block = self._require_open()
        block.end = end
        self._current = None

    def label(self, name: str) -> BasicBlock:
        """Open a new ``label`` block (a branch of an ``if``)."""
        if name in self._block_names:
            raise BuilderError(f"block {name!r} already exists")
        block = BasicBlock(name, Label(name))
        self._blocks.append(block)
        self._block_names[name] = block
        self._current = block
        return block

    def merge(self, name: str, phi_names: Sequence[str] = ()) -> List[Value]:
        """Open a new ``merge`` block and return its phi result values.

        ``phi_names`` gives one SSA name per joined variable; jumps targeting
        this merge must pass matching ``phi_args`` in the same order.
        """
        if name in self._block_names:
            raise BuilderError(f"block {name!r} already exists")
        phi_values = [Value(phi_name) for phi_name in phi_names]
        phis = tuple(Phi(value, ()) for value in phi_values)
        block = BasicBlock(name, Merge(name, phis))
        self._blocks.append(block)
        self._block_names[name] = block
        self._current = block
        return phi_values

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _assign(self, expr: ConstantExpr, hint: str, declared_type: Optional[str]) -> Value:
        block = self._require_open()
        value = self.fresh_value(hint, declared_type)
        block.append(Assign(value, expr))
        return value

    def assign_int(self, constant: int) -> Value:
        return self._assign(ConstantExpr.int_const(constant), "c", "int")

    def assign_any(self) -> Value:
        return self._assign(ConstantExpr.any_value(), "a", "int")

    def assign_new(self, type_name: str) -> Value:
        return self._assign(ConstantExpr.new(type_name), "o", type_name)

    def assign_null(self) -> Value:
        return self._assign(ConstantExpr.null(), "n", None)

    def load_field(self, receiver: Value, field_name: str,
                   declared_type: Optional[str] = None) -> Value:
        block = self._require_open()
        value = self.fresh_value("f", declared_type)
        block.append(LoadField(value, receiver, field_name))
        return value

    def store_field(self, receiver: Value, field_name: str, value: Value) -> None:
        block = self._require_open()
        block.append(StoreField(receiver, field_name, value))

    def invoke_virtual(self, receiver: Value, method_name: str,
                       arguments: Sequence[Value] = (),
                       result_type: Optional[str] = None) -> Value:
        block = self._require_open()
        result = self.fresh_value("r", result_type)
        block.append(Invoke(result, method_name, tuple(arguments), receiver,
                            InvokeKind.VIRTUAL))
        return result

    def invoke_special(self, receiver: Value, method_name: str,
                       arguments: Sequence[Value] = (),
                       result_type: Optional[str] = None) -> Value:
        block = self._require_open()
        result = self.fresh_value("r", result_type)
        block.append(Invoke(result, method_name, tuple(arguments), receiver,
                            InvokeKind.SPECIAL))
        return result

    def invoke_static(self, target_class: str, method_name: str,
                      arguments: Sequence[Value] = (),
                      result_type: Optional[str] = None) -> Value:
        block = self._require_open()
        result = self.fresh_value("r", result_type)
        block.append(Invoke(result, method_name, tuple(arguments), None,
                            InvokeKind.STATIC, target_class))
        return result

    # ------------------------------------------------------------------ #
    # Terminators
    # ------------------------------------------------------------------ #
    def return_(self, value: Optional[Value] = None) -> None:
        self._close_current(Return(value))

    def return_void(self) -> None:
        self.return_(None)

    def jump(self, target: str, phi_args: Sequence[Value] = ()) -> None:
        self._close_current(Jump(target, tuple(phi_args)))

    def if_compare(self, op: CompareOp, left: Value, right: Value,
                   then_label: str, else_label: str) -> None:
        """Emit an ``if`` on a binary comparison.

        Only ``EQ`` and ``LT`` occur in the base language; the other operators
        are normalized here by swapping operands and/or branch targets so the
        produced IR is always canonical.
        """
        if op is CompareOp.NE:
            op, then_label, else_label = CompareOp.EQ, else_label, then_label
        elif op is CompareOp.GT:
            op, left, right = CompareOp.LT, right, left
        elif op is CompareOp.GE:
            op, then_label, else_label = CompareOp.LT, else_label, then_label
        elif op is CompareOp.LE:
            op, left, right = CompareOp.LT, right, left
            then_label, else_label = else_label, then_label
        self._close_current(If(Condition(op, left, right), then_label, else_label))

    def if_eq(self, left: Value, right: Value, then_label: str, else_label: str) -> None:
        self.if_compare(CompareOp.EQ, left, right, then_label, else_label)

    def if_lt(self, left: Value, right: Value, then_label: str, else_label: str) -> None:
        self.if_compare(CompareOp.LT, left, right, then_label, else_label)

    def if_null(self, value: Value, then_label: str, else_label: str) -> None:
        """``if (value == null)`` — materializes the null constant explicitly."""
        null_value = self.assign_null()
        self.if_eq(value, null_value, then_label, else_label)

    def if_true(self, value: Value, then_label: str, else_label: str) -> None:
        """``if (value)`` for a boolean-as-int value: compares against 1."""
        one = self.assign_int(1)
        self.if_eq(value, one, then_label, else_label)

    def if_instanceof(self, value: Value, type_name: str,
                      then_label: str, else_label: str) -> None:
        self._close_current(
            If(InstanceOfCondition(value, type_name), then_label, else_label)
        )

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def build(self) -> Method:
        if self._current is not None and self._current.end is None:
            raise BuilderError(
                f"block {self._current.name!r} is not terminated; "
                "call return_() or jump() before build()"
            )
        self._fill_phi_operands()
        return Method(self.signature, list(self._blocks))

    def _fill_phi_operands(self) -> None:
        """Populate ``Phi.operands`` from the jumps targeting each merge."""
        for block in self._blocks:
            if not block.is_merge:
                continue
            merge = block.begin
            assert isinstance(merge, Merge)
            if not merge.phis:
                continue
            incoming: List[Tuple[Value, ...]] = []
            for source in self._blocks:
                end = source.end
                if isinstance(end, Jump) and end.target == block.name:
                    incoming.append(end.phi_arguments)
            for index, phi in enumerate(merge.phis):
                operands = tuple(args[index] for args in incoming if index < len(args))
                merge.phis = tuple(
                    Phi(p.result, operands if i == index else p.operands)
                    for i, p in enumerate(merge.phis)
                )


class ProgramBuilder:
    """Builds a whole :class:`~repro.ir.program.Program`."""

    def __init__(self, hierarchy: Optional[TypeHierarchy] = None):
        self.program = Program(hierarchy or TypeHierarchy())

    @property
    def hierarchy(self) -> TypeHierarchy:
        return self.program.hierarchy

    def declare_class(self, name: str, superclass: str = "Object",
                      interfaces: Sequence[str] = (), is_interface: bool = False,
                      is_abstract: bool = False):
        return self.hierarchy.declare_class(
            name, superclass, interfaces, is_interface, is_abstract
        )

    def declare_field(self, class_name: str, field_name: str, declared_type: str):
        return self.hierarchy.get(class_name).declare_field(field_name, declared_type)

    def method(self, class_name: str, method_name: str,
               params: Sequence[str] = (), return_type: str = "void",
               is_static: bool = False,
               param_names: Optional[Sequence[str]] = None) -> MethodBuilder:
        signature = MethodSignature(
            declaring_class=class_name,
            name=method_name,
            param_types=tuple(params),
            return_type=return_type,
            is_static=is_static,
        )
        return MethodBuilder(signature, param_names)

    def finish_method(self, builder: MethodBuilder) -> Method:
        method = builder.build()
        self.program.add_method(method)
        return method

    def add_entry_point(self, qualified_name: str) -> None:
        self.program.add_entry_point(qualified_name)

    def build(self) -> Program:
        return self.program
