"""Class hierarchy, fields, and method signatures.

This module provides the closed-world type universe over which the analysis
runs.  It implements the two auxiliary functions used by the value-propagation
rules of Appendix C:

* ``LookUp(t, x)`` — resolve field ``x`` on type ``t`` (walking up the class
  hierarchy to the declaring class), exposed as :meth:`TypeHierarchy.lookup_field`.
* ``Resolve(t, m)`` — virtual method resolution for receiver type ``t`` and
  invoked method ``m``, exposed as :meth:`TypeHierarchy.resolve`.

``null`` is modelled as a special type (``NULL_TYPE_NAME``) that can be a
member of any value state, following Section 3 ("Null references are handled
as a special type that can be part of any value state").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Name of the synthetic type used to represent the ``null`` reference.
NULL_TYPE_NAME = "null"

#: Name of the implicit root of the class hierarchy.
OBJECT_TYPE_NAME = "Object"

#: Pseudo type name used for primitive (int/boolean) declarations.
INT_TYPE_NAME = "int"


class TypeSystemError(Exception):
    """Raised when the program declares an inconsistent type hierarchy."""


@dataclass(frozen=True)
class FieldDecl:
    """A field declaration ``<declaring_class>.<name> : <declared_type>``."""

    declaring_class: str
    name: str
    declared_type: str

    @property
    def qualified_name(self) -> str:
        return f"{self.declaring_class}.{self.name}"

    @property
    def is_primitive(self) -> bool:
        return self.declared_type == INT_TYPE_NAME


@dataclass(frozen=True)
class MethodSignature:
    """A method signature ``<declaring_class>.<name>(<n params>)``.

    Parameter 0 is the receiver for instance methods; static methods have no
    receiver.  The return type is either a class name, ``int`` or ``void``.
    """

    declaring_class: str
    name: str
    param_types: Tuple[str, ...] = ()
    return_type: str = "void"
    is_static: bool = False

    @property
    def qualified_name(self) -> str:
        return f"{self.declaring_class}.{self.name}"

    @property
    def num_params(self) -> int:
        """Number of formal parameters including the receiver."""
        extra = 0 if self.is_static else 1
        return len(self.param_types) + extra

    @property
    def returns_value(self) -> bool:
        return self.return_type != "void"

    @property
    def returns_reference(self) -> bool:
        return self.return_type not in ("void", INT_TYPE_NAME)


@dataclass
class ClassType:
    """A class (or interface) in the closed world."""

    name: str
    superclass: Optional[str] = OBJECT_TYPE_NAME
    interfaces: Tuple[str, ...] = ()
    is_interface: bool = False
    is_abstract: bool = False
    fields: Dict[str, FieldDecl] = field(default_factory=dict)
    #: Names of methods declared (with a body) directly on this class.
    declared_methods: Dict[str, MethodSignature] = field(default_factory=dict)

    def declare_field(self, name: str, declared_type: str) -> FieldDecl:
        decl = FieldDecl(self.name, name, declared_type)
        self.fields[name] = decl
        return decl

    def declare_method(self, signature: MethodSignature) -> MethodSignature:
        if signature.declaring_class != self.name:
            raise TypeSystemError(
                f"method {signature.qualified_name} declared on class {self.name}"
            )
        self.declared_methods[signature.name] = signature
        return signature


class TypeHierarchy:
    """The closed-world set of program types ``T`` with subtyping queries.

    The hierarchy always contains the root ``Object`` type and the synthetic
    ``null`` type.  ``null`` is a subtype of every reference type, which makes
    ``instanceof`` filtering and null checks uniform in the solver.
    """

    def __init__(self) -> None:
        self._classes: Dict[str, ClassType] = {}
        self._subtype_cache: Dict[Tuple[str, str], bool] = {}
        self._instantiable_subtypes_cache: Dict[str, Tuple[str, ...]] = {}
        self._instantiable_cache_complete = False
        self.declare_class(OBJECT_TYPE_NAME, superclass=None)

    # ------------------------------------------------------------------ #
    # Declarations
    # ------------------------------------------------------------------ #
    def declare_class(
        self,
        name: str,
        superclass: Optional[str] = OBJECT_TYPE_NAME,
        interfaces: Sequence[str] = (),
        is_interface: bool = False,
        is_abstract: bool = False,
    ) -> ClassType:
        """Declare a new class and return its descriptor."""
        if name in self._classes:
            raise TypeSystemError(f"class {name!r} declared twice")
        if name == NULL_TYPE_NAME:
            raise TypeSystemError("the null type is implicit and cannot be declared")
        cls = ClassType(
            name=name,
            superclass=superclass,
            interfaces=tuple(interfaces),
            is_interface=is_interface,
            is_abstract=is_abstract,
        )
        self._classes[name] = cls
        self._invalidate_caches()
        return cls

    def get(self, name: str) -> ClassType:
        try:
            return self._classes[name]
        except KeyError:
            raise TypeSystemError(f"unknown class {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[ClassType]:
        return iter(self._classes.values())

    @property
    def class_names(self) -> List[str]:
        return list(self._classes)

    def _invalidate_caches(self) -> None:
        self._subtype_cache.clear()
        self._instantiable_subtypes_cache.clear()
        self._instantiable_cache_complete = False

    # ------------------------------------------------------------------ #
    # Subtyping
    # ------------------------------------------------------------------ #
    def supertypes(self, name: str) -> List[str]:
        """All supertypes of ``name`` including itself (classes + interfaces)."""
        if name == NULL_TYPE_NAME:
            return [NULL_TYPE_NAME]
        result: List[str] = []
        seen = set()
        worklist = [name]
        while worklist:
            current = worklist.pop()
            if current in seen:
                continue
            seen.add(current)
            result.append(current)
            cls = self.get(current)
            if cls.superclass is not None:
                worklist.append(cls.superclass)
            worklist.extend(cls.interfaces)
        return result

    def is_subtype(self, sub: str, sup: str) -> bool:
        """Return True iff ``sub`` is the same type as or a subtype of ``sup``.

        ``null`` is a subtype of every reference type but no reference type is
        a subtype of ``null``.
        """
        if sub == sup:
            return True
        if sub == NULL_TYPE_NAME:
            return True
        if sup == NULL_TYPE_NAME:
            return False
        key = (sub, sup)
        cached = self._subtype_cache.get(key)
        if cached is not None:
            return cached
        result = sup in self.supertypes(sub)
        self._subtype_cache[key] = result
        return result

    def direct_subclasses(self, name: str) -> List[str]:
        return [
            cls.name
            for cls in self._classes.values()
            if cls.superclass == name or name in cls.interfaces
        ]

    def all_subtypes(self, name: str) -> List[str]:
        """All declared subtypes of ``name`` including itself (no ``null``)."""
        return [cls.name for cls in self._classes.values() if self.is_subtype(cls.name, name)]

    def instantiable_subtypes(self, name: str) -> Tuple[str, ...]:
        """Concrete (non-abstract, non-interface) subtypes of ``name``.

        The first query fills the cache for *every* declared name in one
        declaration-order pass (each concrete class is bucketed under all of
        its supertypes), so N distinct queries cost one hierarchy walk
        instead of N full scans — the declared-type saturation policy asks
        for hundreds of distinct subtrees per solve.  Result tuples keep the
        classes' declaration order, exactly as the per-name scan produced.
        """
        cached = self._instantiable_subtypes_cache.get(name)
        if cached is not None:
            return cached
        if self._instantiable_cache_complete:
            return ()
        buckets: Dict[str, List[str]] = {cls: [] for cls in self._classes}
        for cls in self._classes.values():
            if cls.is_interface or cls.is_abstract:
                continue
            for supertype in self.supertypes(cls.name):
                bucket = buckets.get(supertype)
                if bucket is not None:
                    bucket.append(cls.name)
        self._instantiable_subtypes_cache = {
            cls: tuple(subs) for cls, subs in buckets.items()}
        self._instantiable_cache_complete = True
        return self._instantiable_subtypes_cache.get(name, ())

    # ------------------------------------------------------------------ #
    # LookUp and Resolve (Appendix C auxiliary functions)
    # ------------------------------------------------------------------ #
    def lookup_field(self, type_name: str, field_name: str) -> Optional[FieldDecl]:
        """``LookUp(t, x)``: resolve a field access on type ``t``.

        Walks the superclass chain starting at ``t`` and returns the first
        declaration of ``field_name``.  Returns ``None`` for ``null`` receivers
        or when the field does not exist (the solver simply skips those
        combinations, matching the partiality of ``LookUp`` in the paper).
        """
        if type_name == NULL_TYPE_NAME:
            return None
        current: Optional[str] = type_name
        while current is not None:
            cls = self.get(current)
            decl = cls.fields.get(field_name)
            if decl is not None:
                return decl
            current = cls.superclass
        return None

    def resolve(self, receiver_type: str, method_name: str) -> Optional[MethodSignature]:
        """``Resolve(t, m)``: virtual method resolution per the JVM rules.

        Searches ``receiver_type`` and then its superclass chain for a
        declaration of ``method_name``; if none is found, searches the
        implemented interfaces (default methods).  Returns ``None`` when no
        target exists (e.g. for the ``null`` type), which the solver treats as
        "no call target for this receiver type".
        """
        if receiver_type == NULL_TYPE_NAME:
            return None
        current: Optional[str] = receiver_type
        while current is not None:
            cls = self.get(current)
            sig = cls.declared_methods.get(method_name)
            if sig is not None:
                return sig
            current = cls.superclass
        # Interface default methods: breadth-first over all supertypes.
        for sup in self.supertypes(receiver_type):
            cls = self.get(sup)
            sig = cls.declared_methods.get(method_name)
            if sig is not None:
                return sig
        return None

    def resolve_all(
        self, receiver_types: Iterable[str], method_name: str
    ) -> List[MethodSignature]:
        """Resolve ``method_name`` for every receiver type, deduplicated."""
        seen: Dict[str, MethodSignature] = {}
        for type_name in receiver_types:
            sig = self.resolve(type_name, method_name)
            if sig is not None and sig.qualified_name not in seen:
                seen[sig.qualified_name] = sig
        return list(seen.values())
