"""A concrete interpreter for the SSA base language.

The interpreter executes closed-world programs directly: objects are heap
records with per-field storage, primitives are Python integers, virtual calls
dispatch through the type hierarchy, and arithmetic (`Any`) produces a value
drawn deterministically from the execution context.

Its purpose in this repository is *differential testing of soundness*: every
method the interpreter actually executes must be marked reachable by every
analysis (CHA, RTA, the PTA baseline, SkipFlow), and every concrete value a
variable takes at runtime must be covered by the value state the analysis
computed for the corresponding flow.  The hypothesis test suite drives the
interpreter over generated workloads and checks exactly that.

Execution is bounded (``max_steps``) so that programs with infinite loops —
which the workloads use to model never-returning methods — simply stop
instead of hanging the test suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.ir.blocks import BasicBlock
from repro.ir.instructions import (
    Assign,
    CompareOp,
    Condition,
    If,
    InstanceOfCondition,
    Invoke,
    InvokeKind,
    Jump,
    LoadField,
    Merge,
    Return,
    Start,
    StoreField,
)
from repro.ir.method import Method
from repro.ir.program import Program
from repro.ir.values import ConstKind, Value


class InterpreterError(Exception):
    """Raised on runtime errors the base language cannot express (e.g. NPE)."""


class BudgetExceeded(InterpreterError):
    """Raised when the execution step budget is exhausted."""


@dataclass
class HeapObject:
    """A runtime object: its dynamic type plus field storage."""

    object_id: int
    type_name: str
    fields: Dict[str, "RuntimeValue"] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<{self.type_name}#{self.object_id}>"


#: A runtime value: an integer, an object, or None (the null reference).
RuntimeValue = Union[int, HeapObject, None]


@dataclass
class ExecutionTrace:
    """What happened during one bounded execution."""

    executed_methods: Set[str] = field(default_factory=set)
    call_edges: Set[Tuple[str, str]] = field(default_factory=set)
    allocated_types: Set[str] = field(default_factory=set)
    #: Concrete values observed per (method, variable-name).
    observed_values: Dict[Tuple[str, str], List[RuntimeValue]] = field(default_factory=dict)
    steps: int = 0
    completed: bool = True

    def record_value(self, method: str, name: str, value: RuntimeValue) -> None:
        self.observed_values.setdefault((method, name), []).append(value)


class Interpreter:
    """Executes a program starting from one of its entry points."""

    def __init__(self, program: Program, max_steps: int = 20_000,
                 any_value: int = 7):
        self.program = program
        self.hierarchy = program.hierarchy
        self.max_steps = max_steps
        #: The concrete integer produced for the opaque ``Any`` expression.
        self.any_value = any_value
        self._object_ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, entry_point: Optional[str] = None,
            arguments: Optional[List[RuntimeValue]] = None) -> ExecutionTrace:
        """Execute from ``entry_point`` (default: the first program entry point)."""
        if entry_point is None:
            if not self.program.entry_points:
                raise InterpreterError("program has no entry points")
            entry_point = self.program.entry_points[0]
        method = self.program.methods.get(entry_point)
        if method is None:
            raise InterpreterError(f"entry point {entry_point!r} has no body")
        trace = ExecutionTrace()
        try:
            self._call(method, list(arguments or []), trace, depth=0)
        except BudgetExceeded:
            trace.completed = False
        return trace

    def try_run(self, entry_point: Optional[str] = None,
                arguments: Optional[List[RuntimeValue]] = None,
                trace: Optional[ExecutionTrace] = None) -> ExecutionTrace:
        """Execute like :meth:`run`, but never lose the partial trace.

        :meth:`run` converts only :class:`BudgetExceeded` into an incomplete
        trace; a genuine runtime error (null receiver, call on a primitive)
        propagates and the trace is lost with it.  The fuzz oracle drives
        *every* entry point of generated programs, some of which legitimately
        fault at runtime (e.g. a route method called before the mesh is
        deployed) — everything executed *up to* the fault still had to be
        proven reachable, so the partial trace is exactly what the oracle
        needs.  Passing ``trace`` accumulates several executions (one per
        entry point) into one merged trace.
        """
        if entry_point is None:
            if not self.program.entry_points:
                raise InterpreterError("program has no entry points")
            entry_point = self.program.entry_points[0]
        method = self.program.methods.get(entry_point)
        if method is None:
            raise InterpreterError(f"entry point {entry_point!r} has no body")
        if trace is None:
            trace = ExecutionTrace()
        try:
            self._call(method, list(arguments or []), trace, depth=0)
        except InterpreterError:  # includes BudgetExceeded
            trace.completed = False
        return trace

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _tick(self, trace: ExecutionTrace) -> None:
        trace.steps += 1
        if trace.steps > self.max_steps:
            raise BudgetExceeded(f"exceeded {self.max_steps} steps")

    def _call(self, method: Method, arguments: List[RuntimeValue],
              trace: ExecutionTrace, depth: int) -> RuntimeValue:
        if depth > 200:
            raise BudgetExceeded("call depth limit reached")
        trace.executed_methods.add(method.qualified_name)
        env: Dict[str, RuntimeValue] = {}
        start = method.entry_block.begin
        assert isinstance(start, Start)
        for parameter, argument in zip(start.params, arguments):
            env[parameter.name] = argument
            trace.record_value(method.qualified_name, parameter.name, argument)

        block = method.entry_block
        block_map = method.block_map()
        previous_jump: Optional[Jump] = None
        while True:
            self._tick(trace)
            self._enter_block(method, block, env, previous_jump, trace)
            for statement in block.statements:
                self._tick(trace)
                self._execute_statement(method, statement, env, trace, depth)
            end = block.end
            if isinstance(end, Return):
                if end.value is not None:
                    return env[end.value.name]
                return None
            if isinstance(end, Jump):
                previous_jump = end
                block = block_map[end.target]
                continue
            if isinstance(end, If):
                taken = self._evaluate_condition(end.condition, env)
                block = block_map[end.then_label if taken else end.else_label]
                previous_jump = None
                continue
            raise InterpreterError(f"block {block.name!r} has no terminator")

    def _enter_block(self, method: Method, block: BasicBlock,
                     env: Dict[str, RuntimeValue], jump: Optional[Jump],
                     trace: ExecutionTrace) -> None:
        begin = block.begin
        if isinstance(begin, Merge) and jump is not None:
            for index, phi in enumerate(begin.phis):
                if index < len(jump.phi_arguments):
                    value = env[jump.phi_arguments[index].name]
                    env[phi.result.name] = value
                    trace.record_value(method.qualified_name, phi.result.name, value)

    def _execute_statement(self, method: Method, statement, env: Dict[str, RuntimeValue],
                           trace: ExecutionTrace, depth: int) -> None:
        qualified = method.qualified_name
        if isinstance(statement, Assign):
            value = self._evaluate_expression(statement.expr, trace)
            env[statement.result.name] = value
            trace.record_value(qualified, statement.result.name, value)
        elif isinstance(statement, LoadField):
            receiver = env[statement.receiver.name]
            if not isinstance(receiver, HeapObject):
                raise InterpreterError(
                    f"{qualified}: field load on non-object {receiver!r}")
            value = receiver.fields.get(statement.field_name)
            env[statement.result.name] = value
            trace.record_value(qualified, statement.result.name, value)
        elif isinstance(statement, StoreField):
            receiver = env[statement.receiver.name]
            if not isinstance(receiver, HeapObject):
                raise InterpreterError(
                    f"{qualified}: field store on non-object {receiver!r}")
            receiver.fields[statement.field_name] = env[statement.value.name]
        elif isinstance(statement, Invoke):
            result = self._execute_invoke(method, statement, env, trace, depth)
            if statement.result is not None:
                env[statement.result.name] = result
                trace.record_value(qualified, statement.result.name, result)
        else:
            raise InterpreterError(f"unsupported statement {statement!r}")

    def _execute_invoke(self, caller: Method, invoke: Invoke,
                        env: Dict[str, RuntimeValue], trace: ExecutionTrace,
                        depth: int) -> RuntimeValue:
        if invoke.kind is InvokeKind.STATIC:
            signature = (self.hierarchy.resolve(invoke.target_class, invoke.method_name)
                         if invoke.target_class in self.hierarchy else None)
            callee_name = (signature.qualified_name if signature is not None
                           else f"{invoke.target_class}.{invoke.method_name}")
            arguments = [env[value.name] for value in invoke.arguments]
        else:
            receiver = env[invoke.receiver.name]
            if receiver is None:
                raise InterpreterError(
                    f"{caller.qualified_name}: null receiver for {invoke.method_name}")
            if not isinstance(receiver, HeapObject):
                raise InterpreterError(
                    f"{caller.qualified_name}: call on primitive {receiver!r}")
            signature = self.hierarchy.resolve(receiver.type_name, invoke.method_name)
            if signature is None:
                raise InterpreterError(
                    f"no target for {receiver.type_name}.{invoke.method_name}")
            callee_name = signature.qualified_name
            arguments = [receiver] + [env[value.name] for value in invoke.arguments]

        trace.call_edges.add((caller.qualified_name, callee_name))
        callee = self.program.methods.get(callee_name)
        if callee is None:
            # A stub (native) method: produce an opaque result.
            return self.any_value
        return self._call(callee, arguments, trace, depth + 1)

    # ------------------------------------------------------------------ #
    # Expressions and conditions
    # ------------------------------------------------------------------ #
    def _evaluate_expression(self, expr, trace: ExecutionTrace) -> RuntimeValue:
        if expr.kind is ConstKind.INT:
            return expr.int_value
        if expr.kind is ConstKind.ANY:
            return self.any_value
        if expr.kind is ConstKind.NULL:
            return None
        if expr.kind is ConstKind.NEW:
            trace.allocated_types.add(expr.type_name)
            return HeapObject(next(self._object_ids), expr.type_name)
        raise InterpreterError(f"unsupported expression {expr!r}")

    def _evaluate_condition(self, condition, env: Dict[str, RuntimeValue]) -> bool:
        if isinstance(condition, InstanceOfCondition):
            value = env[condition.value.name]
            if isinstance(value, HeapObject):
                result = self.hierarchy.is_subtype(value.type_name, condition.type_name)
            else:
                result = False
            return result != condition.negated
        assert isinstance(condition, Condition)
        left = env[condition.left.name]
        right = env[condition.right.name]
        if condition.op is CompareOp.EQ:
            return self._reference_or_int_equal(left, right)
        if condition.op is CompareOp.NE:
            return not self._reference_or_int_equal(left, right)
        if not isinstance(left, int) or not isinstance(right, int):
            raise InterpreterError(
                f"relational comparison on non-integers: {left!r} {condition.op} {right!r}")
        if condition.op is CompareOp.LT:
            return left < right
        if condition.op is CompareOp.LE:
            return left <= right
        if condition.op is CompareOp.GT:
            return left > right
        return left >= right

    @staticmethod
    def _reference_or_int_equal(left: RuntimeValue, right: RuntimeValue) -> bool:
        if isinstance(left, HeapObject) or isinstance(right, HeapObject):
            return left is right
        return left == right


def execute(program: Program, entry_point: Optional[str] = None,
            max_steps: int = 20_000) -> ExecutionTrace:
    """Convenience wrapper: run a program and return its execution trace."""
    return Interpreter(program, max_steps=max_steps).run(entry_point)
