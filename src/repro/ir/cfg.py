"""Control-flow graph utilities over method bodies.

The PVPG builder processes blocks in reverse postorder (Appendix B.4);
this module computes successor/predecessor maps, reverse postorder, and
back edges (which identify loop merges).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.blocks import BasicBlock
from repro.ir.method import Method


class ControlFlowGraph:
    """Successor/predecessor structure of a method body."""

    def __init__(self, method: Method):
        self.method = method
        self.blocks: Dict[str, BasicBlock] = method.block_map()
        self.successors: Dict[str, List[str]] = {
            name: block.successor_names() for name, block in self.blocks.items()
        }
        self.predecessors: Dict[str, List[str]] = {name: [] for name in self.blocks}
        for name, succs in self.successors.items():
            for succ in succs:
                if succ not in self.predecessors:
                    raise KeyError(
                        f"block {name!r} jumps to undefined block {succ!r} "
                        f"in {method.qualified_name}"
                    )
                self.predecessors[succ].append(name)
        self._rpo: List[str] = self._compute_reverse_postorder()
        self._back_edges: Set[Tuple[str, str]] = self._compute_back_edges()

    # ------------------------------------------------------------------ #
    def _compute_reverse_postorder(self) -> List[str]:
        entry = self.method.entry_block.name
        visited: Set[str] = set()
        postorder: List[str] = []

        # Iterative DFS to avoid recursion limits on generated programs.
        stack: List[Tuple[str, int]] = [(entry, 0)]
        visited.add(entry)
        while stack:
            name, child_index = stack.pop()
            succs = self.successors[name]
            if child_index < len(succs):
                stack.append((name, child_index + 1))
                child = succs[child_index]
                if child not in visited:
                    visited.add(child)
                    stack.append((child, 0))
            else:
                postorder.append(name)
        return list(reversed(postorder))

    def _compute_back_edges(self) -> Set[Tuple[str, str]]:
        order = {name: index for index, name in enumerate(self._rpo)}
        back_edges: Set[Tuple[str, str]] = set()
        for source, succs in self.successors.items():
            if source not in order:
                continue
            for target in succs:
                if target in order and order[target] <= order[source]:
                    back_edges.add((source, target))
        return back_edges

    # ------------------------------------------------------------------ #
    @property
    def reverse_postorder(self) -> List[str]:
        """Reachable block names in reverse postorder (entry first)."""
        return list(self._rpo)

    def reverse_postorder_blocks(self) -> List[BasicBlock]:
        return [self.blocks[name] for name in self._rpo]

    @property
    def back_edges(self) -> Set[Tuple[str, str]]:
        """Edges ``(source, target)`` where target precedes source in RPO."""
        return set(self._back_edges)

    def is_back_edge(self, source: str, target: str) -> bool:
        return (source, target) in self._back_edges

    @property
    def has_loops(self) -> bool:
        return bool(self._back_edges)

    def unreachable_blocks(self) -> List[str]:
        return [name for name in self.blocks if name not in set(self._rpo)]
