"""Structural and SSA validation of methods and programs.

The constraints checked here are exactly the well-formedness requirements of
the base language in Appendix B.1:

* the first block begins with ``start`` and it is the only ``start``;
* every variable has a single static definition, is defined before use along
  every path, and phis join one value per incoming jump;
* blocks beginning with ``label`` have exactly one predecessor which ends in
  ``if`` (no critical edges);
* blocks beginning with ``merge`` are only targeted by ``jump``;
* every ``jump`` passes as many phi arguments as the target merge has phis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.blocks import BasicBlock
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import (
    Assign,
    Condition,
    If,
    InstanceOfCondition,
    Invoke,
    Jump,
    Label,
    LoadField,
    Merge,
    Return,
    Start,
    StoreField,
)
from repro.ir.method import Method
from repro.ir.program import Program
from repro.ir.values import Value


class ValidationError(Exception):
    """Raised when a method or program violates base-language well-formedness."""


def _definitions(method: Method) -> Dict[str, List[str]]:
    """Map from SSA value name to the blocks that define it."""
    defs: Dict[str, List[str]] = {}

    def record(value: Value, block: BasicBlock) -> None:
        defs.setdefault(value.name, []).append(block.name)

    for block in method.blocks:
        begin = block.begin
        if isinstance(begin, Start):
            for param in begin.params:
                record(param, block)
        elif isinstance(begin, Merge):
            for phi in begin.phis:
                record(phi.result, block)
        for statement in block.statements:
            if isinstance(statement, Assign):
                record(statement.result, block)
            elif isinstance(statement, LoadField):
                record(statement.result, block)
            elif isinstance(statement, Invoke) and statement.result is not None:
                record(statement.result, block)
    return defs


def _used_values(block: BasicBlock) -> List[Value]:
    used: List[Value] = []
    for statement in block.statements:
        if isinstance(statement, LoadField):
            used.append(statement.receiver)
        elif isinstance(statement, StoreField):
            used.extend([statement.receiver, statement.value])
        elif isinstance(statement, Invoke):
            used.extend(statement.all_arguments)
    end = block.end
    if isinstance(end, Return) and end.value is not None:
        used.append(end.value)
    elif isinstance(end, Jump):
        used.extend(end.phi_arguments)
    elif isinstance(end, If):
        condition = end.condition
        if isinstance(condition, Condition):
            used.extend([condition.left, condition.right])
        elif isinstance(condition, InstanceOfCondition):
            used.append(condition.value)
    return used


def validate_method(method: Method, hierarchy=None) -> None:
    """Validate one method; raises :class:`ValidationError` on the first issue."""
    name = method.qualified_name
    if not method.blocks:
        raise ValidationError(f"{name}: method has no blocks")

    entry = method.blocks[0]
    if not isinstance(entry.begin, Start):
        raise ValidationError(f"{name}: first block must begin with start")
    for block in method.blocks[1:]:
        if isinstance(block.begin, Start):
            raise ValidationError(f"{name}: duplicate start instruction in {block.name!r}")

    # Unique block names and terminated blocks.
    seen_names: Set[str] = set()
    for block in method.blocks:
        if block.name in seen_names:
            raise ValidationError(f"{name}: duplicate block name {block.name!r}")
        seen_names.add(block.name)
        if block.end is None:
            raise ValidationError(f"{name}: block {block.name!r} has no terminator")

    cfg = ControlFlowGraph(method)

    # Single static definition.
    defs = _definitions(method)
    for value_name, blocks in defs.items():
        if len(blocks) > 1:
            raise ValidationError(
                f"{name}: value {value_name!r} defined in multiple blocks {blocks}"
            )

    # Uses refer to defined values.
    for block in method.blocks:
        for value in _used_values(block):
            if value.name not in defs:
                raise ValidationError(
                    f"{name}: block {block.name!r} uses undefined value {value.name!r}"
                )

    # Label / merge discipline.
    block_map = method.block_map()
    for block in method.blocks:
        preds = cfg.predecessors.get(block.name, [])
        if isinstance(block.begin, Label):
            if len(preds) > 1:
                raise ValidationError(
                    f"{name}: label block {block.name!r} has multiple predecessors"
                )
            for pred in preds:
                if not isinstance(block_map[pred].end, If):
                    raise ValidationError(
                        f"{name}: label block {block.name!r} must be targeted by an if"
                    )
        elif isinstance(block.begin, Merge):
            for pred in preds:
                if not isinstance(block_map[pred].end, Jump):
                    raise ValidationError(
                        f"{name}: merge block {block.name!r} must be targeted by jumps only"
                    )
        # if successors must be label blocks
        if isinstance(block.end, If):
            for target in (block.end.then_label, block.end.else_label):
                if target not in block_map:
                    raise ValidationError(f"{name}: if targets unknown block {target!r}")
                if not isinstance(block_map[target].begin, Label):
                    raise ValidationError(
                        f"{name}: if target {target!r} must be a label block"
                    )
        if isinstance(block.end, Jump):
            target = block.end.target
            if target not in block_map:
                raise ValidationError(f"{name}: jump targets unknown block {target!r}")
            target_block = block_map[target]
            if not isinstance(target_block.begin, Merge):
                raise ValidationError(
                    f"{name}: jump target {target!r} must be a merge block"
                )
            phis = target_block.begin.phis
            if len(block.end.phi_arguments) != len(phis):
                raise ValidationError(
                    f"{name}: jump from {block.name!r} to {target!r} passes "
                    f"{len(block.end.phi_arguments)} phi arguments, expected {len(phis)}"
                )

    # Optional type checks when a hierarchy is supplied.
    if hierarchy is not None:
        for block in method.blocks:
            for statement in block.statements:
                if isinstance(statement, Assign) and statement.expr.type_name:
                    if statement.expr.type_name not in hierarchy:
                        raise ValidationError(
                            f"{name}: new of unknown class {statement.expr.type_name!r}"
                        )
            if isinstance(block.end, If):
                condition = block.end.condition
                if isinstance(condition, InstanceOfCondition):
                    if condition.type_name not in hierarchy:
                        raise ValidationError(
                            f"{name}: instanceof unknown class {condition.type_name!r}"
                        )


def validate_program(program: Program) -> None:
    """Validate every method of a program plus the entry points."""
    for entry in program.entry_points:
        if entry not in program.methods:
            raise ValidationError(f"entry point {entry!r} is not a defined method")
    for method in program:
        validate_method(method, program.hierarchy)
