"""Instructions of the SSA base language (Appendix B.1).

A method is a sequence of basic blocks.  Each block has:

* a *block begin*: ``start(p0..pn)``, ``merge [phis] m`` or ``label l``;
* a possibly empty list of *statements*: ``v <- e``, ``v <- r.x``,
  ``r.x <- v``, ``v <- v0.m(v1..vn)``;
* a *block end*: ``return v``, ``jump m`` or ``if c then l_then else l_else``.

Conditions are restricted to ``v1 = v2``, ``v1 < v2`` and ``v instanceof T``.
Other relational operators are expressed during PVPG construction by
*inverting* (for the else branch) or *flipping* (for the right operand of a
binary comparison) the operator; the full operator set therefore appears in
:class:`CompareOp` even though only ``EQ`` and ``LT`` occur in well-formed IR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.ir.values import ConstantExpr, Value


class CompareOp(enum.Enum):
    """Relational operators over the value lattice."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def __str__(self) -> str:
        return self.value


_INVERSE = {
    CompareOp.EQ: CompareOp.NE,
    CompareOp.NE: CompareOp.EQ,
    CompareOp.LT: CompareOp.GE,
    CompareOp.GE: CompareOp.LT,
    CompareOp.LE: CompareOp.GT,
    CompareOp.GT: CompareOp.LE,
}

_FLIP = {
    CompareOp.EQ: CompareOp.EQ,
    CompareOp.NE: CompareOp.NE,
    CompareOp.LT: CompareOp.GT,
    CompareOp.GT: CompareOp.LT,
    CompareOp.LE: CompareOp.GE,
    CompareOp.GE: CompareOp.LE,
}


def invert_compare_op(op: CompareOp) -> CompareOp:
    """``inv(c)``: the operator of the negated condition (``<`` becomes ``>=``)."""
    return _INVERSE[op]


def flip_compare_op(op: CompareOp) -> CompareOp:
    """``flip(c)``: the operator with the operands swapped (``<`` becomes ``>``)."""
    return _FLIP[op]


# --------------------------------------------------------------------------- #
# Conditions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Condition:
    """A binary comparison condition ``left <op> right``."""

    op: CompareOp
    left: Value
    right: Value

    @property
    def is_binary(self) -> bool:
        return True

    def inverted(self) -> "Condition":
        return Condition(invert_compare_op(self.op), self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class InstanceOfCondition:
    """A unary type-check condition ``value instanceof type_name``.

    ``negated`` distinguishes the else-branch variant ``!(v instanceof T)``.
    """

    value: Value
    type_name: str
    negated: bool = False

    @property
    def is_binary(self) -> bool:
        return False

    def inverted(self) -> "InstanceOfCondition":
        return InstanceOfCondition(self.value, self.type_name, not self.negated)

    def __str__(self) -> str:
        prefix = "!" if self.negated else ""
        return f"{prefix}{self.value} instanceof {self.type_name}"


# --------------------------------------------------------------------------- #
# Block begins
# --------------------------------------------------------------------------- #
@dataclass
class Start:
    """``start(p0, ..., pn)`` — defines the formal parameters of the method."""

    params: Tuple[Value, ...] = ()

    def __str__(self) -> str:
        return f"start({', '.join(map(str, self.params))})"


@dataclass
class Phi:
    """A ``v <- phi(v1, ..., vn)`` join of one value per incoming jump."""

    result: Value
    operands: Tuple[Value, ...]

    def __str__(self) -> str:
        return f"{self.result} <- phi({', '.join(map(str, self.operands))})"


@dataclass
class Merge:
    """``merge [phis] m`` — a control-flow merge labelled ``m``.

    ``phis`` holds one :class:`Phi` per variable with multiple reaching
    definitions; each phi has one operand per predecessor ``jump``.
    """

    label: str
    phis: Tuple[Phi, ...] = ()

    def __str__(self) -> str:
        phis = ", ".join(str(p) for p in self.phis)
        return f"merge [{phis}] {self.label}"


@dataclass
class Label:
    """``label l`` — beginning of one branch of an ``if``."""

    label: str

    def __str__(self) -> str:
        return f"label {self.label}"


BlockBegin = (Start, Merge, Label)


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
@dataclass
class Assign:
    """``v <- e`` where ``e`` is a constant expression (int, Any, new T, null)."""

    result: Value
    expr: ConstantExpr

    def __str__(self) -> str:
        return f"{self.result} <- {self.expr}"


@dataclass
class LoadField:
    """``v <- r.x`` — read field ``x`` of the object in ``r``."""

    result: Value
    receiver: Value
    field_name: str

    def __str__(self) -> str:
        return f"{self.result} <- {self.receiver}.{self.field_name}"


@dataclass
class StoreField:
    """``r.x <- v`` — write ``v`` into field ``x`` of the object in ``r``."""

    receiver: Value
    field_name: str
    value: Value

    def __str__(self) -> str:
        return f"{self.receiver}.{self.field_name} <- {self.value}"


class InvokeKind(enum.Enum):
    """Dispatch kind of an invocation."""

    VIRTUAL = "virtual"
    STATIC = "static"
    SPECIAL = "special"  # constructors / non-virtual instance calls


@dataclass
class Invoke:
    """``v <- v0.m(v1, ..., vn)`` — a method invocation.

    For ``VIRTUAL`` and ``SPECIAL`` calls ``receiver`` is ``v0``; for
    ``STATIC`` calls there is no receiver and ``target_class`` names the class
    declaring the callee.  ``result`` may be ``None`` for calls whose value is
    unused, but the invoke flow still acts as a predicate for the following
    statements.
    """

    result: Optional[Value]
    method_name: str
    arguments: Tuple[Value, ...] = ()
    receiver: Optional[Value] = None
    kind: InvokeKind = InvokeKind.VIRTUAL
    target_class: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is InvokeKind.STATIC:
            if self.target_class is None:
                raise ValueError("static invoke requires a target_class")
            if self.receiver is not None:
                raise ValueError("static invoke cannot have a receiver")
        else:
            if self.receiver is None:
                raise ValueError(f"{self.kind.value} invoke requires a receiver")

    @property
    def all_arguments(self) -> Tuple[Value, ...]:
        """Receiver (if any) followed by the explicit arguments."""
        if self.receiver is not None:
            return (self.receiver,) + tuple(self.arguments)
        return tuple(self.arguments)

    def __str__(self) -> str:
        args = ", ".join(map(str, self.arguments))
        lhs = f"{self.result} <- " if self.result is not None else ""
        if self.kind is InvokeKind.STATIC:
            return f"{lhs}{self.target_class}.{self.method_name}({args})"
        return f"{lhs}{self.receiver}.{self.method_name}({args})"


Statement = (Assign, LoadField, StoreField, Invoke)


# --------------------------------------------------------------------------- #
# Block ends
# --------------------------------------------------------------------------- #
@dataclass
class Return:
    """``return v`` — ``value`` is ``None`` for void methods."""

    value: Optional[Value] = None

    def __str__(self) -> str:
        return f"return {self.value}" if self.value is not None else "return"


@dataclass
class Jump:
    """``jump m`` — unconditional jump to the merge labelled ``m``."""

    target: str
    #: Values passed to the phis of the target merge, in phi order.
    phi_arguments: Tuple[Value, ...] = ()

    def __str__(self) -> str:
        if self.phi_arguments:
            args = ", ".join(map(str, self.phi_arguments))
            return f"jump {self.target} [{args}]"
        return f"jump {self.target}"


@dataclass
class If:
    """``if c then l_then else l_else``."""

    condition: object  # Condition | InstanceOfCondition
    then_label: str
    else_label: str

    def __str__(self) -> str:
        return f"if {self.condition} then {self.then_label} else {self.else_label}"


BlockEnd = (Return, Jump, If)
