"""SSA values and right-hand-side expressions of the base language.

The ``Expr`` production of the base language (Appendix B.1) is::

    Expr e ::= n | Any | new T | null

where ``n`` is a primitive integer literal and ``Any`` is the opaque result of
arithmetic (the analysis does not model arithmetic, Section 3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class ConstKind(enum.Enum):
    """Kind of a right-hand-side constant expression."""

    INT = "int"
    ANY = "any"
    NEW = "new"
    NULL = "null"


@dataclass(frozen=True)
class ConstantExpr:
    """A right-hand-side expression of a ``v <- e`` assignment."""

    kind: ConstKind
    int_value: Optional[int] = None
    type_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is ConstKind.INT and self.int_value is None:
            raise ValueError("INT constant requires an int_value")
        if self.kind is ConstKind.NEW and self.type_name is None:
            raise ValueError("NEW expression requires a type_name")

    @staticmethod
    def int_const(value: int) -> "ConstantExpr":
        return ConstantExpr(ConstKind.INT, int_value=int(value))

    @staticmethod
    def any_value() -> "ConstantExpr":
        return ConstantExpr(ConstKind.ANY)

    @staticmethod
    def new(type_name: str) -> "ConstantExpr":
        return ConstantExpr(ConstKind.NEW, type_name=type_name)

    @staticmethod
    def null() -> "ConstantExpr":
        return ConstantExpr(ConstKind.NULL)

    @property
    def is_primitive(self) -> bool:
        return self.kind in (ConstKind.INT, ConstKind.ANY)

    def __str__(self) -> str:
        if self.kind is ConstKind.INT:
            return str(self.int_value)
        if self.kind is ConstKind.ANY:
            return "Any"
        if self.kind is ConstKind.NEW:
            return f"new {self.type_name}"
        return "null"


_value_counter = itertools.count()


@dataclass(frozen=True)
class Value:
    """An SSA value (local variable with a single static definition).

    Values are identified by name within a method.  ``declared_type`` is the
    static type when known (used for documentation and by the frontend); the
    analysis itself relies on the computed value states rather than on static
    types.
    """

    name: str
    declared_type: Optional[str] = None
    uid: int = field(default_factory=lambda: next(_value_counter), compare=False)

    def __str__(self) -> str:
        return self.name

    def with_type(self, declared_type: str) -> "Value":
        return Value(self.name, declared_type, uid=self.uid)
