"""The evaluation metrics of Section 6.

For every benchmark the paper reports, per analysis configuration:

* *Reachable Methods* — the number of methods marked reachable;
* the *counter metrics* — branching instructions in reachable methods that
  cannot be removed or simplified using the analysis results, split into
  Type Checks, Null Checks, and Primitive Checks, plus *PolyCalls*, the
  virtual invocations that could not be devirtualized;
* *Analysis Time*, *Total Time*, and *Binary Size*.

This module derives the reachable-method count and the counter metrics from a
solved :class:`~repro.core.results.AnalysisResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.flows import Flow, InvokeFlow
from repro.core.pvpg import BranchKind, BranchRecord
from repro.core.results import AnalysisResult
from repro.ir.instructions import InvokeKind


def _is_live(flow: Flow) -> bool:
    return flow.enabled and not flow.state.is_empty


def branch_is_removable(record: BranchRecord) -> bool:
    """A branching instruction can be removed or simplified when at most one
    of its successor branches remains live after the analysis."""
    then_live = _is_live(record.then_predicate)
    else_live = _is_live(record.else_predicate)
    return not (then_live and else_live)


def invoke_is_polymorphic(invoke_flow: InvokeFlow) -> bool:
    """A virtual call counts as polymorphic when it still has at least two
    possible targets (it cannot be devirtualized)."""
    if not invoke_flow.is_virtual:
        return False
    if invoke_flow.invoke.kind is not InvokeKind.VIRTUAL:
        return False
    if not invoke_flow.enabled:
        return False
    return len(invoke_flow.linked_callees) >= 2


@dataclass(frozen=True)
class CounterMetrics:
    """Branching instructions and call sites that survive the analysis."""

    type_checks: int
    null_checks: int
    primitive_checks: int
    poly_calls: int

    def __add__(self, other: "CounterMetrics") -> "CounterMetrics":
        return CounterMetrics(
            self.type_checks + other.type_checks,
            self.null_checks + other.null_checks,
            self.primitive_checks + other.primitive_checks,
            self.poly_calls + other.poly_calls,
        )

    @staticmethod
    def zero() -> "CounterMetrics":
        return CounterMetrics(0, 0, 0, 0)


@dataclass(frozen=True)
class ImageMetrics:
    """All analysis-oriented metrics for one benchmark and configuration."""

    configuration: str
    reachable_methods: int
    counters: CounterMetrics
    analysis_time_seconds: float
    solver_steps: int

    @property
    def type_checks(self) -> int:
        return self.counters.type_checks

    @property
    def null_checks(self) -> int:
        return self.counters.null_checks

    @property
    def primitive_checks(self) -> int:
        return self.counters.primitive_checks

    @property
    def poly_calls(self) -> int:
        return self.counters.poly_calls


def collect_counter_metrics(result: AnalysisResult) -> CounterMetrics:
    """Count the non-removable branches and non-devirtualizable calls."""
    type_checks = 0
    null_checks = 0
    primitive_checks = 0
    for _, record in result.branch_records():
        if branch_is_removable(record):
            continue
        if record.kind is BranchKind.TYPE_CHECK:
            type_checks += 1
        elif record.kind is BranchKind.NULL_CHECK:
            null_checks += 1
        else:
            primitive_checks += 1
    poly_calls = sum(1 for invoke_flow in result.invoke_flows()
                     if invoke_is_polymorphic(invoke_flow))
    return CounterMetrics(type_checks, null_checks, primitive_checks, poly_calls)


def collect_metrics(result: AnalysisResult) -> ImageMetrics:
    """Derive the full metric record from a solved analysis."""
    return ImageMetrics(
        configuration=getattr(result.config, "name", "unknown"),
        reachable_methods=result.reachable_method_count,
        counters=collect_counter_metrics(result),
        analysis_time_seconds=result.analysis_time_seconds,
        solver_steps=result.steps,
    )
