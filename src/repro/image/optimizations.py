"""Optimization opportunities unlocked by the analysis (Section 6).

The paper lists three compiler optimizations that directly consume SkipFlow's
results: dead-code elimination, intraprocedural constant folding of method
parameters proven constant, and method inlining enabled by the first two.
This module turns a solved analysis into an explicit report of those
opportunities so that the benefit of the added precision can be quantified
beyond the reachable-method count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.results import AnalysisResult
from repro.image.dce import eliminate_dead_code
from repro.image.metrics import invoke_is_polymorphic

#: Methods whose live instruction count is at most this are inlining candidates.
INLINE_THRESHOLD_INSTRUCTIONS = 12


@dataclass(frozen=True)
class ConstantParameter:
    """A method parameter proven to be a single primitive constant."""

    method: str
    parameter_index: int
    parameter_name: str
    constant: int


@dataclass(frozen=True)
class DevirtualizedCall:
    """A virtual call site with exactly one remaining target."""

    method: str
    call_site: str
    target: str


@dataclass
class OptimizationReport:
    """All optimization opportunities derived from one analysis result."""

    configuration: str
    constant_parameters: List[ConstantParameter] = field(default_factory=list)
    devirtualized_calls: List[DevirtualizedCall] = field(default_factory=list)
    inlining_candidates: List[str] = field(default_factory=list)
    removable_instructions: int = 0
    removable_branches: int = 0

    @property
    def constant_parameter_count(self) -> int:
        return len(self.constant_parameters)

    @property
    def devirtualized_call_count(self) -> int:
        return len(self.devirtualized_calls)

    @property
    def inlining_candidate_count(self) -> int:
        return len(self.inlining_candidates)

    def summary(self) -> Dict[str, int]:
        return {
            "constant_parameters": self.constant_parameter_count,
            "devirtualized_calls": self.devirtualized_call_count,
            "inlining_candidates": self.inlining_candidate_count,
            "removable_instructions": self.removable_instructions,
            "removable_branches": self.removable_branches,
        }


def collect_optimizations(result: AnalysisResult) -> OptimizationReport:
    """Derive the optimization-opportunity report from a solved analysis."""
    report = OptimizationReport(configuration=getattr(result.config, "name", "unknown"))

    dce = eliminate_dead_code(result)
    report.removable_instructions = dce.dead_instructions
    report.removable_branches = dce.removable_branches

    for graph in result.reachable_graphs():
        method_name = graph.qualified_name
        parameters = graph.method.parameters
        # Constant folding: parameters whose value state is one constant.
        for flow in graph.parameter_flows:
            if flow.state.is_constant:
                report.constant_parameters.append(ConstantParameter(
                    method=method_name,
                    parameter_index=flow.index,
                    parameter_name=parameters[flow.index].name,
                    constant=flow.state.constant_value,
                ))
        # Devirtualization: enabled virtual call sites with exactly one target.
        for index, invoke_flow in enumerate(graph.invoke_flows):
            if not invoke_flow.is_virtual or not invoke_flow.enabled:
                continue
            if invoke_is_polymorphic(invoke_flow):
                continue
            if len(invoke_flow.linked_callees) == 1:
                report.devirtualized_calls.append(DevirtualizedCall(
                    method=method_name,
                    call_site=f"{invoke_flow.label}#{index}",
                    target=next(iter(invoke_flow.linked_callees)),
                ))
        # Inlining: small methods after dead-code elimination.
        method_dce = dce.methods.get(method_name)
        if method_dce is not None and 0 < method_dce.live_instructions <= INLINE_THRESHOLD_INSTRUCTIONS:
            report.inlining_candidates.append(method_name)

    report.inlining_candidates.sort()
    return report
