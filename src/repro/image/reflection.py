"""Reflection / JNI configuration handling (Section 5).

Like GraalVM Native Image, the analysis requires a configuration that lists
methods and fields accessed reflectively.  Reflective methods become
additional *root methods* whose parameters are seeded with any instantiable
subtype of their declared type; reflective fields may contain any
instantiable subtype of their declared type.

The configuration is applied by rewriting the program:

* reflective methods are simply added as entry points (the solver seeds root
  parameters conservatively);
* reflective fields are written from a synthetic root method that allocates
  every instantiable subtype of the declared field type and stores it, which
  soundly encodes "the field may hold any instantiated subtype".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple

from repro.ir.builder import MethodBuilder
from repro.ir.program import Program, ProgramError
from repro.ir.types import INT_TYPE_NAME, MethodSignature


class ReflectionConfigError(Exception):
    """Raised for malformed reflection configuration files or entries."""


#: Name of the synthetic class holding reflection root methods.
REFLECTION_ROOTS_CLASS = "ReflectionRoots"


@dataclass
class ReflectionConfig:
    """Declarative reflection/JNI configuration.

    ``methods`` holds qualified method names (``Class.method``); ``fields``
    holds ``(class_name, field_name)`` pairs.
    """

    methods: List[str] = field(default_factory=list)
    fields: List[Tuple[str, str]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def register_method(self, qualified_name: str) -> "ReflectionConfig":
        if qualified_name not in self.methods:
            self.methods.append(qualified_name)
        return self

    def register_field(self, class_name: str, field_name: str) -> "ReflectionConfig":
        entry = (class_name, field_name)
        if entry not in self.fields:
            self.fields.append(entry)
        return self

    @staticmethod
    def from_json(text: str) -> "ReflectionConfig":
        """Parse a native-image style JSON configuration.

        Expected shape::

            {"methods": ["Service.handle"], "fields": [{"class": "Config", "field": "mode"}]}
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReflectionConfigError(f"invalid reflection config JSON: {exc}") from exc
        config = ReflectionConfig()
        for name in data.get("methods", []):
            if not isinstance(name, str):
                raise ReflectionConfigError(f"method entry must be a string: {name!r}")
            config.register_method(name)
        for entry in data.get("fields", []):
            if not isinstance(entry, dict) or "class" not in entry or "field" not in entry:
                raise ReflectionConfigError(
                    f"field entry must be an object with 'class' and 'field': {entry!r}"
                )
            config.register_field(entry["class"], entry["field"])
        return config

    @staticmethod
    def from_file(path: Path) -> "ReflectionConfig":
        return ReflectionConfig.from_json(Path(path).read_text())

    def to_json(self) -> str:
        return json.dumps(
            {
                "methods": list(self.methods),
                "fields": [{"class": cls, "field": name} for cls, name in self.fields],
            },
            indent=2,
        )

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #
    def apply_to(self, program: Program) -> List[str]:
        """Rewrite the program and return the list of added entry points."""
        added: List[str] = []
        for qualified_name in self.methods:
            if not program.has_method(qualified_name):
                raise ReflectionConfigError(
                    f"reflective method {qualified_name!r} is not defined in the program"
                )
            program.add_entry_point(qualified_name)
            added.append(qualified_name)
        if self.fields:
            added.append(self._build_field_roots(program))
        return added

    def _build_field_roots(self, program: Program) -> str:
        hierarchy = program.hierarchy
        if REFLECTION_ROOTS_CLASS not in hierarchy:
            hierarchy.declare_class(REFLECTION_ROOTS_CLASS)
        signature = MethodSignature(
            declaring_class=REFLECTION_ROOTS_CLASS,
            name="initializeReflectiveFields",
            is_static=True,
        )
        builder = MethodBuilder(signature)
        for class_name, field_name in self.fields:
            if class_name not in hierarchy:
                raise ReflectionConfigError(f"reflective field on unknown class {class_name!r}")
            declaration = hierarchy.lookup_field(class_name, field_name)
            if declaration is None:
                raise ReflectionConfigError(
                    f"reflective field {class_name}.{field_name} is not declared"
                )
            receiver = builder.assign_new(class_name)
            if declaration.declared_type == INT_TYPE_NAME:
                value = builder.assign_any()
                builder.store_field(receiver, field_name, value)
                continue
            for subtype in hierarchy.instantiable_subtypes(declaration.declared_type):
                value = builder.assign_new(subtype)
                builder.store_field(receiver, field_name, value)
            null_value = builder.assign_null()
            builder.store_field(receiver, field_name, null_value)
        builder.return_void()
        try:
            program.add_method(builder.build())
        except ProgramError as exc:
            raise ReflectionConfigError(
                "reflection configuration applied twice to the same program"
            ) from exc
        qualified = signature.qualified_name
        program.add_entry_point(qualified)
        return qualified
