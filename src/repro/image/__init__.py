"""Closed-world image building on top of the analysis results.

This package plays the role of GraalVM Native Image in the paper's
evaluation: it drives one analysis configuration over a whole program,
derives the evaluation metrics (reachable methods, the counter metrics of
Section 6, a binary-size estimate), performs dead-code elimination based on
the disabled flows, and handles reflection configuration files.
"""

from repro.image.binary import BinarySizeModel
from repro.image.builder import ImageBuildReport, NativeImageBuilder
from repro.image.dce import DeadCodeReport, eliminate_dead_code
from repro.image.metrics import CounterMetrics, ImageMetrics, collect_metrics
from repro.image.optimizations import OptimizationReport, collect_optimizations
from repro.image.reflection import ReflectionConfig

__all__ = [
    "BinarySizeModel",
    "CounterMetrics",
    "DeadCodeReport",
    "ImageBuildReport",
    "ImageMetrics",
    "NativeImageBuilder",
    "OptimizationReport",
    "ReflectionConfig",
    "collect_metrics",
    "collect_optimizations",
    "eliminate_dead_code",
]
