"""Dead-code elimination driven by the analysis result.

Flows that remain disabled at the fixed point correspond to instructions that
can never execute (Section 6, "Impact on Compiler Optimizations"); branches
whose filter flow ends with an empty value state are provably unreachable.
This module turns the per-flow information into a per-method and per-program
report used by the binary-size model and by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.flows import FlowKind
from repro.core.pvpg import MethodPVPG
from repro.core.results import AnalysisResult
from repro.image.metrics import branch_is_removable

#: Flow kinds that correspond to actual instructions in the method body
#: (as opposed to analysis bookkeeping such as phi predicates or filters).
_INSTRUCTION_FLOW_KINDS = {
    FlowKind.SOURCE,
    FlowKind.LOAD_FIELD,
    FlowKind.STORE_FIELD,
    FlowKind.INVOKE,
    FlowKind.RETURN,
}


@dataclass
class MethodDeadCode:
    """Live/dead instruction counts for one reachable method."""

    qualified_name: str
    live_instructions: int
    dead_instructions: int
    removable_branches: int
    total_branches: int

    @property
    def total_instructions(self) -> int:
        return self.live_instructions + self.dead_instructions

    @property
    def fully_live(self) -> bool:
        return self.dead_instructions == 0 and self.removable_branches == 0


@dataclass
class DeadCodeReport:
    """Aggregated dead-code elimination results for a whole program."""

    methods: Dict[str, MethodDeadCode] = field(default_factory=dict)

    @property
    def live_instructions(self) -> int:
        return sum(m.live_instructions for m in self.methods.values())

    @property
    def dead_instructions(self) -> int:
        return sum(m.dead_instructions for m in self.methods.values())

    @property
    def removable_branches(self) -> int:
        return sum(m.removable_branches for m in self.methods.values())

    @property
    def total_branches(self) -> int:
        return sum(m.total_branches for m in self.methods.values())

    def methods_with_dead_code(self) -> List[str]:
        return sorted(
            name for name, report in self.methods.items() if not report.fully_live
        )


def _analyze_method(graph: MethodPVPG) -> MethodDeadCode:
    live = 0
    dead = 0
    for flow in graph.flows:
        if flow.kind not in _INSTRUCTION_FLOW_KINDS:
            continue
        if flow.enabled:
            live += 1
        else:
            dead += 1
    removable = sum(1 for record in graph.branch_records if branch_is_removable(record))
    return MethodDeadCode(
        qualified_name=graph.qualified_name,
        live_instructions=live,
        dead_instructions=dead,
        removable_branches=removable,
        total_branches=len(graph.branch_records),
    )


def eliminate_dead_code(result: AnalysisResult) -> DeadCodeReport:
    """Compute the dead-code report for every reachable method."""
    report = DeadCodeReport()
    for graph in result.reachable_graphs():
        report.methods[graph.qualified_name] = _analyze_method(graph)
    return report
