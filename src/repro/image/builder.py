"""The closed-world image builder: analysis plus compilation driver.

``NativeImageBuilder`` plays the role of the Native Image build pipeline in
the evaluation: it runs one analysis configuration over a program, collects
the analysis-oriented metrics, performs dead-code elimination, estimates the
binary size, and models the total build time as analysis time plus a
compilation cost proportional to the live code that remains after DCE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.results import AnalysisResult
from repro.image.binary import BinarySizeModel
from repro.image.dce import DeadCodeReport, MethodDeadCode, eliminate_dead_code
from repro.image.metrics import (
    CounterMetrics,
    ImageMetrics,
    collect_metrics,
)
from repro.image.reflection import ReflectionConfig
from repro.ir.program import Program


#: Modeled compilation cost per live instruction, in seconds.  Only the
#: *relative* total-time difference between configurations matters for the
#: reproduction; the constant is chosen so that compilation dominates the
#: total time, as it does in the paper (analysis is roughly 15% of total).
_COMPILE_SECONDS_PER_INSTRUCTION = 2.0e-6
_COMPILE_FIXED_SECONDS = 0.05


@dataclass(frozen=True)
class ImageBuildReport:
    """Everything the evaluation reports for one (benchmark, configuration) pair."""

    benchmark: str
    configuration: str
    metrics: ImageMetrics
    dead_code: DeadCodeReport
    binary_size_bytes: int
    analysis_time_seconds: float
    total_time_seconds: float
    result: AnalysisResult

    @property
    def reachable_methods(self) -> int:
        return self.metrics.reachable_methods

    @property
    def binary_size_megabytes(self) -> float:
        return self.binary_size_bytes / 1_000_000.0


def _config_from_analyzer_name(name: str) -> AnalysisConfig:
    """Resolve a registry analyzer name to its engine configuration.

    Only propagation-engine analyzers qualify: the image pipeline needs the
    solved PVPG (value states, branch records) for DCE and the size model,
    which the call-graph baselines (CHA, RTA) never produce.
    """
    # Imported lazily: the registry sits above the image layer.
    from repro.api.registry import require_config_analyzer

    return require_config_analyzer(name, purpose="the image builder").config()


def _kernel_fast_reports(
    result: AnalysisResult,
) -> Optional[tuple[ImageMetrics, DeadCodeReport]]:
    """Metrics and DCE straight from the producing kernel, when it offers them.

    The arena kernel answers the image-report queries from its flat integer
    tables (``image_counters`` / ``dead_code_rows``) — bit-identical to the
    PVPG walks in :mod:`repro.image.metrics` / :mod:`repro.image.dce`, but
    without inflating the object graph the PVPG walks would force.  Returns
    ``None`` when the result has no such backend (the object kernel).
    """
    backend = result.kernel_backend
    counters_of = getattr(backend, "image_counters", None)
    rows_of = getattr(backend, "dead_code_rows", None)
    if counters_of is None or rows_of is None:
        return None
    counts = counters_of()
    metrics = ImageMetrics(
        configuration=getattr(result.config, "name", "unknown"),
        reachable_methods=result.reachable_method_count,
        counters=CounterMetrics(
            type_checks=counts["type_checks"],
            null_checks=counts["null_checks"],
            primitive_checks=counts["primitive_checks"],
            poly_calls=counts["poly_calls"],
        ),
        analysis_time_seconds=result.analysis_time_seconds,
        solver_steps=result.steps,
    )
    dead_code = DeadCodeReport()
    for name, live, dead, removable, total in rows_of():
        dead_code.methods[name] = MethodDeadCode(
            qualified_name=name,
            live_instructions=live,
            dead_instructions=dead,
            removable_branches=removable,
            total_branches=total,
        )
    return metrics, dead_code


class NativeImageBuilder:
    """Builds a (simulated) native image for one program and configuration.

    ``config`` accepts either an :class:`~repro.core.analysis.AnalysisConfig`
    or the registry name of a propagation-engine analyzer (``"skipflow"``,
    ``"pta"``, ``"predicates-only"``, ...).
    """

    def __init__(
        self,
        program: Program,
        config: Union[AnalysisConfig, str, None] = None,
        reflection: Optional[ReflectionConfig] = None,
        size_model: Optional[BinarySizeModel] = None,
        benchmark_name: str = "program",
    ) -> None:
        self.program = program
        if isinstance(config, str):
            config = _config_from_analyzer_name(config)
        self.config = config or AnalysisConfig.skipflow()
        self.reflection = reflection
        self.size_model = size_model or BinarySizeModel()
        self.benchmark_name = benchmark_name
        self._reflection_applied = False

    def build(self, roots: Optional[Iterable[str]] = None) -> ImageBuildReport:
        """Run the analysis and assemble the build report."""
        if self.reflection is not None and not self._reflection_applied:
            self.reflection.apply_to(self.program)
            self._reflection_applied = True
        analysis = SkipFlowAnalysis(self.program, self.config)
        result = analysis.run(roots)
        fast = _kernel_fast_reports(result)
        if fast is not None:
            metrics, dead_code = fast
        else:
            metrics = collect_metrics(result)
            dead_code = eliminate_dead_code(result)
        binary_size = self.size_model.estimate(result, dead_code)
        compile_time = (
            _COMPILE_FIXED_SECONDS
            + dead_code.live_instructions * _COMPILE_SECONDS_PER_INSTRUCTION
        )
        return ImageBuildReport(
            benchmark=self.benchmark_name,
            configuration=self.config.name,
            metrics=metrics,
            dead_code=dead_code,
            binary_size_bytes=binary_size,
            analysis_time_seconds=result.analysis_time_seconds,
            total_time_seconds=result.analysis_time_seconds + compile_time,
            result=result,
        )


def build_image(program: Program, config: AnalysisConfig,
                benchmark_name: str = "program") -> ImageBuildReport:
    """Convenience wrapper used by examples and benchmarks."""
    return NativeImageBuilder(program, config, benchmark_name=benchmark_name).build()
