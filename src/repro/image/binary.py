"""Binary-size model of the produced image.

The paper reports the size of the standalone binary produced by Native Image.
Our closed-world "image" is simulated, so the binary size is a model: a fixed
runtime overhead (garbage collector, image heap, runtime support) plus a
per-class metadata cost plus the compiled-code cost of every *live*
instruction of every reachable method.  Dead instructions (disabled flows)
are removed by dead-code elimination before "compilation" and therefore do
not contribute, which is what makes the binary-size reduction track the
reachable-method reduction, as observed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from repro.core.results import AnalysisResult
from repro.image.dce import DeadCodeReport, eliminate_dead_code


@dataclass(frozen=True)
class BinarySizeModel:
    """Cost constants of the size model (bytes)."""

    #: Fixed image overhead: runtime, GC, image heap skeleton.  Chosen so that
    #: the fixed part is a similar *fraction* of the image as in the paper,
    #: given that the synthetic applications are a few hundred methods rather
    #: than a few hundred thousand.
    image_base_bytes: int = 200_000
    #: Per reachable class: metadata, vtable, type information.
    class_metadata_bytes: int = 2_000
    #: Per reachable method: frame info, exception tables, entry stubs.
    method_header_bytes: int = 1_500
    #: Per live (enabled) instruction: generated machine code.
    instruction_bytes: int = 40

    def estimate(self, result: AnalysisResult,
                 dce: Optional[DeadCodeReport] = None) -> int:
        """Estimate the binary size in bytes for a solved analysis.

        ``dce`` reuses an already-computed dead-code report (DCE is
        deterministic, so passing the builder's report is purely a
        performance lever — it also keeps the arena fast path from
        inflating the PVPG just to recount live instructions).
        """
        if dce is None:
            dce = eliminate_dead_code(result)
        live_instructions = dce.live_instructions
        reachable_methods = result.reachable_method_count
        reachable_classes = {
            name.split(".", 1)[0] for name in result.reachable_methods
        }
        return (
            self.image_base_bytes
            + len(reachable_classes) * self.class_metadata_bytes
            + reachable_methods * self.method_header_bytes
            + live_instructions * self.instruction_bytes
        )

    def estimate_megabytes(self, result: AnalysisResult) -> float:
        return self.estimate(result) / 1_000_000.0
