"""Class Hierarchy Analysis (CHA), Dean, Grove & Chambers 1995.

CHA resolves every virtual call against *all* subtypes of the receiver's
declared type, without considering which classes are ever instantiated.  It
is the least precise (and cheapest) of the call-graph construction algorithms
discussed in the paper and serves as a lower bound for precision comparisons
and ablations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional, Set, Tuple

from repro.ir.instructions import Invoke, InvokeKind
from repro.ir.method import Method
from repro.ir.program import Program
from repro.ir.types import OBJECT_TYPE_NAME


@dataclass
class CallGraphResult:
    """Result of a call-graph construction baseline (CHA or RTA)."""

    algorithm: str
    reachable_methods: Set[str] = field(default_factory=set)
    call_edges: Set[Tuple[str, str]] = field(default_factory=set)
    instantiated_types: Set[str] = field(default_factory=set)
    #: Called methods that have no body in the closed world.
    stub_methods: Set[str] = field(default_factory=set)

    @property
    def reachable_method_count(self) -> int:
        return len(self.reachable_methods)

    def callees_of(self, qualified_name: str) -> Set[str]:
        return {callee for caller, callee in self.call_edges if caller == qualified_name}

    def is_method_reachable(self, qualified_name: str) -> bool:
        return qualified_name in self.reachable_methods


class ClassHierarchyAnalysis:
    """Whole-program call-graph construction using the class hierarchy only."""

    algorithm_name = "CHA"

    def __init__(self, program: Program):
        self.program = program
        self.hierarchy = program.hierarchy

    # ------------------------------------------------------------------ #
    def run(self, roots: Optional[Iterable[str]] = None) -> CallGraphResult:
        root_names = list(roots) if roots is not None else list(self.program.entry_points)
        if not root_names:
            raise ValueError("no root methods: provide roots or program entry points")
        result = CallGraphResult(algorithm=self.algorithm_name)
        worklist: Deque[str] = deque()
        for root in root_names:
            self._mark_reachable(root, result, worklist)
        while worklist:
            qualified = worklist.popleft()
            method = self.program.methods.get(qualified)
            if method is None:
                continue
            self._process_method(method, result, worklist)
        return result

    # ------------------------------------------------------------------ #
    def _mark_reachable(self, qualified: str, result: CallGraphResult,
                        worklist: Deque[str]) -> None:
        if qualified in result.reachable_methods or qualified in result.stub_methods:
            return
        if self.program.has_method(qualified):
            result.reachable_methods.add(qualified)
            worklist.append(qualified)
        else:
            result.stub_methods.add(qualified)

    def _process_method(self, method: Method, result: CallGraphResult,
                        worklist: Deque[str]) -> None:
        caller = method.qualified_name
        for statement in method.iter_statements():
            if not isinstance(statement, Invoke):
                continue
            for callee in self.resolve_targets(statement):
                result.call_edges.add((caller, callee))
                self._mark_reachable(callee, result, worklist)
        result.instantiated_types.update(_allocated_types(method))

    # ------------------------------------------------------------------ #
    def resolve_targets(self, invoke: Invoke) -> List[str]:
        """All possible callees of one call site according to CHA."""
        if invoke.kind is InvokeKind.STATIC:
            signature = self.hierarchy.resolve(invoke.target_class, invoke.method_name) \
                if invoke.target_class in self.hierarchy else None
            return [signature.qualified_name] if signature is not None \
                else [f"{invoke.target_class}.{invoke.method_name}"]
        declared = invoke.receiver.declared_type if invoke.receiver is not None else None
        if declared is None or declared not in self.hierarchy:
            declared = OBJECT_TYPE_NAME
        receiver_types = self.candidate_receiver_types(declared)
        signatures = self.hierarchy.resolve_all(receiver_types, invoke.method_name)
        return sorted(signature.qualified_name for signature in signatures)

    def candidate_receiver_types(self, declared: str) -> List[str]:
        """CHA considers every declared subtype of the static receiver type."""
        return self.hierarchy.all_subtypes(declared)


def _allocated_types(method: Method) -> Set[str]:
    from repro.ir.instructions import Assign
    from repro.ir.values import ConstKind

    allocated: Set[str] = set()
    for statement in method.iter_statements():
        if isinstance(statement, Assign) and statement.expr.kind is ConstKind.NEW:
            allocated.add(statement.expr.type_name)
    return allocated
