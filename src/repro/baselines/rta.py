"""Rapid Type Analysis (RTA), Bacon & Sweeney 1996.

RTA refines CHA by resolving virtual calls only against receiver types that
are actually instantiated somewhere in the reachable part of the program.
Because instantiation discovered later can add targets to already-processed
call sites, the analysis iterates to a fixed point.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set, Tuple

from repro.baselines.cha import CallGraphResult, ClassHierarchyAnalysis, _allocated_types
from repro.ir.instructions import Invoke, InvokeKind
from repro.ir.program import Program
from repro.ir.types import OBJECT_TYPE_NAME


class RapidTypeAnalysis(ClassHierarchyAnalysis):
    """Call-graph construction restricted to instantiated receiver types."""

    algorithm_name = "RTA"

    def __init__(self, program: Program):
        super().__init__(program)
        self._instantiated: Set[str] = set()

    # ------------------------------------------------------------------ #
    def run(self, roots: Optional[Iterable[str]] = None) -> CallGraphResult:
        root_names = list(roots) if roots is not None else list(self.program.entry_points)
        if not root_names:
            raise ValueError("no root methods: provide roots or program entry points")
        result = CallGraphResult(algorithm=self.algorithm_name)
        self._instantiated = set()
        #: Virtual call sites seen so far: (caller, invoke) pairs to re-resolve
        #: whenever a new type becomes instantiated.
        pending_sites: List[Tuple[str, Invoke]] = []
        worklist: Deque[str] = deque()
        for root in root_names:
            self._mark_reachable(root, result, worklist)

        while worklist:
            qualified = worklist.popleft()
            method = self.program.methods.get(qualified)
            if method is None:
                continue
            newly_allocated = _allocated_types(method) - self._instantiated
            if newly_allocated:
                self._instantiated.update(newly_allocated)
                result.instantiated_types.update(newly_allocated)
                # Re-resolve every known virtual call site against the new types.
                for caller, invoke in pending_sites:
                    for callee in self._resolve_with_instantiated(invoke, newly_allocated):
                        result.call_edges.add((caller, callee))
                        self._mark_reachable(callee, result, worklist)
            caller = method.qualified_name
            for statement in method.iter_statements():
                if not isinstance(statement, Invoke):
                    continue
                if statement.kind is InvokeKind.STATIC:
                    targets = super().resolve_targets(statement)
                else:
                    pending_sites.append((caller, statement))
                    targets = self._resolve_with_instantiated(statement, self._instantiated)
                for callee in targets:
                    result.call_edges.add((caller, callee))
                    self._mark_reachable(callee, result, worklist)
        return result

    # ------------------------------------------------------------------ #
    def _resolve_with_instantiated(self, invoke: Invoke,
                                   candidate_types: Iterable[str]) -> List[str]:
        declared = invoke.receiver.declared_type if invoke.receiver is not None else None
        if declared is None or declared not in self.hierarchy:
            declared = OBJECT_TYPE_NAME
        receivers = [
            type_name
            for type_name in candidate_types
            if self.hierarchy.is_subtype(type_name, declared)
        ]
        signatures = self.hierarchy.resolve_all(receivers, invoke.method_name)
        return sorted(signature.qualified_name for signature in signatures)
