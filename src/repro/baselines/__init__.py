"""Baseline call-graph construction and points-to analyses.

The paper compares SkipFlow against the default Native Image points-to
analysis (a type-based, flow-insensitive, context-insensitive analysis —
``PTA``) and discusses the classical call-graph construction algorithms RTA
and CHA as even less precise alternatives.  This package provides all three:

* :func:`repro.baselines.pta.run_pta` — the paper's baseline, implemented by
  running the shared propagation engine with predicates, primitive tracking
  and comparison filtering disabled;
* :class:`repro.baselines.rta.RapidTypeAnalysis` — Bacon & Sweeney's RTA;
* :class:`repro.baselines.cha.ClassHierarchyAnalysis` — Dean et al.'s CHA.
"""

from repro.baselines.cha import CallGraphResult, ClassHierarchyAnalysis
from repro.baselines.pta import run_pta
from repro.baselines.rta import RapidTypeAnalysis

__all__ = [
    "CallGraphResult",
    "ClassHierarchyAnalysis",
    "RapidTypeAnalysis",
    "run_pta",
]
