"""The baseline points-to analysis (``PTA`` in the evaluation).

This is the type-based, flow-insensitive, context-insensitive analysis that
Native Image uses by default (Wimmer et al. 2024).  It shares the propagation
engine with SkipFlow; the differences are exactly the feature switches that
the paper's extension adds:

* predicate edges are ignored (every flow is enabled immediately), so the
  branching structure of the program never prunes reachability;
* primitive constants are not tracked (every primitive value is ``Any``);
* comparison conditions do not filter values inside branches.

Type-check (``instanceof``) filtering is kept, matching the precision of the
type-flow graphs used by the production baseline.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.results import AnalysisResult
from repro.ir.program import Program


def baseline_config() -> AnalysisConfig:
    """The configuration used for the ``PTA`` rows of Table 1."""
    return AnalysisConfig.baseline_pta()


def run_pta(program: Program, roots: Optional[Iterable[str]] = None) -> AnalysisResult:
    """Deprecated shim: run the baseline points-to analysis over ``program``.

    Prefer ``AnalysisSession.from_program(program).run("pta")`` (see
    :mod:`repro.api` and ``docs/api.md``); kept for existing callers.
    """
    return SkipFlowAnalysis(program, baseline_config()).run(roots)
